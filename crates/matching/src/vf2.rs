//! A VF2-style reference matcher.
//!
//! Deliberately simple (label + degree pruning only, no index): used as the
//! ground-truth oracle in tests for every other matcher in the workspace.
//! Exponential and allocation-light; keep inputs small.

use graph_core::{Graph, QueryGraph, QueryVertexId, VertexId};

/// Counts all subgraph-isomorphism embeddings of `q` in `g` by plain
/// backtracking over the data graph.
pub fn vf2_count(q: &QueryGraph, g: &Graph) -> u64 {
    let n = q.vertex_count();
    if n == 0 {
        return 0;
    }
    // Order: BFS from vertex 0 (query is connected by construction).
    let tree = graph_core::BfsTree::new(q, QueryVertexId::new(0));
    let order = tree.bfs_order().to_vec();
    let mut backward: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (d, &u) in order.iter().enumerate() {
        let mut b = Vec::new();
        for (e, &w) in order.iter().enumerate().take(d) {
            if q.has_edge(u, w) {
                b.push(e);
            }
        }
        backward.push(b);
    }

    let mut mapped = vec![VertexId::new(0); n];
    let mut count = 0u64;

    fn descend(
        q: &QueryGraph,
        g: &Graph,
        order: &[QueryVertexId],
        backward: &[Vec<usize>],
        depth: usize,
        mapped: &mut [VertexId],
        count: &mut u64,
    ) {
        if depth == order.len() {
            *count += 1;
            return;
        }
        let u = order[depth];
        let candidates: Vec<VertexId> = if backward[depth].is_empty() {
            g.vertices_with_label(q.label(u)).to_vec()
        } else {
            // Expand from the first backward neighbour's data adjacency.
            let anchor = mapped[backward[depth][0]];
            g.neighbors(anchor).to_vec()
        };
        for v in candidates {
            if g.label(v) != q.label(u) || g.degree(v) < q.degree(u) {
                continue;
            }
            if mapped[..depth].contains(&v) {
                continue;
            }
            if backward[depth]
                .iter()
                .all(|&bd| g.has_edge(mapped[bd], v))
            {
                mapped[depth] = v;
                descend(q, g, order, backward, depth + 1, mapped, count);
            }
        }
    }

    descend(q, g, &order, &backward, 0, &mut mapped, &mut count);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::generators::random_labelled_graph;
    use graph_core::{GraphBuilder, Label};

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    #[test]
    fn triangle_in_triangle() {
        let q = QueryGraph::new(vec![l(0), l(0), l(0)], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex(l(0))).collect();
        b.add_edge(v[0], v[1]).unwrap();
        b.add_edge(v[1], v[2]).unwrap();
        b.add_edge(v[0], v[2]).unwrap();
        let g = b.build();
        // 3! automorphic embeddings.
        assert_eq!(vf2_count(&q, &g), 6);
    }

    #[test]
    fn labels_restrict_matches() {
        let q = QueryGraph::new(vec![l(0), l(1)], &[(0, 1)]).unwrap();
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(l(0));
        let c = b.add_vertex(l(1));
        let d = b.add_vertex(l(2));
        b.add_edge(a, c).unwrap();
        b.add_edge(a, d).unwrap();
        let g = b.build();
        assert_eq!(vf2_count(&q, &g), 1);
    }

    #[test]
    fn no_match_when_structure_absent() {
        let q = QueryGraph::new(vec![l(0), l(0), l(0)], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        // A path has no triangle.
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex(l(0))).collect();
        b.add_edge(v[0], v[1]).unwrap();
        b.add_edge(v[1], v[2]).unwrap();
        let g = b.build();
        assert_eq!(vf2_count(&q, &g), 0);
    }

    #[test]
    fn path_count_on_random_graph_is_stable() {
        let q = QueryGraph::new(vec![l(0), l(1), l(0)], &[(0, 1), (1, 2)]).unwrap();
        let g = random_labelled_graph(25, 0.3, 2, 77);
        let c1 = vf2_count(&q, &g);
        let c2 = vf2_count(&q, &g);
        assert_eq!(c1, c2);
    }
}
