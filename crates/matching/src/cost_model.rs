//! Platform cost models: normalising work counts to the paper's hardware.
//!
//! The reproduction runs on a modern machine against ~100x-smaller graphs,
//! so *measured* wall time would compare a modelled 300 MHz FPGA against a
//! CPU a decade newer than the paper's Xeon E5-2620 v4 — a hardware mismatch
//! the paper does not have. Every matcher in the workspace therefore counts
//! its work exactly (partials expanded, edge checks, intersection elements,
//! index entries built), and this module converts those counts into seconds
//! on the paper's platforms:
//!
//! * the **CPU model** represents one core of the 2.1 GHz Xeon running the
//!   original pointer-heavy C++ implementations — tens of ns per search
//!   step (calibrated so the Fig. 14 baseline magnitudes land in the
//!   paper's range at the scaled dataset sizes);
//! * the **GPU model** represents the Tesla V100's join kernels: massive
//!   per-element throughput, but per-level launch overhead and table
//!   materialisation costs.
//!
//! Both measured wall time and modelled time are reported; the benchmark
//! tables use the modelled values (EXPERIMENTS.md discusses both).

use crate::engine::EngineStats;

/// Cost of CPU-side search work (one core of the paper's Xeon E5-2620 v4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCostModel {
    /// Per partial-result expansion (pop, candidate fetch, bookkeeping).
    pub ns_per_partial: f64,
    /// Per backward-edge verification (binary search / matrix probe).
    pub ns_per_edge_check: f64,
    /// Per element touched during sorted-list intersection.
    pub ns_per_intersection_element: f64,
    /// Per adjacency entry materialised during index construction (random
    /// probes into the full graph: cache-cold).
    pub ns_per_index_entry: f64,
    /// Per adjacency entry copied during CST partition rebuild (streaming
    /// CSR scans with cache-warm remap tables).
    pub ns_per_partition_entry: f64,
    /// Parallel efficiency of the `-8` variants (the paper's CECI-8 gains
    /// 4-6x over CECI on 8 threads): per-thread scheduling/bookkeeping
    /// overhead, independent of the thread count.
    pub parallel_efficiency: f64,
    /// Single-socket memory contention: the fraction of each step's memory
    /// time that serialises on the shared memory controller per *extra*
    /// active core. The search steps are DRAM-miss bound (see the default's
    /// calibration note), so co-running threads queue on the same channel —
    /// an Amdahl-style denominator `1 + σ·(T − 1)` on top of the flat
    /// efficiency factor. This is what caps the paper's Xeon E5-2620 v4 at
    /// ~3-4x on 8 cores for pointer-chasing workloads and what makes the
    /// CPU share the bottleneck past δ ≈ 0.15 in Fig. 13.
    pub memory_contention: f64,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        // Calibrated to the cache-cold regime the paper's baselines run in:
        // on graphs with tens of millions of vertices, every candidate
        // fetch, visited probe, and list lookup is a DRAM miss (~100 ns on
        // the Xeon E5-2620 v4), and the original C++ implementations add
        // pointer-heavy bookkeeping on top. See EXPERIMENTS.md for the
        // calibration discussion.
        CpuCostModel {
            ns_per_partial: 120.0,
            ns_per_edge_check: 60.0,
            // Each element retained during an intersection costs a probe
            // into the other list: a binary search (log d dependent misses)
            // or a hash-cluster lookup in CECI — 1-3 DRAM misses.
            ns_per_intersection_element: 150.0,
            ns_per_index_entry: 40.0,
            ns_per_partition_entry: 15.0,
            parallel_efficiency: 0.75,
            // Four DDR4 channels against eight cores of outstanding misses:
            // each extra core adds ~15% serialised memory time, capping the
            // 8-core speedup at 8·0.75 / (1 + 7·0.15) ≈ 2.9x — in line with
            // the STREAM-vs-cores curves for this Xeon generation, and the
            // value that places Fig. 13's CPU-bottleneck knee at the
            // paper's δ ≈ 0.15 (EXPERIMENTS.md §7).
            memory_contention: 0.15,
        }
    }
}

impl CpuCostModel {
    /// Seconds of search time for the given engine counters.
    pub fn search_time_sec(&self, stats: &EngineStats) -> f64 {
        (stats.partials_generated as f64 * self.ns_per_partial
            + stats.edge_verifications as f64 * self.ns_per_edge_check
            + stats.intersection_elements as f64 * self.ns_per_intersection_element)
            * 1e-9
    }

    /// Seconds to build an index with the given number of adjacency entries.
    pub fn index_time_sec(&self, adjacency_entries: usize) -> f64 {
        adjacency_entries as f64 * self.ns_per_index_entry * 1e-9
    }

    /// Seconds to rebuild `entries` adjacency entries during partitioning.
    pub fn partition_time_sec(&self, entries: usize) -> f64 {
        entries as f64 * self.ns_per_partition_entry * 1e-9
    }

    /// Effective speedup of `threads` co-running workers on the modelled
    /// single-socket host: flat per-thread efficiency divided by the
    /// memory-contention serialisation `1 + σ·(T − 1)`. Monotone in the
    /// thread count, never below 1.
    pub fn parallel_speedup(&self, threads: usize) -> f64 {
        let t = threads.max(1) as f64;
        (t * self.parallel_efficiency / (1.0 + self.memory_contention * (t - 1.0))).max(1.0)
    }

    /// Seconds of search time when sharded over `threads` workers.
    pub fn parallel_search_time_sec(&self, stats: &EngineStats, threads: usize) -> f64 {
        self.search_time_sec(stats) / self.parallel_speedup(threads)
    }
}

/// Cost of GPU-side join work (the paper's Tesla V100).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCostModel {
    /// Per candidate probe across the streaming multiprocessors.
    pub ns_per_probe: f64,
    /// Per output row materialised (global-memory write amplification).
    pub ns_per_output_row: f64,
    /// Per join level: kernel launch + synchronisation.
    pub level_overhead_sec: f64,
    /// Host→device graph copy bandwidth (bytes/sec).
    pub transfer_bandwidth: f64,
}

impl Default for GpuCostModel {
    fn default() -> Self {
        GpuCostModel {
            ns_per_probe: 0.8,
            ns_per_output_row: 2.0,
            level_overhead_sec: 50e-6,
            transfer_bandwidth: 11.0e9,
        }
    }
}

impl GpuCostModel {
    /// Seconds for a join with the given totals.
    pub fn join_time_sec(
        &self,
        probe_ops: u64,
        output_rows: u64,
        levels: u32,
        graph_bytes: usize,
    ) -> f64 {
        probe_ops as f64 * self.ns_per_probe * 1e-9
            + output_rows as f64 * self.ns_per_output_row * 1e-9
            + levels as f64 * self.level_overhead_sec
            + graph_bytes as f64 / self.transfer_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(p: u64, e: u64, i: u64) -> EngineStats {
        EngineStats {
            embeddings: 0,
            partials_generated: p,
            edge_verifications: e,
            intersection_elements: i,
            visited_rejections: 0,
        }
    }

    #[test]
    fn search_time_scales_with_work() {
        let m = CpuCostModel::default();
        let t1 = m.search_time_sec(&stats(1_000_000, 0, 0));
        let t2 = m.search_time_sec(&stats(2_000_000, 0, 0));
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // 1M partials at 120ns = 120ms.
        assert!((t1 - 0.12).abs() < 1e-12);
    }

    #[test]
    fn parallel_time_divides_by_effective_threads() {
        let m = CpuCostModel::default();
        let s = stats(8_000_000, 0, 0);
        let seq = m.search_time_sec(&s);
        let par = m.parallel_search_time_sec(&s, 8);
        // 8 × 0.75 / (1 + 7 × 0.15) ≈ 2.93 — contention-capped.
        let expected = 8.0 * m.parallel_efficiency / (1.0 + 7.0 * m.memory_contention);
        assert!((seq / par - expected).abs() < 1e-9);
        assert!(expected < 8.0 * m.parallel_efficiency);
    }

    #[test]
    fn parallel_speedup_is_monotone_and_floored() {
        let m = CpuCostModel::default();
        assert_eq!(m.parallel_speedup(1), 1.0); // 0.75 floored to 1
        let mut prev = 0.0;
        for t in 1..=16 {
            let s = m.parallel_speedup(t);
            assert!(s >= prev, "speedup not monotone at {t}");
            prev = s;
        }
        // Contention-free model degenerates to the flat efficiency.
        let free = CpuCostModel {
            memory_contention: 0.0,
            ..CpuCostModel::default()
        };
        assert!((free.parallel_speedup(8) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_levels_add_overhead() {
        let m = GpuCostModel::default();
        let a = m.join_time_sec(0, 0, 1, 0);
        let b = m.join_time_sec(0, 0, 5, 0);
        assert!((b - a - 4.0 * m.level_overhead_sec).abs() < 1e-12);
    }

    #[test]
    fn cpu_is_slower_per_op_than_fpga_cycle() {
        // Sanity: the calibration keeps one CPU search step an order of
        // magnitude above one 300 MHz FPGA cycle (3.33 ns) — the premise of
        // the paper's co-design.
        let m = CpuCostModel::default();
        assert!(m.ns_per_partial > 10.0 * 3.33 / 2.0);
    }
}
