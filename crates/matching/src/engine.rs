//! The shared backtracking engine behind the CPU baselines.
//!
//! CFL-Match, DAF, and CECI differ (for the purposes of the paper's
//! evaluation) along three axes:
//!
//! 1. the auxiliary index (CPI vs CS vs the CECI index) — modelled by how
//!    the [`cst::Cst`] is built (refinement passes, filters);
//! 2. the matching order heuristic — supplied as a [`MatchingOrder`];
//! 3. the candidate-extension method — **edge verification** (CFL: expand
//!    from one backward list and verify the remaining query edges against
//!    `G`) vs **intersection** (CECI/DAF: intersect the candidate lists of
//!    all backward neighbours), the distinction Section VII-C highlights.
//!
//! This engine implements both extension methods over a CST index with
//! timeout/memory/result limits, so each baseline is a thin configuration.

use crate::limits::{Outcome, RunLimits};
use cst::{Cst, MatchPlan};
use graph_core::{Graph, MatchingOrder, QueryGraph, VertexId};
use std::time::Instant;

/// Candidate-extension strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtensionMethod {
    /// Expand from one backward adjacency list; verify every other backward
    /// query edge with an `O(log d)` probe into `G`.
    EdgeVerification(AnchorPolicy),
    /// Intersect the backward candidate lists (sorted u32 merges), as the
    /// intersection-based algorithms do.
    Intersection,
}

/// Which backward list the edge-verification expansion anchors on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorPolicy {
    /// The earliest backward neighbour in the order (the tree parent for
    /// BFS-derived orders) — what CFL's CPI supports, since it stores
    /// adjacency for tree edges only.
    FirstBackward,
    /// The dynamically smallest backward list (a modernised improvement,
    /// and what the FAST CPU share uses).
    MinList,
}

/// Counters from an engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub embeddings: u64,
    pub partials_generated: u64,
    pub edge_verifications: u64,
    pub intersection_elements: u64,
    pub visited_rejections: u64,
}

/// How often the timeout is polled (in partials).
const TIMEOUT_POLL_MASK: u64 = (1 << 14) - 1;

struct Search<'a> {
    cst: &'a Cst,
    g: &'a Graph,
    plan: &'a MatchPlan,
    extension: ExtensionMethod,
    deadline: Option<(Instant, std::time::Duration)>,
    max_results: u64,
    stats: EngineStats,
    mapping: Vec<u32>,
    mapped: Vec<VertexId>,
    /// Reusable intersection buffers, one pair per depth.
    scratch: Vec<Vec<u32>>,
}

/// Runs the backtracking search; returns the outcome and statistics.
pub fn run_backtrack(
    q: &QueryGraph,
    g: &Graph,
    cst: &Cst,
    order: &MatchingOrder,
    extension: ExtensionMethod,
    limits: &RunLimits,
) -> (Outcome, EngineStats) {
    let plan = MatchPlan::new(q, order);
    let n = plan.len();
    let mut search = Search {
        cst,
        g,
        plan: &plan,
        extension,
        deadline: limits.timeout.map(|t| (Instant::now(), t)),
        max_results: limits.max_results.unwrap_or(u64::MAX),
        stats: EngineStats::default(),
        mapping: vec![0u32; n],
        mapped: vec![VertexId::new(0); n],
        scratch: vec![Vec::new(); n],
    };
    if n == 0 {
        return (Outcome::Completed, search.stats);
    }
    let root = plan.vertex_at(0);
    let root_count = cst.candidate_count(root) as u32;
    for i in 0..root_count {
        search.stats.partials_generated += 1;
        search.mapping[0] = i;
        search.mapped[0] = cst.candidate(root, i);
        match search.descend(1) {
            Flow::Continue => {}
            Flow::Stop(outcome) => return (outcome, search.stats),
        }
    }
    (Outcome::Completed, search.stats)
}

enum Flow {
    Continue,
    Stop(Outcome),
}

/// Size ratio above which the larger list is galloped instead of merged:
/// `log2` probes per element beat a linear scan once the partner list is
/// ~32× longer (skips amortise past the binary-search constant factor).
const GALLOP_RATIO: usize = 32;

/// In-place intersection of sorted `result` with sorted `other`: a linear
/// two-pointer merge when the sizes are comparable, galloping
/// (exponential-probe) search into `other` when it is `GALLOP_RATIO`×
/// longer. Callers sort lists ascending by length, so `result` is never
/// the longer side.
fn intersect_sorted(result: &mut Vec<u32>, other: &[u32]) {
    let gallop = other.len() / GALLOP_RATIO > result.len();
    let mut w = 0usize; // write cursor (w ≤ read cursor always)
    let mut o = 0usize; // cursor into `other`
    for r in 0..result.len() {
        let x = result[r];
        if gallop {
            o = gallop_to(other, o, x);
        } else {
            while o < other.len() && other[o] < x {
                o += 1;
            }
        }
        if o == other.len() {
            break;
        }
        if other[o] == x {
            result[w] = x;
            w += 1;
            o += 1;
        }
    }
    result.truncate(w);
}

/// First index `i ≥ from` with `other[i] ≥ x`, by doubling probes then a
/// binary search within the final bracket (`other.len()` if none).
fn gallop_to(other: &[u32], from: usize, x: u32) -> usize {
    if from >= other.len() || other[from] >= x {
        return from;
    }
    // Invariant: other[from + lo] < x; answer is in (from+lo, from+hi].
    let mut step = 1usize;
    let mut lo = 0usize;
    let remaining = other.len() - from;
    while lo + step < remaining && other[from + lo + step] < x {
        lo += step;
        step *= 2;
    }
    let mut hi = (lo + step).min(remaining - 1);
    // Binary search in (lo, hi] — other[from+hi] may still be < x when the
    // doubling ran off the end.
    if other[from + hi] < x {
        return other.len();
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if other[from + mid] < x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    from + hi
}

impl<'a> Search<'a> {
    fn check_limits(&self) -> Option<Outcome> {
        if self.stats.embeddings >= self.max_results {
            return Some(Outcome::ResultLimit);
        }
        if self.stats.partials_generated & TIMEOUT_POLL_MASK == 0 {
            if let Some((start, budget)) = self.deadline {
                if start.elapsed() > budget {
                    return Some(Outcome::Timeout);
                }
            }
        }
        None
    }

    fn descend(&mut self, depth: usize) -> Flow {
        if depth == self.plan.len() {
            self.stats.embeddings += 1;
            if self.stats.embeddings >= self.max_results {
                return Flow::Stop(Outcome::ResultLimit);
            }
            return Flow::Continue;
        }
        let u = self.plan.vertex_at(depth);
        let backward = self.plan.backward(depth);
        debug_assert!(!backward.is_empty());

        // The CST reference outlives `self`'s borrows, so slices taken from
        // it stay valid across recursive calls.
        let cst: &'a Cst = self.cst;

        match self.extension {
            ExtensionMethod::EdgeVerification(policy) => {
                let (anchor_pos, anchor_list) = match policy {
                    AnchorPolicy::FirstBackward => {
                        let bd = backward[0];
                        let bu = self.plan.vertex_at(bd);
                        (bd, cst.neighbors(bu, self.mapping[bd], u))
                    }
                    AnchorPolicy::MinList => backward
                        .iter()
                        .map(|&bd| {
                            let bu = self.plan.vertex_at(bd);
                            (bd, cst.neighbors(bu, self.mapping[bd], u))
                        })
                        .min_by_key(|(_, list)| list.len())
                        .expect("backward non-empty"),
                };

                for &j in anchor_list {
                    self.stats.partials_generated += 1;
                    if let Some(outcome) = self.check_limits() {
                        return Flow::Stop(outcome);
                    }
                    let v = cst.candidate(u, j);
                    if self.mapped[..depth].contains(&v) {
                        self.stats.visited_rejections += 1;
                        continue;
                    }
                    let mut ok = true;
                    for &bd in backward {
                        if bd == anchor_pos {
                            continue;
                        }
                        self.stats.edge_verifications += 1;
                        // Verify against the data graph (CFL's method).
                        if !self.g.has_edge(self.mapped[bd], v) {
                            ok = false;
                            break;
                        }
                    }
                    if !ok {
                        continue;
                    }
                    self.mapping[depth] = j;
                    self.mapped[depth] = v;
                    if let Flow::Stop(o) = self.descend(depth + 1) {
                        return Flow::Stop(o);
                    }
                }
            }
            ExtensionMethod::Intersection => {
                // Intersect all backward candidate lists, smallest first.
                let mut lists: Vec<&[u32]> = backward
                    .iter()
                    .map(|&bd| {
                        let bu = self.plan.vertex_at(bd);
                        cst.neighbors(bu, self.mapping[bd], u)
                    })
                    .collect();
                lists.sort_by_key(|l| l.len());

                let mut result = std::mem::take(&mut self.scratch[depth]);
                result.clear();
                result.extend_from_slice(lists[0]);
                for other in &lists[1..] {
                    if result.is_empty() {
                        break;
                    }
                    // Cost unit: one per element of the current (smaller)
                    // list per intersected partner — identical for both
                    // strategies below, so the modelled time does not
                    // depend on which one ran.
                    self.stats.intersection_elements += result.len() as u64;
                    intersect_sorted(&mut result, other);
                }

                for &j in &result {
                    self.stats.partials_generated += 1;
                    if let Some(outcome) = self.check_limits() {
                        self.scratch[depth] = result;
                        return Flow::Stop(outcome);
                    }
                    let v = cst.candidate(u, j);
                    if self.mapped[..depth].contains(&v) {
                        self.stats.visited_rejections += 1;
                        continue;
                    }
                    self.mapping[depth] = j;
                    self.mapped[depth] = v;
                    if let Flow::Stop(o) = self.descend(depth + 1) {
                        self.scratch[depth] = result;
                        return Flow::Stop(o);
                    }
                }
                self.scratch[depth] = result;
            }
        }
        Flow::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst::build_cst;
    use graph_core::generators::random_labelled_graph;
    use graph_core::{BfsTree, Label, QueryVertexId};

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn qv(x: usize) -> QueryVertexId {
        QueryVertexId::from_index(x)
    }

    fn setup(seed: u64) -> (QueryGraph, Graph, MatchingOrder, Cst) {
        let q = QueryGraph::new(
            vec![l(0), l(1), l(0), l(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        )
        .unwrap();
        let g = random_labelled_graph(50, 0.18, 2, seed);
        let tree = BfsTree::new(&q, qv(0));
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).unwrap();
        let cst = build_cst(&q, &g, &tree);
        (q, g, order, cst)
    }

    #[test]
    fn both_methods_agree_with_cst_enumeration() {
        for seed in [3, 7, 11, 19] {
            let (q, g, order, cstx) = setup(seed);
            let oracle = cst::count_embeddings(&cstx, &q, &order);
            let (o1, s1) = run_backtrack(
                &q,
                &g,
                &cstx,
                &order,
                ExtensionMethod::EdgeVerification(AnchorPolicy::MinList),
                &RunLimits::unlimited(),
            );
            let (o2, s2) = run_backtrack(
                &q,
                &g,
                &cstx,
                &order,
                ExtensionMethod::Intersection,
                &RunLimits::unlimited(),
            );
            assert_eq!(o1, Outcome::Completed);
            assert_eq!(o2, Outcome::Completed);
            assert_eq!(s1.embeddings, oracle, "edge-verification seed {seed}");
            assert_eq!(s2.embeddings, oracle, "intersection seed {seed}");
        }
    }

    #[test]
    fn result_limit_stops_early() {
        let (q, g, order, cstx) = setup(5);
        let total = cst::count_embeddings(&cstx, &q, &order);
        if total < 2 {
            return;
        }
        let limits = RunLimits {
            max_results: Some(1),
            ..RunLimits::unlimited()
        };
        let (o, s) = run_backtrack(
            &q,
            &g,
            &cstx,
            &order,
            ExtensionMethod::Intersection,
            &limits,
        );
        assert_eq!(o, Outcome::ResultLimit);
        assert_eq!(s.embeddings, 1);
    }

    #[test]
    fn zero_timeout_reports_timeout() {
        let (q, g, order, cstx) = setup(9);
        let limits = RunLimits {
            timeout: Some(std::time::Duration::ZERO),
            ..RunLimits::unlimited()
        };
        // With a zero budget the first poll must trip (poll happens at the
        // first partial because partials_generated starts at multiples of
        // the mask + 1... force many partials by running the search).
        let (o, _) = run_backtrack(
            &q,
            &g,
            &cstx,
            &order,
            ExtensionMethod::Intersection,
            &limits,
        );
        // Tiny searches may finish before the first poll; accept either but
        // require no panic. Larger searches are covered by baseline tests.
        assert!(matches!(o, Outcome::Completed | Outcome::Timeout));
    }

    #[test]
    fn intersect_sorted_matches_naive_for_both_strategies() {
        let naive = |a: &[u32], b: &[u32]| -> Vec<u32> {
            a.iter().copied().filter(|x| b.contains(x)).collect()
        };
        // Comparable sizes → merge path.
        let mut r = vec![1u32, 3, 5, 7, 9, 11];
        let other = vec![2u32, 3, 4, 7, 8, 11, 12];
        let expect = naive(&r, &other);
        intersect_sorted(&mut r, &other);
        assert_eq!(r, expect);
        // Wildly unbalanced sizes → gallop path (other is 1000× longer).
        let big: Vec<u32> = (0..4000).map(|i| i * 3).collect();
        for small in [vec![], vec![9u32], vec![0, 2, 9, 3000, 11997, 11998]] {
            let mut r = small.clone();
            let expect = naive(&r, &big);
            assert!(big.len() / GALLOP_RATIO > r.len(), "gallop branch taken");
            intersect_sorted(&mut r, &big);
            assert_eq!(r, expect, "input {small:?}");
        }
        // Element past the end of `other`.
        let mut r = vec![100_000u32];
        intersect_sorted(&mut r, &big);
        assert!(r.is_empty());
    }

    #[test]
    fn gallop_to_finds_lower_bound() {
        let v: Vec<u32> = vec![2, 4, 4, 8, 16, 32, 64];
        for (from, x, want) in [
            (0usize, 0u32, 0usize),
            (0, 2, 0),
            (0, 3, 1),
            (0, 4, 1),
            (2, 4, 2),
            (0, 64, 6),
            (0, 65, 7),
            (7, 1, 7),
        ] {
            assert_eq!(gallop_to(&v, from, x), want, "from={from} x={x}");
        }
    }

    #[test]
    fn intersection_counts_work() {
        let (q, g, order, cstx) = setup(13);
        let (_, s) = run_backtrack(
            &q,
            &g,
            &cstx,
            &order,
            ExtensionMethod::Intersection,
            &RunLimits::unlimited(),
        );
        // The 5-edge query on 4 vertices has two backward neighbours at the
        // last depths, so intersections must have occurred whenever partials
        // were expanded past depth 1.
        if s.partials_generated > cstx.candidate_count(qv(0)) as u64 {
            assert!(s.intersection_elements > 0);
        }
    }
}
