//! The shared backtracking engine behind the CPU baselines.
//!
//! CFL-Match, DAF, and CECI differ (for the purposes of the paper's
//! evaluation) along three axes:
//!
//! 1. the auxiliary index (CPI vs CS vs the CECI index) — modelled by how
//!    the [`cst::Cst`] is built (refinement passes, filters);
//! 2. the matching order heuristic — supplied as a [`MatchingOrder`];
//! 3. the candidate-extension method — **edge verification** (CFL: expand
//!    from one backward list and verify the remaining query edges against
//!    `G`) vs **intersection** (CECI/DAF: intersect the candidate lists of
//!    all backward neighbours), the distinction Section VII-C highlights.
//!
//! This engine implements both extension methods over a CST index with
//! timeout/memory/result limits, so each baseline is a thin configuration.

use crate::limits::{Outcome, RunLimits};
use cst::{Cst, MatchPlan};
use graph_core::{Graph, MatchingOrder, QueryGraph, VertexId};
use std::time::Instant;

/// Candidate-extension strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtensionMethod {
    /// Expand from one backward adjacency list; verify every other backward
    /// query edge with an `O(log d)` probe into `G`.
    EdgeVerification(AnchorPolicy),
    /// Intersect the backward candidate lists (sorted u32 merges), as the
    /// intersection-based algorithms do.
    Intersection,
}

/// Which backward list the edge-verification expansion anchors on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorPolicy {
    /// The earliest backward neighbour in the order (the tree parent for
    /// BFS-derived orders) — what CFL's CPI supports, since it stores
    /// adjacency for tree edges only.
    FirstBackward,
    /// The dynamically smallest backward list (a modernised improvement,
    /// and what the FAST CPU share uses).
    MinList,
}

/// Counters from an engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub embeddings: u64,
    pub partials_generated: u64,
    pub edge_verifications: u64,
    pub intersection_elements: u64,
    pub visited_rejections: u64,
}

/// How often the timeout is polled (in partials).
const TIMEOUT_POLL_MASK: u64 = (1 << 14) - 1;

struct Search<'a> {
    cst: &'a Cst,
    g: &'a Graph,
    plan: &'a MatchPlan,
    extension: ExtensionMethod,
    deadline: Option<(Instant, std::time::Duration)>,
    max_results: u64,
    stats: EngineStats,
    mapping: Vec<u32>,
    mapped: Vec<VertexId>,
    /// Reusable intersection buffers, one pair per depth.
    scratch: Vec<Vec<u32>>,
}

/// Runs the backtracking search; returns the outcome and statistics.
pub fn run_backtrack(
    q: &QueryGraph,
    g: &Graph,
    cst: &Cst,
    order: &MatchingOrder,
    extension: ExtensionMethod,
    limits: &RunLimits,
) -> (Outcome, EngineStats) {
    let plan = MatchPlan::new(q, order);
    let n = plan.len();
    let mut search = Search {
        cst,
        g,
        plan: &plan,
        extension,
        deadline: limits.timeout.map(|t| (Instant::now(), t)),
        max_results: limits.max_results.unwrap_or(u64::MAX),
        stats: EngineStats::default(),
        mapping: vec![0u32; n],
        mapped: vec![VertexId::new(0); n],
        scratch: vec![Vec::new(); n],
    };
    if n == 0 {
        return (Outcome::Completed, search.stats);
    }
    let root = plan.vertex_at(0);
    let root_count = cst.candidate_count(root) as u32;
    for i in 0..root_count {
        search.stats.partials_generated += 1;
        search.mapping[0] = i;
        search.mapped[0] = cst.candidate(root, i);
        match search.descend(1) {
            Flow::Continue => {}
            Flow::Stop(outcome) => return (outcome, search.stats),
        }
    }
    (Outcome::Completed, search.stats)
}

enum Flow {
    Continue,
    Stop(Outcome),
}

impl<'a> Search<'a> {
    fn check_limits(&self) -> Option<Outcome> {
        if self.stats.embeddings >= self.max_results {
            return Some(Outcome::ResultLimit);
        }
        if self.stats.partials_generated & TIMEOUT_POLL_MASK == 0 {
            if let Some((start, budget)) = self.deadline {
                if start.elapsed() > budget {
                    return Some(Outcome::Timeout);
                }
            }
        }
        None
    }

    fn descend(&mut self, depth: usize) -> Flow {
        if depth == self.plan.len() {
            self.stats.embeddings += 1;
            if self.stats.embeddings >= self.max_results {
                return Flow::Stop(Outcome::ResultLimit);
            }
            return Flow::Continue;
        }
        let u = self.plan.vertex_at(depth);
        let backward = self.plan.backward(depth);
        debug_assert!(!backward.is_empty());

        // The CST reference outlives `self`'s borrows, so slices taken from
        // it stay valid across recursive calls.
        let cst: &'a Cst = self.cst;

        match self.extension {
            ExtensionMethod::EdgeVerification(policy) => {
                let (anchor_pos, anchor_list) = match policy {
                    AnchorPolicy::FirstBackward => {
                        let bd = backward[0];
                        let bu = self.plan.vertex_at(bd);
                        (bd, cst.neighbors(bu, self.mapping[bd], u))
                    }
                    AnchorPolicy::MinList => backward
                        .iter()
                        .map(|&bd| {
                            let bu = self.plan.vertex_at(bd);
                            (bd, cst.neighbors(bu, self.mapping[bd], u))
                        })
                        .min_by_key(|(_, list)| list.len())
                        .expect("backward non-empty"),
                };

                for &j in anchor_list {
                    self.stats.partials_generated += 1;
                    if let Some(outcome) = self.check_limits() {
                        return Flow::Stop(outcome);
                    }
                    let v = cst.candidate(u, j);
                    if self.mapped[..depth].contains(&v) {
                        self.stats.visited_rejections += 1;
                        continue;
                    }
                    let mut ok = true;
                    for &bd in backward {
                        if bd == anchor_pos {
                            continue;
                        }
                        self.stats.edge_verifications += 1;
                        // Verify against the data graph (CFL's method).
                        if !self.g.has_edge(self.mapped[bd], v) {
                            ok = false;
                            break;
                        }
                    }
                    if !ok {
                        continue;
                    }
                    self.mapping[depth] = j;
                    self.mapped[depth] = v;
                    if let Flow::Stop(o) = self.descend(depth + 1) {
                        return Flow::Stop(o);
                    }
                }
            }
            ExtensionMethod::Intersection => {
                // Intersect all backward candidate lists, smallest first.
                let mut lists: Vec<&[u32]> = backward
                    .iter()
                    .map(|&bd| {
                        let bu = self.plan.vertex_at(bd);
                        cst.neighbors(bu, self.mapping[bd], u)
                    })
                    .collect();
                lists.sort_by_key(|l| l.len());

                let mut result = std::mem::take(&mut self.scratch[depth]);
                result.clear();
                result.extend_from_slice(lists[0]);
                for other in &lists[1..] {
                    if result.is_empty() {
                        break;
                    }
                    self.stats.intersection_elements += result.len() as u64;
                    // Both sorted: retain via binary search (lists are short
                    // relative to galloping break-even at this scale).
                    result.retain(|x| other.binary_search(x).is_ok());
                }

                for &j in &result {
                    self.stats.partials_generated += 1;
                    if let Some(outcome) = self.check_limits() {
                        self.scratch[depth] = result;
                        return Flow::Stop(outcome);
                    }
                    let v = cst.candidate(u, j);
                    if self.mapped[..depth].contains(&v) {
                        self.stats.visited_rejections += 1;
                        continue;
                    }
                    self.mapping[depth] = j;
                    self.mapped[depth] = v;
                    if let Flow::Stop(o) = self.descend(depth + 1) {
                        self.scratch[depth] = result;
                        return Flow::Stop(o);
                    }
                }
                self.scratch[depth] = result;
            }
        }
        Flow::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst::build_cst;
    use graph_core::generators::random_labelled_graph;
    use graph_core::{BfsTree, Label, QueryVertexId};

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn qv(x: usize) -> QueryVertexId {
        QueryVertexId::from_index(x)
    }

    fn setup(seed: u64) -> (QueryGraph, Graph, MatchingOrder, Cst) {
        let q = QueryGraph::new(
            vec![l(0), l(1), l(0), l(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        )
        .unwrap();
        let g = random_labelled_graph(50, 0.18, 2, seed);
        let tree = BfsTree::new(&q, qv(0));
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).unwrap();
        let cst = build_cst(&q, &g, &tree);
        (q, g, order, cst)
    }

    #[test]
    fn both_methods_agree_with_cst_enumeration() {
        for seed in [3, 7, 11, 19] {
            let (q, g, order, cstx) = setup(seed);
            let oracle = cst::count_embeddings(&cstx, &q, &order);
            let (o1, s1) = run_backtrack(
                &q,
                &g,
                &cstx,
                &order,
                ExtensionMethod::EdgeVerification(AnchorPolicy::MinList),
                &RunLimits::unlimited(),
            );
            let (o2, s2) = run_backtrack(
                &q,
                &g,
                &cstx,
                &order,
                ExtensionMethod::Intersection,
                &RunLimits::unlimited(),
            );
            assert_eq!(o1, Outcome::Completed);
            assert_eq!(o2, Outcome::Completed);
            assert_eq!(s1.embeddings, oracle, "edge-verification seed {seed}");
            assert_eq!(s2.embeddings, oracle, "intersection seed {seed}");
        }
    }

    #[test]
    fn result_limit_stops_early() {
        let (q, g, order, cstx) = setup(5);
        let total = cst::count_embeddings(&cstx, &q, &order);
        if total < 2 {
            return;
        }
        let limits = RunLimits {
            max_results: Some(1),
            ..RunLimits::unlimited()
        };
        let (o, s) = run_backtrack(
            &q,
            &g,
            &cstx,
            &order,
            ExtensionMethod::Intersection,
            &limits,
        );
        assert_eq!(o, Outcome::ResultLimit);
        assert_eq!(s.embeddings, 1);
    }

    #[test]
    fn zero_timeout_reports_timeout() {
        let (q, g, order, cstx) = setup(9);
        let limits = RunLimits {
            timeout: Some(std::time::Duration::ZERO),
            ..RunLimits::unlimited()
        };
        // With a zero budget the first poll must trip (poll happens at the
        // first partial because partials_generated starts at multiples of
        // the mask + 1... force many partials by running the search).
        let (o, _) = run_backtrack(
            &q,
            &g,
            &cstx,
            &order,
            ExtensionMethod::Intersection,
            &limits,
        );
        // Tiny searches may finish before the first poll; accept either but
        // require no panic. Larger searches are covered by baseline tests.
        assert!(matches!(o, Outcome::Completed | Outcome::Timeout));
    }

    #[test]
    fn intersection_counts_work() {
        let (q, g, order, cstx) = setup(13);
        let (_, s) = run_backtrack(
            &q,
            &g,
            &cstx,
            &order,
            ExtensionMethod::Intersection,
            &RunLimits::unlimited(),
        );
        // The 5-edge query on 4 vertices has two backward neighbours at the
        // last depths, so intersections must have occurred whenever partials
        // were expanded past depth 1.
        if s.partials_generated > cstx.candidate_count(qv(0)) as u64 {
            assert!(s.intersection_elements > 0);
        }
    }
}
