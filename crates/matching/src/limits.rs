//! Run limits and outcomes.
//!
//! The paper's harness reports `INF` for queries exceeding the 3-hour limit
//! and `OOM` for algorithms exhausting memory (Section VII, Fig. 14). The
//! same tri-state outcome is threaded through every matcher here so the
//! benchmark tables can be regenerated faithfully (at laptop-scale limits).

use std::time::Duration;

/// Resource limits applied to a matching run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Wall-clock budget; `None` = unlimited. (The paper uses 3 hours.)
    pub timeout: Option<Duration>,
    /// Modelled memory budget in bytes; `None` = unlimited. (The paper's
    /// host has 250 GB; the GPU baselines get 16 GB.)
    pub memory_cap: Option<usize>,
    /// Stop after this many embeddings; `None` = enumerate all.
    pub max_results: Option<u64>,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            timeout: Some(Duration::from_secs(60)),
            memory_cap: None,
            max_results: None,
        }
    }
}

impl RunLimits {
    /// No limits at all (tests on tiny inputs).
    pub fn unlimited() -> Self {
        RunLimits {
            timeout: None,
            memory_cap: None,
            max_results: None,
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion.
    Completed,
    /// Hit the wall-clock budget — reported as `INF` in the tables.
    Timeout,
    /// Exceeded the modelled memory budget — reported as `OOM`.
    OutOfMemory,
    /// Hit `max_results` (intentional early stop).
    ResultLimit,
}

impl Outcome {
    /// The marker the paper's tables use.
    pub fn table_marker(&self) -> &'static str {
        match self {
            Outcome::Completed | Outcome::ResultLimit => "ok",
            Outcome::Timeout => "INF",
            Outcome::OutOfMemory => "OOM",
        }
    }
}

/// Result of one baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// Algorithm label (e.g. `"CFL"`, `"DAF"`, `"CECI-8"`).
    pub algorithm: String,
    /// How the run ended.
    pub outcome: Outcome,
    /// Embeddings found (partial when not `Completed`).
    pub embeddings: u64,
    /// Index/auxiliary-structure construction time.
    pub build_time: Duration,
    /// Enumeration time.
    pub match_time: Duration,
    /// Peak modelled memory in bytes (index + intermediates).
    pub peak_memory_bytes: usize,
    /// Partial results generated during search (the `N` analogue).
    pub partials_generated: u64,
    /// Index-construction time normalised to the paper's platform
    /// (see [`crate::cost_model`]).
    pub modeled_build_sec: f64,
    /// Search time normalised to the paper's platform.
    pub modeled_match_sec: f64,
}

impl MatchResult {
    /// Total elapsed (build + match), as measured on this host.
    pub fn total_time(&self) -> Duration {
        self.build_time + self.match_time
    }

    /// Total elapsed normalised to the paper's platform — what the Fig. 14
    /// tables report. Infinite for timed-out runs.
    pub fn modeled_total_sec(&self) -> f64 {
        match self.outcome {
            Outcome::Timeout => f64::INFINITY,
            _ => self.modeled_build_sec + self.modeled_match_sec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers() {
        assert_eq!(Outcome::Completed.table_marker(), "ok");
        assert_eq!(Outcome::Timeout.table_marker(), "INF");
        assert_eq!(Outcome::OutOfMemory.table_marker(), "OOM");
    }

    #[test]
    fn default_has_safety_timeout() {
        assert!(RunLimits::default().timeout.is_some());
        assert!(RunLimits::unlimited().timeout.is_none());
    }

    #[test]
    fn total_time_sums() {
        let r = MatchResult {
            algorithm: "X".into(),
            outcome: Outcome::Completed,
            embeddings: 1,
            build_time: Duration::from_millis(2),
            match_time: Duration::from_millis(3),
            peak_memory_bytes: 0,
            partials_generated: 0,
            modeled_build_sec: 0.001,
            modeled_match_sec: 0.002,
        };
        assert_eq!(r.total_time(), Duration::from_millis(5));
        assert!((r.modeled_total_sec() - 0.003).abs() < 1e-12);
    }
}
