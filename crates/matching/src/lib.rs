//! # matching
//!
//! CPU subgraph-matching baselines for the FAST reproduction — the
//! algorithms the paper compares against in Fig. 14/15:
//!
//! * [`Baseline::Cfl`] — CFL-Match-style: CPI-like index, core-forest-leaf
//!   order, edge verification backed by an adjacency-matrix memory model
//!   (the structure that makes CFL go OOM on billion-scale graphs);
//! * [`Baseline::Daf`] — DAF-style: CS index (extra refinement), candidate-
//!   size-first order, intersection-based extension;
//! * [`Baseline::Ceci`] — CECI-style: BFS-tree index, intersection-based;
//! * [`run_baseline_parallel`] — the `DAF-8`/`CECI-8` root-sharded variants;
//! * [`vf2_count`] — a VF2-style oracle used by tests across the workspace.
//!
//! All runs honour [`RunLimits`] (timeout → `INF`, memory cap → `OOM`),
//! mirroring the paper's reporting.

pub mod baselines;
pub mod cost_model;
pub mod engine;
pub mod limits;
pub mod parallel;
pub mod vf2;

pub use baselines::{
    baseline_extension, baseline_index_options, baseline_order, modelled_memory_bytes,
    run_baseline, Baseline,
};
pub use cost_model::{CpuCostModel, GpuCostModel};
pub use engine::{run_backtrack, AnchorPolicy, EngineStats, ExtensionMethod};
pub use limits::{MatchResult, Outcome, RunLimits};
pub use parallel::run_baseline_parallel;
pub use vf2::vf2_count;
