//! Parallel baseline variants (the paper's `DAF-8` / `CECI-8`).
//!
//! The paper evaluates 8-thread versions of DAF and CECI. Both parallelise
//! by splitting the root candidate set across threads — the same
//! partitioning axis the CST partitioner uses — with each thread running the
//! sequential engine on its shard. Skewed shards limit scaling, which is
//! exactly the imbalance the paper's Fig. 14 commentary alludes to.

use crate::baselines::{
    baseline_extension, baseline_index_options, baseline_order, modelled_memory_bytes, Baseline,
};
use crate::cost_model::CpuCostModel;
use crate::engine::{run_backtrack, EngineStats};
use crate::limits::{MatchResult, Outcome, RunLimits};
use cst::build_cst_with_stats;
use graph_core::{select_root, BfsTree, Graph, QueryGraph, QueryVertexId};
use std::time::Instant;

/// Runs `baseline` with the root candidates split over `threads` workers.
pub fn run_baseline_parallel(
    baseline: Baseline,
    q: &QueryGraph,
    g: &Graph,
    limits: &RunLimits,
    threads: usize,
) -> MatchResult {
    assert!(threads >= 1, "need at least one thread");
    let name = format!("{}-{}", baseline.name(), threads);

    let build_start = Instant::now();
    let root = select_root(q, g);
    let tree = BfsTree::new(q, root);
    let options = baseline_index_options(baseline);
    let (index, build_stats) = build_cst_with_stats(q, g, &tree, options);
    let build_time = build_start.elapsed();
    let cost = CpuCostModel::default();
    let modeled_build_sec = cost.index_time_sec(build_stats.adjacency_entries);

    // The parallel version keeps one index copy per thread in the released
    // implementations; DAF-8's OOM on DG03/DG10 (Section VII-C) stems from
    // per-thread state on top of the CS. Model per-thread duplication of the
    // mutable search state as a fraction of the index.
    let per_thread_overhead = index.size_bytes() / 4;
    let peak_memory = modelled_memory_bytes(baseline, g, index.size_bytes())
        + per_thread_overhead * threads;
    if let Some(cap) = limits.memory_cap {
        if peak_memory > cap {
            return MatchResult {
                algorithm: name,
                outcome: Outcome::OutOfMemory,
                embeddings: 0,
                build_time,
                match_time: std::time::Duration::ZERO,
                peak_memory_bytes: peak_memory,
                partials_generated: 0,
                modeled_build_sec,
                modeled_match_sec: 0.0,
            };
        }
    }

    let order = baseline_order(baseline, q, g, &tree);
    let extension = baseline_extension(baseline);

    // Shard the root candidate set. The engine walks the whole root range,
    // so each worker gets a sliced clone of the index's root candidates via
    // partitioning on candidate index ranges.
    let match_start = Instant::now();
    let root_vertex = order.first();
    let root_count = index.candidate_count(root_vertex);
    let shard_size = root_count.div_ceil(threads.max(1)).max(1);

    let results: Vec<(Outcome, EngineStats)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * shard_size;
            if lo >= root_count {
                break;
            }
            let hi = ((t + 1) * shard_size).min(root_count);
            let index_ref = &index;
            let order_ref = &order;
            handles.push(scope.spawn(move || {
                let shard = shard_root(index_ref, root_vertex, lo as u32..hi as u32);
                run_backtrack(q, g, &shard, order_ref, extension, limits)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let match_time = match_start.elapsed();

    let embeddings = results.iter().map(|r| r.1.embeddings).sum();
    let partials = results.iter().map(|r| r.1.partials_generated).sum();
    // Modelled parallel time: the slowest shard at single-core speed (real
    // skew), floored by the perfectly-balanced efficiency-adjusted time.
    let slowest_shard = results
        .iter()
        .map(|r| cost.search_time_sec(&r.1))
        .fold(0.0f64, f64::max);
    let total_stats = results.iter().fold(EngineStats::default(), |mut acc, r| {
        acc.partials_generated += r.1.partials_generated;
        acc.edge_verifications += r.1.edge_verifications;
        acc.intersection_elements += r.1.intersection_elements;
        acc
    });
    let balanced = cost.parallel_search_time_sec(&total_stats, threads);
    let modeled_match_sec = slowest_shard.max(balanced);
    let outcome = results
        .iter()
        .map(|r| r.0)
        .fold(Outcome::Completed, |acc, o| match (acc, o) {
            (Outcome::OutOfMemory, _) | (_, Outcome::OutOfMemory) => Outcome::OutOfMemory,
            (Outcome::Timeout, _) | (_, Outcome::Timeout) => Outcome::Timeout,
            (Outcome::ResultLimit, _) | (_, Outcome::ResultLimit) => Outcome::ResultLimit,
            _ => Outcome::Completed,
        });

    MatchResult {
        algorithm: name,
        outcome,
        embeddings,
        build_time,
        match_time,
        peak_memory_bytes: peak_memory,
        partials_generated: partials,
        modeled_build_sec,
        modeled_match_sec,
    }
}

/// Restricts the index to root candidates with indices in `range` — a thin
/// wrapper over the CST partitioner's rebuild (chunked at order position 0).
fn shard_root(index: &cst::Cst, root: QueryVertexId, range: std::ops::Range<u32>) -> cst::Cst {
    cst::partition::shard_at_vertex(index, root, range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::run_baseline;
    use graph_core::generators::random_labelled_graph;
    use graph_core::Label;

    fn triangle() -> QueryGraph {
        let l = Label::new;
        QueryGraph::new(vec![l(0), l(1), l(1)], &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let q = triangle();
        let g = random_labelled_graph(60, 0.2, 2, 42);
        let seq = run_baseline(Baseline::Ceci, &q, &g, &RunLimits::unlimited());
        for threads in [1, 2, 4, 8] {
            let par =
                run_baseline_parallel(Baseline::Ceci, &q, &g, &RunLimits::unlimited(), threads);
            assert_eq!(par.outcome, Outcome::Completed, "threads={threads}");
            assert_eq!(par.embeddings, seq.embeddings, "threads={threads}");
        }
    }

    #[test]
    fn daf_parallel_matches_sequential() {
        let q = triangle();
        let g = random_labelled_graph(50, 0.25, 2, 43);
        let seq = run_baseline(Baseline::Daf, &q, &g, &RunLimits::unlimited());
        let par = run_baseline_parallel(Baseline::Daf, &q, &g, &RunLimits::unlimited(), 8);
        assert_eq!(par.embeddings, seq.embeddings);
    }

    #[test]
    fn parallel_memory_model_grows_with_threads() {
        let q = triangle();
        let g = random_labelled_graph(50, 0.25, 2, 44);
        let limits = RunLimits::unlimited();
        let r1 = run_baseline_parallel(Baseline::Daf, &q, &g, &limits, 1);
        let r8 = run_baseline_parallel(Baseline::Daf, &q, &g, &limits, 8);
        assert!(r8.peak_memory_bytes > r1.peak_memory_bytes);
        assert!(r8.algorithm.ends_with("-8"));
    }

    #[test]
    fn more_threads_than_roots_is_fine() {
        let q = triangle();
        let g = random_labelled_graph(20, 0.3, 2, 45);
        let par = run_baseline_parallel(Baseline::Ceci, &q, &g, &RunLimits::unlimited(), 64);
        let seq = run_baseline(Baseline::Ceci, &q, &g, &RunLimits::unlimited());
        assert_eq!(par.embeddings, seq.embeddings);
    }
}
