//! The paper's CPU baselines as engine configurations.
//!
//! | baseline | index | order | extension | memory model |
//! |----------|-------|-------|-----------|--------------|
//! | CFL-Match | CPI-like (1 refinement pass) | core-forest-leaf | edge verification via an **adjacency matrix** | `|V|²/8` bytes for the matrix — the reason CFL goes OOM on DG60 (Section VII-D) |
//! | DAF | CS (extra refinement passes) | candidate-size first | intersection | index only |
//! | CECI | BFS-tree index | BFS order | intersection | index only |
//!
//! Simplifications vs the original systems (documented in DESIGN.md): DAF's
//! failing-set pruning and CECI's embedding-cluster compression are omitted;
//! both accelerate the originals by constant-to-moderate factors without
//! changing the relative picture the paper reports at our scale.

use crate::cost_model::CpuCostModel;
use crate::engine::{run_backtrack, AnchorPolicy, ExtensionMethod};
use crate::limits::{MatchResult, Outcome, RunLimits};
use cst::{build_cst_with_stats, CstOptions};
use graph_core::{
    cfl_style_order, ceci_style_order, daf_style_order, select_root, BfsTree, Graph,
    MatchingOrder, QueryGraph,
};
use std::time::Instant;

/// Which baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    Cfl,
    Daf,
    Ceci,
}

impl Baseline {
    /// Table label.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::Cfl => "CFL",
            Baseline::Daf => "DAF",
            Baseline::Ceci => "CECI",
        }
    }

    /// All baselines.
    pub const ALL: [Baseline; 3] = [Baseline::Cfl, Baseline::Daf, Baseline::Ceci];
}

/// Modelled peak memory of a baseline on graph `g` (index + verification
/// structures), in bytes.
pub fn modelled_memory_bytes(baseline: Baseline, g: &Graph, index_bytes: usize) -> usize {
    match baseline {
        // CFL's released implementation uses an adjacency-matrix edge oracle;
        // |V|² bits. This is what kills it on billion-scale graphs.
        Baseline::Cfl => {
            let n = g.vertex_count();
            index_bytes + n.saturating_mul(n) / 8
        }
        Baseline::Daf | Baseline::Ceci => index_bytes,
    }
}

/// Index construction options matching each original system's filters:
/// none of the originals apply the NLF (neighbour label frequency) filter
/// FAST's CST construction uses, and only DAF's CS runs extra refinement.
pub fn baseline_index_options(baseline: Baseline) -> CstOptions {
    match baseline {
        Baseline::Daf => CstOptions {
            use_nlf: false,
            refine_passes: 3,
        },
        Baseline::Cfl | Baseline::Ceci => CstOptions {
            use_nlf: false,
            refine_passes: 1,
        },
    }
}

/// The extension method of each original system: CFL expands from the CPI
/// tree-parent list and verifies edges against `G`; DAF and CECI intersect.
pub fn baseline_extension(baseline: Baseline) -> ExtensionMethod {
    match baseline {
        Baseline::Cfl => ExtensionMethod::EdgeVerification(AnchorPolicy::FirstBackward),
        Baseline::Daf | Baseline::Ceci => ExtensionMethod::Intersection,
    }
}

/// The matching order each baseline uses.
pub fn baseline_order(baseline: Baseline, q: &QueryGraph, g: &Graph, tree: &BfsTree) -> MatchingOrder {
    match baseline {
        Baseline::Cfl => cfl_style_order(q, tree),
        Baseline::Daf => daf_style_order(q, g, tree.root()),
        Baseline::Ceci => ceci_style_order(q, tree),
    }
}

/// Runs a baseline end-to-end (index construction + enumeration).
pub fn run_baseline(
    baseline: Baseline,
    q: &QueryGraph,
    g: &Graph,
    limits: &RunLimits,
) -> MatchResult {
    let build_start = Instant::now();
    let root = select_root(q, g);
    let tree = BfsTree::new(q, root);
    let options = baseline_index_options(baseline);
    let (index, build_stats) = build_cst_with_stats(q, g, &tree, options);
    let build_time = build_start.elapsed();
    let cost = CpuCostModel::default();
    let modeled_build_sec = cost.index_time_sec(build_stats.adjacency_entries);

    let peak_memory = modelled_memory_bytes(baseline, g, index.size_bytes());
    if let Some(cap) = limits.memory_cap {
        if peak_memory > cap {
            return MatchResult {
                algorithm: baseline.name().to_string(),
                outcome: Outcome::OutOfMemory,
                embeddings: 0,
                build_time,
                match_time: std::time::Duration::ZERO,
                peak_memory_bytes: peak_memory,
                partials_generated: 0,
                modeled_build_sec,
                modeled_match_sec: 0.0,
            };
        }
    }

    let order = baseline_order(baseline, q, g, &tree);
    let extension = baseline_extension(baseline);

    let match_start = Instant::now();
    let (outcome, stats) = run_backtrack(q, g, &index, &order, extension, limits);
    let match_time = match_start.elapsed();

    MatchResult {
        algorithm: baseline.name().to_string(),
        outcome,
        embeddings: stats.embeddings,
        build_time,
        match_time,
        peak_memory_bytes: peak_memory,
        partials_generated: stats.partials_generated,
        modeled_build_sec,
        modeled_match_sec: cost.search_time_sec(&stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf2::vf2_count;
    use graph_core::generators::random_labelled_graph;
    use graph_core::Label;

    fn queries() -> Vec<QueryGraph> {
        let l = Label::new;
        vec![
            // Path.
            QueryGraph::new(vec![l(0), l(1), l(2)], &[(0, 1), (1, 2)]).unwrap(),
            // Triangle.
            QueryGraph::new(vec![l(0), l(1), l(1)], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
            // Square with chord.
            QueryGraph::new(
                vec![l(0), l(1), l(0), l(1)],
                &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn all_baselines_match_vf2() {
        for (qi, q) in queries().into_iter().enumerate() {
            let g = random_labelled_graph(40, 0.2, 3, 100 + qi as u64);
            let expected = vf2_count(&q, &g);
            for b in Baseline::ALL {
                let r = run_baseline(b, &q, &g, &RunLimits::unlimited());
                assert_eq!(r.outcome, Outcome::Completed, "{:?} q{qi}", b);
                assert_eq!(
                    r.embeddings,
                    expected,
                    "{} disagrees with VF2 on q{qi}",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn cfl_memory_model_includes_matrix() {
        let g = random_labelled_graph(1000, 0.01, 3, 5);
        let matrix_bytes = 1000 * 1000 / 8;
        assert!(modelled_memory_bytes(Baseline::Cfl, &g, 0) >= matrix_bytes);
        assert_eq!(modelled_memory_bytes(Baseline::Daf, &g, 123), 123);
    }

    #[test]
    fn cfl_ooms_under_cap() {
        let q = queries().remove(0);
        let g = random_labelled_graph(2000, 0.005, 3, 6);
        let limits = RunLimits {
            memory_cap: Some(100_000), // far below the 500 KB matrix
            ..RunLimits::unlimited()
        };
        let r = run_baseline(Baseline::Cfl, &q, &g, &limits);
        assert_eq!(r.outcome, Outcome::OutOfMemory);
        // Intersection-based baselines survive the same cap.
        let r2 = run_baseline(Baseline::Ceci, &q, &g, &limits);
        assert_eq!(r2.outcome, Outcome::Completed);
    }

    #[test]
    fn result_reports_positive_times() {
        let q = queries().remove(1);
        let g = random_labelled_graph(60, 0.2, 2, 8);
        let r = run_baseline(Baseline::Daf, &q, &g, &RunLimits::unlimited());
        assert!(r.total_time() >= r.build_time);
        assert!(r.partials_generated > 0 || r.embeddings == 0);
    }
}
