//! Cache-key derivation for shard plans.
//!
//! A [`ShardPlan`](crate::ShardPlan) is a pure function of
//! `(q, g, tree, PipelineOptions)` (see `cst::planner`), so a serving layer
//! can cache plans across repeated queries and skip the probe entirely.
//! This module derives the cache key: a structural fingerprint of the query
//! and BFS tree, a *graph epoch* supplied by the owner of the loaded graph
//! (bumped whenever the graph changes, so stale plans can never be served),
//! and a fingerprint of every [`PipelineOptions`] knob that influences
//! planning.
//!
//! The key deliberately lives here rather than in the serving crate: the
//! set of plan-relevant inputs is a property of the planner, and any new
//! `PipelineOptions` knob must be folded into
//! [`PipelineOptions::plan_fingerprint`] next to the knob itself.

use crate::construct::CstOptions;
use crate::pipeline::PipelineOptions;
use crate::planner::ShardPlanner;
use graph_core::{BfsTree, QueryGraph};

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a over `u64` words — deterministic across processes
/// (unlike `std`'s `DefaultHasher`, whose seeds are unspecified), which a
/// persistent or cross-session cache needs.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    pub fn new() -> Self {
        Fingerprint(FNV_OFFSET)
    }

    /// Folds one word into the fingerprint.
    pub fn mix(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// Structural fingerprint of `(q, tree)`: labels in vertex order, the sorted
/// edge list, and the BFS-tree root + parent array. Two queries collide only
/// if they are structurally identical for planning purposes (same labels,
/// same edges, same tree shape) — in which case sharing a plan is exactly
/// the point.
pub fn query_fingerprint(q: &QueryGraph, tree: &BfsTree) -> u64 {
    let mut f = Fingerprint::new();
    f.mix(q.vertex_count() as u64);
    for u in q.vertices() {
        f.mix(u64::from(q.label(u).index() as u32));
    }
    f.mix(q.edge_count() as u64);
    for &(a, b) in q.edges() {
        f.mix(((a.index() as u64) << 32) | b.index() as u64);
    }
    f.mix(tree.root().index() as u64);
    for &u in tree.bfs_order() {
        let parent = tree
            .parent(u)
            .map(|p| p.index() as u64 + 1)
            .unwrap_or(0);
        f.mix(((u.index() as u64) << 32) | parent);
    }
    f.finish()
}

impl PipelineOptions {
    /// Fingerprint of every knob the shard plan depends on. `threads` is
    /// deliberately excluded: plans are thread-count independent (the
    /// pipeline's determinism contract), so runs at different thread counts
    /// share cache entries. `seed_builds` is excluded for the same reason —
    /// seeding changes how shard builds *execute* (probe-restricted vs cold
    /// top-down), never the plan or any result, so seeded and cold runs
    /// share cache entries too.
    pub fn plan_fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new();
        f.mix(self.shards.map(|s| s as u64 + 1).unwrap_or(0));
        f.mix(match self.planner {
            ShardPlanner::Contiguous => 1,
            ShardPlanner::WorkloadBalanced => 2,
            ShardPlanner::OverlapAware => 3,
            ShardPlanner::Auto => 4,
        });
        let CstOptions {
            use_nlf,
            refine_passes,
        } = self.cst;
        f.mix(u64::from(use_nlf));
        f.mix(u64::from(refine_passes));
        f.mix(self.partition_hint.map(|b| b as u64 + 1).unwrap_or(0));
        f.finish()
    }
}

/// Fingerprint of the exact planning inputs a [`crate::ShardPlan`] was
/// derived from: the root candidate list (which already encodes `(q, g,
/// tree, CstOptions)`) plus the plan-relevant options. Stored on the plan
/// as [`crate::ShardPlan::provenance`] by `plan_pipeline_shards`, and
/// checked by `for_each_shard_cst_planned` before trusting a supplied
/// plan — a stale or foreign plan (even one with a coincidentally equal
/// root count) is detected and replanned.
pub fn plan_provenance(
    roots: &[graph_core::VertexId],
    options: &PipelineOptions,
) -> u64 {
    let mut f = Fingerprint::new();
    f.mix(roots.len() as u64);
    for &v in roots {
        f.mix(v.index() as u64);
    }
    f.mix(options.plan_fingerprint());
    let out = f.finish();
    // 0 is reserved for "hand-built plan, unknown provenance".
    if out == 0 {
        1
    } else {
        out
    }
}

/// The full cache key of a shard plan: query structure, graph epoch, and
/// planning options. `Hash`/`Eq` so it drops straight into a map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`query_fingerprint`] of `(q, tree)`.
    pub query: u64,
    /// Epoch of the loaded data graph (owner-assigned; bump on any change).
    pub graph_epoch: u64,
    /// [`PipelineOptions::plan_fingerprint`].
    pub options: u64,
}

impl PlanKey {
    /// Derives the key for planning `(q, tree)` against the graph at
    /// `graph_epoch` under `options`.
    pub fn derive(
        q: &QueryGraph,
        tree: &BfsTree,
        options: &PipelineOptions,
        graph_epoch: u64,
    ) -> PlanKey {
        PlanKey {
            query: query_fingerprint(q, tree),
            graph_epoch,
            options: options.plan_fingerprint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::{Label, QueryVertexId};

    fn q1() -> QueryGraph {
        QueryGraph::new(
            vec![Label::new(0), Label::new(1), Label::new(2)],
            &[(0, 1), (1, 2)],
        )
        .unwrap()
    }

    #[test]
    fn same_inputs_same_key() {
        let q = q1();
        let tree = BfsTree::new(&q, QueryVertexId::new(0));
        let opts = PipelineOptions::default();
        let a = PlanKey::derive(&q, &tree, &opts, 7);
        let b = PlanKey::derive(&q, &tree, &opts, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn structure_root_epoch_and_options_all_discriminate() {
        let q = q1();
        let tree = BfsTree::new(&q, QueryVertexId::new(0));
        let opts = PipelineOptions::default();
        let base = PlanKey::derive(&q, &tree, &opts, 0);

        // Different labels.
        let q2 = QueryGraph::new(
            vec![Label::new(0), Label::new(1), Label::new(1)],
            &[(0, 1), (1, 2)],
        )
        .unwrap();
        let tree2 = BfsTree::new(&q2, QueryVertexId::new(0));
        assert_ne!(base.query, PlanKey::derive(&q2, &tree2, &opts, 0).query);

        // Different tree root over the same query.
        let other_root = BfsTree::new(&q, QueryVertexId::new(1));
        assert_ne!(base.query, query_fingerprint(&q, &other_root));

        // Epoch bump invalidates.
        assert_ne!(base, PlanKey::derive(&q, &tree, &opts, 1));

        // Any planning knob discriminates.
        for changed in [
            PipelineOptions {
                shards: Some(4),
                ..opts
            },
            PipelineOptions {
                planner: ShardPlanner::Auto,
                ..opts
            },
            PipelineOptions {
                cst: CstOptions::minimal(),
                ..opts
            },
            PipelineOptions {
                partition_hint: Some(1 << 16),
                ..opts
            },
        ] {
            assert_ne!(
                opts.plan_fingerprint(),
                changed.plan_fingerprint(),
                "{changed:?}"
            );
        }
    }

    #[test]
    fn threads_do_not_change_the_key() {
        let a = PipelineOptions {
            threads: 1,
            ..PipelineOptions::default()
        };
        let b = PipelineOptions {
            threads: 8,
            ..PipelineOptions::default()
        };
        assert_eq!(a.plan_fingerprint(), b.plan_fingerprint());
    }

    #[test]
    fn seeding_does_not_change_the_key() {
        // Seeded and cold builds are bit-identical, so they must share
        // cache entries (a plan cached by a seeded run replays for a cold
        // one and vice versa).
        let a = PipelineOptions {
            seed_builds: true,
            ..PipelineOptions::default()
        };
        let b = PipelineOptions {
            seed_builds: false,
            ..PipelineOptions::default()
        };
        assert_eq!(a.plan_fingerprint(), b.plan_fingerprint());
    }
}
