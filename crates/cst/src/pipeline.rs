//! Sharded, multi-threaded host-side CST pipeline.
//!
//! The paper's Remark (Section V-A) stresses that the FPGA sits idle while
//! the CPU builds and partitions the CST, and the `probe` time split shows
//! build + partition dominating host time at the larger datasets. This
//! module parallelises and *overlaps* that host work:
//!
//! * the root candidate set is split into `shards` chunks — the same axis
//!   the parallel baselines (`DAF-8`/`CECI-8`) and the multi-FPGA
//!   extension shard on; *where* the boundaries fall (and how many shards
//!   a query gets) is decided by the shard planner (`cst::planner`,
//!   [`PipelineOptions::planner`]) before any build starts;
//! * worker threads ([`std::thread::scope`]) run the full Algorithm 1 per
//!   shard (top-down construction seeded by the shard's roots, bottom-up
//!   refinement, non-tree-edge population);
//! * finished shard CSTs are consumed **in shard order** on the caller's
//!   thread — either merged back into one CST ([`build_cst_sharded`]) or
//!   streamed straight into the partitioner ([`for_each_shard_cst`]) so
//!   partitions reach the device while later shards are still being built.
//!
//! # Determinism
//!
//! Every shard CST depends only on `(q, g, tree, options, shard index,
//! shard plan)` — the plan itself is a pure function of everything but the
//! thread count — and shards are consumed in index order. The output (merged CST, shard stream, and everything
//! downstream: partition sequence, `ShareScheduler` bookings, embedding
//! counts) is therefore **bit-identical for every thread count** at a fixed
//! shard count. The default shard count is a thread-independent constant
//! for exactly this reason. `tests/prop_pipeline_parallel.rs` enforces it.
//!
//! # Soundness of the shard decomposition
//!
//! Every embedding maps the root to exactly one root candidate, so shard
//! search spaces are disjoint (the Example 3 argument at order position 0)
//! and their union covers the sequential search space: per-shard bottom-up
//! refinement sees smaller candidate sets and may prune *more* than the
//! sequential pass, but never a candidate participating in an embedding
//! rooted in the shard. Summed (or merged) embedding counts are identical
//! to the sequential pipeline's.

use crate::construct::{
    build_cst_from_roots, build_cst_seeded, root_candidates, BuildStats, CstOptions,
};
use crate::planner::{plan_pipeline_shards, RootProfile, SeedMasks, ShardPlan, ShardPlanner};
use crate::structure::{CsrAdj, Cst};
use crate::workload::estimate_workload;
use graph_core::{BfsTree, Graph, QueryGraph, QueryVertexId, VertexId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Default shard count. Deliberately **independent of the thread count** so
/// that shard decomposition — and with it every downstream artefact — is
/// identical whether the pipeline runs on 1 or 8 workers. 16 shards keep 8
/// workers busy with ~2 shards each while bounding the duplicated candidate
/// work on interior query vertices.
pub const DEFAULT_SHARDS: usize = 16;

/// Knobs of the sharded pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Worker threads building shard CSTs. 1 = fully sequential (build and
    /// consumption interleave on the caller's thread, no spawning).
    pub threads: usize,
    /// Shard (batch) count; `None` resolves to [`DEFAULT_SHARDS`]. Clamped
    /// to the root candidate count. Must not be derived from `threads` —
    /// see the module docs on determinism. Under [`ShardPlanner::Auto`]
    /// this is the *cap*: the planner may choose fewer shards.
    pub shards: Option<usize>,
    /// Shard-boundary planning policy (`cst::planner`). The plan is a pure
    /// function of `(q, g, tree, cst, shards, planner)` — never of
    /// `threads` — so every planner preserves the pipeline's thread-count
    /// determinism.
    pub planner: ShardPlanner,
    /// CST construction pruning strength, forwarded to Algorithm 1.
    pub cst: CstOptions,
    /// The device's δ_S payload threshold (bytes per partition) when the
    /// caller knows it. Feeds the auto planner's per-query partition/build
    /// ratio estimate (`cst::planner::estimated_partition_ratio`); `None`
    /// keeps the calibrated constant ρ. Thread-count independent by
    /// construction (a device property).
    pub partition_hint: Option<usize>,
    /// Seed shard builds from the plan's probe when one is available
    /// (`RootProfile::seed_chunks`): each shard starts from the probed
    /// phase-1 candidate space restricted to its roots and only performs
    /// refinement plus adjacency materialisation, instead of a full
    /// top-down scan. Results are **bit-identical** either way
    /// (`tests/prop_seeded_build.rs`), so — like `threads` — this knob is
    /// excluded from the plan fingerprint. Default `true`; disable to
    /// measure the cold path.
    pub seed_builds: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            threads: 1,
            shards: None,
            planner: ShardPlanner::Contiguous,
            cst: CstOptions::default(),
            partition_hint: None,
            seed_builds: true,
        }
    }
}

impl PipelineOptions {
    /// Sequential single-shard pipeline: exactly `build_cst_with_stats`.
    pub fn sequential(cst: CstOptions) -> Self {
        PipelineOptions {
            threads: 1,
            shards: Some(1),
            planner: ShardPlanner::Contiguous,
            cst,
            partition_hint: None,
            seed_builds: true,
        }
    }

    /// Resolves the effective shard count for `root_count` root candidates.
    pub fn resolve_shards(&self, root_count: usize) -> usize {
        self.shards.unwrap_or(DEFAULT_SHARDS).clamp(1, root_count.max(1))
    }
}

/// Per-shard record of the pipeline run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index (consumption order).
    pub shard: usize,
    /// Root candidates in this shard.
    pub roots: usize,
    /// Wall time the worker spent building this shard's CST.
    pub build_time: Duration,
    /// Adjacency entries materialised for this shard (the build-cost unit
    /// of `matching::CpuCostModel::index_time_sec`).
    pub adjacency_entries: usize,
    /// Estimated embeddings in the shard CST (`W_CST`); exposes shard skew.
    pub workload: f64,
    /// Whether this shard was built from the probe's memoised candidate
    /// space (`build_cst_seeded`) instead of a cold top-down scan.
    pub seeded: bool,
    /// Whether this shard's CST was replayed from a [`CachedShards`]
    /// artifact — no build work at all (`build_time` ≈ 0,
    /// `adjacency_entries` = 0): the tier-2 cache's zero-build witness.
    pub cached: bool,
}

/// Aggregate statistics of a sharded pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Effective shard count after clamping (and planning, under the
    /// [`ShardPlanner::Auto`] policy).
    pub shards: usize,
    /// The shard plan the pipeline executed (planner, boundaries, planned
    /// workloads, estimated duplication, probe work).
    pub plan: ShardPlan,
    /// Wall time spent planning (root probe + boundary search); zero for
    /// the contiguous planner.
    pub plan_time: Duration,
    /// Wall time spent deriving per-shard seeds from the probe's candidate
    /// space (`RootProfile::seed_chunks` — the integer mask sweep); zero
    /// when builds run cold.
    pub seed_time: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Total root candidates (over all shards).
    pub root_candidates: usize,
    /// Per-shard reports, in shard order.
    pub shard_reports: Vec<ShardReport>,
    /// Wall time of the build phase: pipeline start → last shard's *build*
    /// finished (consumer-side work on earlier shards is excluded in the
    /// threaded mode; in sequential mode build and consumption interleave
    /// on one thread, so interleaved consumption is unavoidably included).
    pub build_wall: Duration,
    /// Sum of per-shard build times — the total CPU work, which *exceeds*
    /// the sequential build's because interior candidates shared by several
    /// shards are re-derived per shard.
    pub build_cpu: Duration,
    /// The probe-seeded share of [`build_cpu`](Self::build_cpu): CPU time
    /// spent in shard builds that started from the probe's candidate space
    /// (the remainder — `build_cpu - seeded_build_cpu` — is cold top-down
    /// build time).
    pub seeded_build_cpu: Duration,
    /// Shards built from the probe seed (either 0 or
    /// [`shards`](Self::shards): seeds are derived for all shards or none).
    pub seeded_shards: usize,
    /// Phase-1 scan work across shard builds (neighbour visits, each a
    /// filter evaluation — the same unit as `ShardPlan::probe_entries`).
    /// 0 when every shard was seeded: the probe's single pass replaced the
    /// per-shard scans.
    pub topdown_entries: usize,
    /// Shards replayed from a [`CachedShards`] artifact instead of being
    /// built (seeded or cold). Either 0 or [`shards`](Self::shards): the
    /// artifact is trusted whole or not at all.
    pub cached_shards: usize,
}

impl PipelineStats {
    /// Total adjacency entries built across shards (≥ the sequential
    /// build's count; the duplication factor is `build_entries / sequential
    /// entries`).
    pub fn total_adjacency_entries(&self) -> usize {
        self.shard_reports.iter().map(|r| r.adjacency_entries).sum()
    }

    /// Wall time until the *first* shard CST was ready — the pipeline's
    /// fill latency; nothing downstream can overlap with it.
    pub fn first_shard_time(&self) -> Duration {
        self.shard_reports
            .first()
            .map(|r| r.build_time)
            .unwrap_or_default()
    }
}

/// A shard CST travelling down the pipeline.
#[derive(Debug)]
pub struct ShardCst {
    /// The shard's CST (root candidates restricted to the shard's chunk).
    /// Shared, not owned: a consumer keeping the `Arc` (a tier-2 result
    /// cache capturing the build) costs nothing over one that drops it.
    pub cst: Arc<Cst>,
    /// Build statistics of this shard.
    pub stats: BuildStats,
    /// The shard report (also collected in [`PipelineStats`]).
    pub report: ShardReport,
}

/// Refined shard CSTs captured from an earlier pipeline run, replayable by
/// [`for_each_shard_cst_cached`]. The shard CST is a pure function of
/// `(q, g, tree, options, plan)`, so an artifact stamped with the plan's
/// [`provenance`](ShardPlan::provenance) fingerprint can stand in for the
/// whole build — refinement and adjacency materialisation included, which
/// even a seeded build still pays. Trust is all-or-nothing: the artifact is
/// replayed only when its provenance matches the freshly resolved plan's
/// and it covers every shard; anything else falls back to a seeded/cold
/// build (a wrong artifact must never corrupt results, only cost time).
#[derive(Debug, Clone)]
pub struct CachedShards {
    /// Provenance fingerprint of the plan the shards were built under
    /// (0 never matches — hand-assembled artifacts are never trusted).
    pub provenance: u64,
    /// The refined shard CSTs, in shard order, one per planned shard
    /// (empty shards included, so the length check against the plan's
    /// shard count is exact).
    pub shards: Vec<Arc<Cst>>,
}

/// Splits `count` root candidates into `shards` chunks, returning the chunk
/// boundaries (the same even-split rule as Algorithm 2 line 4). Shared with
/// `WorkloadEstimate::shard_workloads` so the skew diagnostic always splits
/// exactly like the pipeline.
pub(crate) fn shard_ranges(count: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.clamp(1, count.max(1));
    let base = count / shards;
    let extra = count % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// One shard's build input: the root chunk for a cold top-down scan, or
/// the chunk plus the shared probe/mask artifacts for a seeded build (the
/// shard's phase-1 candidate sets are extracted lazily on the building
/// thread — `RootProfile::seed_shard` — so peak memory is bounded by the
/// in-flight shards, not all shards' duplicated candidate space). Either
/// way the shard CST is a pure function of `(q, g, tree, options, input)` —
/// and the two variants produce **bit-identical** CSTs for the same shard
/// (`tests/prop_seeded_build.rs`) — so the pipeline's determinism anchor
/// is unchanged.
enum ShardInput {
    /// Sorted root chunk; the build runs the full top-down scan.
    Roots(Vec<VertexId>),
    /// Sorted root chunk plus the probe's memoised candidate space and the
    /// propagated shard masks; the build extracts its phase-1 sets and
    /// skips straight to refinement + adjacency materialisation.
    Seed {
        chunk: Vec<VertexId>,
        probe: Arc<RootProfile>,
        masks: Arc<SeedMasks>,
    },
    /// A fully refined shard CST replayed from a [`CachedShards`] artifact:
    /// no build work at all — the `Arc` is passed through.
    Cached(Arc<Cst>),
}

/// Builds the shard with the given index. Pure function of its arguments —
/// the determinism anchor of the whole pipeline.
fn build_shard(
    q: &QueryGraph,
    g: &Graph,
    tree: &BfsTree,
    options: CstOptions,
    input: ShardInput,
    shard: usize,
) -> ShardCst {
    let mut span = obs::span_cat("build_shard", "build");
    span.arg_u64("shard", shard as u64);
    let t0 = Instant::now();
    let (seeded, cached, root_count, cst, stats) = match input {
        ShardInput::Roots(chunk) => {
            let roots = chunk.len();
            let (cst, stats) = build_cst_from_roots(q, g, tree, options, chunk);
            (false, false, roots, Arc::new(cst), stats)
        }
        ShardInput::Seed { chunk, probe, masks } => {
            let roots = chunk.len();
            let seed = probe.seed_shard(&masks, chunk, shard);
            let (cst, stats) = build_cst_seeded(q, g, tree, options, seed);
            (true, false, roots, Arc::new(cst), stats)
        }
        // Replay: the Arc passes through untouched. Zeroed build stats are
        // the point — adjacency/top-down entries report the work *done*,
        // and a replayed shard does none.
        ShardInput::Cached(cst) => {
            let roots = cst.candidates(tree.root()).len();
            (false, true, roots, cst, BuildStats::default())
        }
    };
    // Stop the clock before the workload DP: it is a skew diagnostic, not
    // part of Algorithm 1, and must not inflate the measured build time.
    let build_time = t0.elapsed();
    let workload = estimate_workload(&cst, tree).total;
    span.arg_u64("roots", root_count as u64);
    span.arg_u64("seeded", seeded as u64);
    span.arg_u64("cached", cached as u64);
    ShardCst {
        report: ShardReport {
            shard,
            roots: root_count,
            build_time,
            adjacency_entries: stats.adjacency_entries,
            workload,
            seeded,
            cached,
        },
        cst,
        stats,
    }
}

/// Runs the sharded build and hands every shard CST to `consume` **on the
/// caller's thread, in shard order**, while worker threads keep building
/// later shards. This is the streaming (overlapped) mode: `consume`
/// typically partitions the shard and offloads/books partitions, so the
/// device receives work while the host is still constructing.
///
/// With `threads <= 1` no threads are spawned; build and consumption
/// interleave sequentially with identical output.
pub fn for_each_shard_cst<F: FnMut(ShardCst)>(
    q: &QueryGraph,
    g: &Graph,
    tree: &BfsTree,
    options: &PipelineOptions,
    consume: F,
) -> PipelineStats {
    for_each_shard_cst_planned(q, g, tree, options, None, consume)
}

/// [`for_each_shard_cst`] with an optional precomputed [`ShardPlan`]: a
/// cache-hit serving path hands the plan back in and the probe/boundary
/// search is skipped entirely (`plan_time` ≈ 0). The plan must have been
/// produced for the same `(q, g, tree, options)` — its
/// [`provenance`](ShardPlan::provenance) fingerprint is checked against
/// the freshly derived root candidate list and plan-relevant options, and
/// a stale or foreign plan (hand-built plans included — their provenance
/// is 0) is silently replanned: a wrong plan must never corrupt results,
/// only cost time.
pub fn for_each_shard_cst_planned<F: FnMut(ShardCst)>(
    q: &QueryGraph,
    g: &Graph,
    tree: &BfsTree,
    options: &PipelineOptions,
    plan_override: Option<&ShardPlan>,
    consume: F,
) -> PipelineStats {
    for_each_shard_cst_cached(q, g, tree, options, plan_override, None, consume)
}

/// [`for_each_shard_cst_planned`] with an optional [`CachedShards`]
/// artifact: when the artifact's provenance matches the resolved plan's
/// (and it covers every shard), every shard is *replayed* — zero top-down,
/// refinement, and materialisation work; [`ShardReport::cached`] is set and
/// `build_time`/`adjacency_entries` report (honestly) zero. A stale or
/// foreign artifact is ignored and shards build seeded/cold as usual, so a
/// wrong artifact can never corrupt results. Note the root-candidate scan
/// and provenance re-derivation still run — this is the *validated* reuse
/// path; a serving layer that already keys artifacts by `(PlanKey, epoch)`
/// can skip the pipeline entirely (`fast::prepare_partitions`' replay).
pub fn for_each_shard_cst_cached<F: FnMut(ShardCst)>(
    q: &QueryGraph,
    g: &Graph,
    tree: &BfsTree,
    options: &PipelineOptions,
    plan_override: Option<&ShardPlan>,
    cached: Option<&CachedShards>,
    mut consume: F,
) -> PipelineStats {
    let roots = root_candidates(q, g, tree, options.cst);
    let plan_t0 = Instant::now();
    let plan = match plan_override {
        Some(p)
            if p.provenance != 0
                && p.provenance == crate::cache::plan_provenance(&roots, options)
                && !p.ranges.is_empty() =>
        {
            p.clone()
        }
        _ => plan_pipeline_shards(q, g, tree, options, &roots),
    };
    let plan_time = plan_t0.elapsed();
    let shards = plan.shard_count();
    // A cached-shard artifact is trusted only whole: provenance must match
    // the *resolved* plan's (a pure function of the same inputs as the
    // shard CSTs) and it must cover every shard. Anything else builds.
    let replay = cached.filter(|c| {
        plan.provenance != 0 && c.provenance == plan.provenance && c.shards.len() == shards
    });
    // Seed-mask derivation (when the plan carries a probe and seeding is
    // on): one integer mask sweep per 64 shards over the probed candidate
    // space, replacing every shard's top-down scan. The per-shard
    // candidate-set extraction happens lazily on the *building* thread
    // (`ShardInput::Seed`), so peak memory stays bounded by the in-flight
    // shards instead of all shards' duplicated candidate space. A replayed
    // artifact supersedes seeding: there is no build left to seed.
    let seed_t0 = Instant::now();
    let seed_artifacts: Option<(Arc<RootProfile>, Arc<SeedMasks>)> =
        if options.seed_builds && replay.is_none() {
            plan.probe.as_ref().and_then(|probe| {
                probe
                    .seed_masks(&plan, &roots)
                    .map(|masks| (Arc::clone(probe), Arc::new(masks)))
            })
        } else {
            None
        };
    let seed_time = if seed_artifacts.is_some() {
        seed_t0.elapsed()
    } else {
        Duration::ZERO
    };
    let seeded_shards = if seed_artifacts.is_some() { shards } else { 0 };
    // Chunk extraction is part of planning, not of any shard's build time.
    let inputs: Vec<ShardInput> = (0..shards)
        .map(|s| {
            if let Some(c) = replay {
                return ShardInput::Cached(Arc::clone(&c.shards[s]));
            }
            let chunk = plan.chunk_roots(&roots, s);
            match &seed_artifacts {
                Some((probe, masks)) => ShardInput::Seed {
                    chunk,
                    probe: Arc::clone(probe),
                    masks: Arc::clone(masks),
                },
                None => ShardInput::Roots(chunk),
            }
        })
        .collect();
    let wall0 = Instant::now();
    let mut stats = PipelineStats {
        shards,
        plan,
        plan_time,
        seed_time,
        threads: options.threads.max(1).min(shards),
        root_candidates: roots.len(),
        shard_reports: Vec::with_capacity(shards),
        build_wall: Duration::ZERO,
        build_cpu: Duration::ZERO,
        seeded_build_cpu: Duration::ZERO,
        seeded_shards,
        topdown_entries: 0,
        cached_shards: 0,
    };

    let mut take = |shard: ShardCst, stats: &mut PipelineStats| {
        stats.build_cpu += shard.report.build_time;
        if shard.report.seeded {
            stats.seeded_build_cpu += shard.report.build_time;
        }
        if shard.report.cached {
            stats.cached_shards += 1;
        }
        stats.topdown_entries += shard.stats.topdown_entries;
        stats.shard_reports.push(shard.report.clone());
        consume(shard);
    };

    if stats.threads <= 1 {
        for (i, input) in inputs.into_iter().enumerate() {
            let shard = build_shard(q, g, tree, options.cst, input, i);
            stats.build_wall = wall0.elapsed();
            take(shard, &mut stats);
        }
        return stats;
    }

    let next = AtomicUsize::new(0);
    // Latest build-completion timestamp across workers — consumer-side
    // partitioning of earlier shards must not count as build time.
    let build_done: Mutex<Duration> = Mutex::new(Duration::ZERO);
    let (tx, rx) = mpsc::channel::<ShardCst>();
    // Each input is consumed exactly once by whichever worker claims it.
    let inputs: Vec<Mutex<Option<ShardInput>>> =
        inputs.into_iter().map(|input| Mutex::new(Some(input))).collect();
    let inputs_ref = &inputs;
    std::thread::scope(|scope| {
        for _ in 0..stats.threads {
            let tx = tx.clone();
            let next = &next;
            let build_done = &build_done;
            scope.spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= inputs_ref.len() {
                        return;
                    }
                    let input = inputs_ref[i]
                        .lock()
                        .expect("shard input lock")
                        .take()
                        .expect("each shard input claimed once");
                    let shard = build_shard(q, g, tree, options.cst, input, i);
                    let done = wall0.elapsed();
                    let mut latest = build_done.lock().expect("timestamp lock");
                    if done > *latest {
                        *latest = done;
                    }
                    drop(latest);
                    if tx.send(shard).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);

        // Consume in shard order: out-of-order arrivals wait in `pending`.
        let mut pending: std::collections::BTreeMap<usize, ShardCst> =
            std::collections::BTreeMap::new();
        let mut want = 0usize;
        while want < shards {
            let shard = match pending.remove(&want) {
                Some(s) => s,
                None => {
                    let s = rx.recv().expect("worker panicked before finishing shards");
                    if s.report.shard != want {
                        pending.insert(s.report.shard, s);
                        continue;
                    }
                    s
                }
            };
            want += 1;
            take(shard, &mut stats);
        }
    });
    stats.build_wall = *build_done.lock().expect("timestamp lock");
    stats
}

/// Builds the CST with the sharded parallel pipeline and **merges** the
/// shard CSTs back into a single CST.
///
/// With one shard the result is exactly `build_cst_with_stats`. With
/// several, the merged CST can be *smaller* (per-shard refinement prunes
/// more), but it contains every embedding: counts are identical to the
/// sequential pipeline, and the merge is deterministic for every thread
/// count at a fixed shard count.
pub fn build_cst_sharded(
    q: &QueryGraph,
    g: &Graph,
    tree: &BfsTree,
    options: &PipelineOptions,
) -> (Cst, PipelineStats) {
    let mut shards: Vec<ShardCst> = Vec::new();
    let stats = for_each_shard_cst(q, g, tree, options, |s| shards.push(s));
    let merged = merge_shard_csts(q, shards.iter().map(|s| s.cst.as_ref()));
    (merged, stats)
}

/// Merges shard CSTs (disjoint at the root, overlapping elsewhere) into one
/// CST: candidate sets are sorted unions, adjacency lists are per-candidate
/// unions remapped to merged indices.
pub fn merge_shard_csts<'a, I>(q: &QueryGraph, shards: I) -> Cst
where
    I: IntoIterator<Item = &'a Cst>,
{
    let shards: Vec<&Cst> = shards.into_iter().collect();
    assert!(!shards.is_empty(), "need at least one shard CST");
    if shards.len() == 1 {
        return shards[0].clone();
    }
    let n = shards[0].query_vertex_count();

    // Merged candidate sets: sorted union per query vertex.
    let mut merged_candidates: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    for u in 0..n {
        let qu = QueryVertexId::from_index(u);
        let mut all: Vec<VertexId> = shards
            .iter()
            .flat_map(|s| s.candidates(qu).iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        merged_candidates.push(all);
    }

    // Shard-local index → merged index, per shard per query vertex. Both
    // lists are sorted and the shard list is a subset of the merged one, so
    // a single two-pointer merge resolves every index in O(k + n) instead
    // of O(k log n) binary searches.
    let remap: Vec<Vec<Vec<u32>>> = shards
        .iter()
        .map(|s| {
            (0..n)
                .map(|u| {
                    let qu = QueryVertexId::from_index(u);
                    let merged = &merged_candidates[u];
                    let mut j = 0usize;
                    s.candidates(qu)
                        .iter()
                        .map(|v| {
                            while merged[j] < *v {
                                j += 1;
                            }
                            debug_assert_eq!(merged[j], *v, "shard candidate in merged set");
                            let out = j as u32;
                            j += 1;
                            out
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    // Merged adjacency: union of remapped shard lists per merged candidate.
    let mut pairs = Vec::new();
    for (a, b) in shards[0].directed_edges() {
        let src_count = merged_candidates[a.index()].len();
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); src_count];
        for (si, s) in shards.iter().enumerate() {
            let adj = s.adjacency(a, b);
            let map_a = &remap[si][a.index()];
            let map_b = &remap[si][b.index()];
            for i in 0..adj.source_count() {
                let list = &mut lists[map_a[i] as usize];
                for &t in adj.neighbors(i) {
                    list.push(map_b[t as usize]);
                }
            }
        }
        let mut offsets = Vec::with_capacity(src_count + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for mut list in lists {
            list.sort_unstable();
            list.dedup();
            targets.extend_from_slice(&list);
            offsets.push(targets.len() as u32);
        }
        pairs.push(((a, b), CsrAdj { offsets, targets }));
    }
    let _ = q; // signature keeps the query for future edge-set validation
    Cst::from_parts(n, merged_candidates, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_cst, build_cst_with_stats};
    use crate::enumerate::count_embeddings;
    use graph_core::generators::random_labelled_graph;
    use graph_core::{Label, MatchingOrder, QueryGraph};

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn setup() -> (QueryGraph, Graph, BfsTree, MatchingOrder) {
        let q = QueryGraph::new(
            vec![l(0), l(1), l(0), l(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        .unwrap();
        let g = random_labelled_graph(90, 0.12, 2, 77);
        let tree = BfsTree::new(&q, QueryVertexId::from_index(0));
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).unwrap();
        (q, g, tree, order)
    }

    #[test]
    fn single_shard_is_bit_identical_to_sequential() {
        let (q, g, tree, _) = setup();
        let (seq, seq_stats) = build_cst_with_stats(&q, &g, &tree, CstOptions::default());
        let opts = PipelineOptions::sequential(CstOptions::default());
        let (par, stats) = build_cst_sharded(&q, &g, &tree, &opts);
        assert_eq!(stats.shards, 1);
        for u in q.vertices() {
            assert_eq!(seq.candidates(u), par.candidates(u));
        }
        assert_eq!(seq.total_adjacency_entries(), par.total_adjacency_entries());
        assert_eq!(stats.total_adjacency_entries(), seq_stats.adjacency_entries);
    }

    #[test]
    fn sharded_counts_match_sequential_for_all_shard_counts() {
        let (q, g, tree, order) = setup();
        let seq = build_cst(&q, &g, &tree);
        let whole = count_embeddings(&seq, &q, &order);
        for shards in [1, 2, 3, 5, 8, 64] {
            let opts = PipelineOptions {
                threads: 2,
                shards: Some(shards),
                cst: CstOptions::default(),
                ..PipelineOptions::default()
            };
            let (merged, stats) = build_cst_sharded(&q, &g, &tree, &opts);
            merged.validate(&q).unwrap();
            assert_eq!(
                count_embeddings(&merged, &q, &order),
                whole,
                "shards={shards}"
            );
            assert_eq!(
                stats.shard_reports.iter().map(|r| r.roots).sum::<usize>(),
                stats.root_candidates
            );
        }
    }

    #[test]
    fn streaming_sum_matches_sequential() {
        let (q, g, tree, order) = setup();
        let seq = build_cst(&q, &g, &tree);
        let whole = count_embeddings(&seq, &q, &order);
        for threads in [1, 4] {
            let opts = PipelineOptions {
                threads,
                shards: Some(6),
                cst: CstOptions::default(),
                ..PipelineOptions::default()
            };
            let mut sum = 0u64;
            let mut seen = Vec::new();
            let stats = for_each_shard_cst(&q, &g, &tree, &opts, |s| {
                seen.push(s.report.shard);
                sum += count_embeddings(&s.cst, &q, &order);
            });
            assert_eq!(sum, whole, "threads={threads}");
            assert_eq!(seen, (0..stats.shards).collect::<Vec<_>>());
        }
    }

    #[test]
    fn plan_override_replays_and_stale_plans_are_replanned() {
        let (q, g, tree, _) = setup();
        let opts = PipelineOptions {
            threads: 1,
            shards: Some(4),
            planner: crate::ShardPlanner::WorkloadBalanced,
            ..PipelineOptions::default()
        };
        // A fresh run yields the plan the pipeline would cache.
        let fresh = for_each_shard_cst(&q, &g, &tree, &opts, |_| {});
        assert_ne!(fresh.plan.provenance, 0, "pipeline plans carry provenance");

        // Replaying it skips planning and executes the same decomposition.
        let replay =
            for_each_shard_cst_planned(&q, &g, &tree, &opts, Some(&fresh.plan), |_| {});
        assert_eq!(replay.plan, fresh.plan);

        // A plan for *different options* (same root set) must be rejected
        // and replanned, not silently executed.
        let other_opts = PipelineOptions {
            shards: Some(2),
            ..opts
        };
        let replanned =
            for_each_shard_cst_planned(&q, &g, &tree, &other_opts, Some(&fresh.plan), |_| {});
        assert_eq!(replanned.shards, 2, "stale plan must not override the options");

        // Hand-built plans (provenance 0) are never trusted.
        let hand_built = ShardPlan::contiguous(fresh.plan.order.len(), 4);
        let guarded =
            for_each_shard_cst_planned(&q, &g, &tree, &opts, Some(&hand_built), |_| {});
        assert_eq!(guarded.plan.planner, crate::ShardPlanner::WorkloadBalanced);
    }

    #[test]
    fn cached_shards_replay_bit_identically_and_stale_artifacts_rebuild() {
        let (q, g, tree, order) = setup();
        let opts = PipelineOptions {
            threads: 1,
            shards: Some(4),
            planner: crate::ShardPlanner::WorkloadBalanced,
            ..PipelineOptions::default()
        };
        // Capture the shard CSTs of a fresh run.
        let mut captured: Vec<Arc<Cst>> = Vec::new();
        let mut cold_counts = Vec::new();
        let fresh = for_each_shard_cst(&q, &g, &tree, &opts, |s| {
            cold_counts.push(count_embeddings(&s.cst, &q, &order));
            captured.push(Arc::clone(&s.cst));
        });
        let artifact = CachedShards {
            provenance: fresh.plan.provenance,
            shards: captured,
        };

        // Replay: every shard is cached, zero build work, same counts —
        // and the same Arc allocations (pointer-identical CSTs).
        let mut warm_counts = Vec::new();
        let mut ptrs_match = true;
        let mut i = 0usize;
        let warm = for_each_shard_cst_cached(
            &q,
            &g,
            &tree,
            &opts,
            Some(&fresh.plan),
            Some(&artifact),
            |s| {
                warm_counts.push(count_embeddings(&s.cst, &q, &order));
                ptrs_match &= Arc::ptr_eq(&s.cst, &artifact.shards[i]);
                i += 1;
            },
        );
        assert_eq!(warm_counts, cold_counts);
        assert!(ptrs_match, "replay must pass the cached Arcs through");
        assert_eq!(warm.cached_shards, warm.shards);
        assert_eq!(warm.seeded_shards, 0, "nothing left to seed on a replay");
        assert_eq!(warm.topdown_entries, 0);
        assert_eq!(warm.total_adjacency_entries(), 0, "no build work happened");
        assert!(warm.shard_reports.iter().all(|r| r.cached));

        // A stale artifact (wrong provenance) or wrong shard coverage is
        // ignored: shards rebuild and results still match.
        let stale = CachedShards {
            provenance: fresh.plan.provenance ^ 1,
            shards: artifact.shards.clone(),
        };
        let mut rebuilt_counts = Vec::new();
        let rebuilt = for_each_shard_cst_cached(
            &q,
            &g,
            &tree,
            &opts,
            Some(&fresh.plan),
            Some(&stale),
            |s| rebuilt_counts.push(count_embeddings(&s.cst, &q, &order)),
        );
        assert_eq!(rebuilt.cached_shards, 0, "stale artifact must not replay");
        assert_eq!(rebuilt_counts, cold_counts);
        let short = CachedShards {
            provenance: fresh.plan.provenance,
            shards: artifact.shards[..2].to_vec(),
        };
        let partial =
            for_each_shard_cst_cached(&q, &g, &tree, &opts, Some(&fresh.plan), Some(&short), |_| {});
        assert_eq!(partial.cached_shards, 0, "partial artifacts are never trusted");
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        for count in [0usize, 1, 5, 16, 17, 100] {
            for shards in [1usize, 2, 7, 16, 200] {
                let ranges = shard_ranges(count, shards);
                let mut total = 0usize;
                let mut prev_end = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, prev_end);
                    prev_end = r.end;
                    total += r.len();
                }
                assert_eq!(total, count, "count={count} shards={shards}");
            }
        }
    }
}
