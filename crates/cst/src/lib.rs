//! # cst
//!
//! The **candidate search tree** (CST) of the FAST paper (ICDE 2021),
//! Section V — the host-side auxiliary structure that serves as a complete,
//! partitionable search space for subgraph matching:
//!
//! * [`Cst`] — candidate sets per query vertex plus CSR adjacency for every
//!   directed query edge (Definition 2);
//! * [`build_cst`] — Algorithm 1 (top-down construction, bottom-up
//!   refinement, non-tree edges), with configurable pruning strength
//!   ([`CstOptions`]);
//! * [`partition_cst`] — Algorithm 2, greedy or fixed-`k` (Fig. 8);
//! * [`estimate_workload`] — the `W_CST` dynamic program (Section V-C);
//! * [`enumerate_embeddings`] — CST-only backtracking (Theorem 1), the CPU
//!   share's matcher and the kernel's correctness oracle;
//! * [`pipeline`] — the sharded, multi-threaded host pipeline: shard CSTs
//!   built on worker threads and merged ([`build_cst_sharded`]) or streamed
//!   in shard order into the partitioner ([`for_each_shard_cst`]) so device
//!   offload overlaps construction;
//! * [`planner`] — workload-aware shard planning for that pipeline:
//!   workload-balanced boundary search, overlap-aware (hub-clustered)
//!   decomposition, and per-query auto shard-count selection
//!   ([`ShardPlanner`], [`ShardPlan`]);
//! * [`cache`] — cache-key derivation for shard plans ([`PlanKey`]): a
//!   plan is a pure function of `(q, g, tree, options)`, so a serving
//!   layer can key a plan cache on the query/tree fingerprint, a graph
//!   epoch, and the plan-relevant options and skip the probe on repeats
//!   ([`for_each_shard_cst_planned`]).

pub mod cache;
pub mod construct;
pub mod enumerate;
pub mod filter;
pub mod partition;
pub mod pipeline;
pub mod planner;
pub mod structure;
pub mod workload;

pub use construct::{
    build_cst, build_cst_from_roots, build_cst_seeded, build_cst_with_stats, root_candidates,
    BuildStats, CstOptions, TopDownSeed,
};
pub use enumerate::{
    count_embeddings, enumerate_embeddings, EnumerationStats, MatchPlan,
};
pub use filter::CandidateFilter;
pub use partition::{
    fits, partition_cst, partition_cst_into, partition_cst_with_steal, shard_at_vertex,
    PartitionConfig, PartitionStats,
};
pub use cache::{plan_provenance, query_fingerprint, Fingerprint, PlanKey};
pub use pipeline::{
    build_cst_sharded, for_each_shard_cst, for_each_shard_cst_cached, for_each_shard_cst_planned,
    merge_shard_csts, CachedShards, PipelineOptions, PipelineStats, ShardCst, ShardReport,
    DEFAULT_SHARDS,
};
pub use planner::{
    estimated_duplication, estimated_partition_ratio, plan_pipeline_shards, plan_shards,
    PlannerConfig, RootProfile, SeedMasks, ShardPlan, ShardPlanner,
};
pub use structure::{CsrAdj, Cst};
pub use workload::{estimate_workload, WorkloadEstimate};
