//! CST partitioning (paper Algorithm 2, Section V-B).
//!
//! The FPGA's BRAM (35 MB on the Alveo U200) cannot hold large CSTs, and its
//! array-partitioned edge-check limits the maximum candidate adjacency list
//! to `Port_max`. The host therefore splits the CST along the matching order:
//! the candidate set of the current order vertex is divided into `k` even
//! chunks, and each chunk induces a smaller CST rebuilt top-down, keeping for
//! later order vertices only candidates that can still reach the chunk. The
//! search spaces of sibling partitions are disjoint (Example 3), so results
//! are never duplicated.
//!
//! The greedy `k = max(|CST|/δ_S, D_CST/δ_D)` is the paper's default; a
//! fixed-`k` mode reproduces the Fig. 8 ablation.

use crate::structure::{CsrAdj, Cst};
use graph_core::MatchingOrder;

/// Partition thresholds and policy.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// δ_S: maximum CST size in bytes that fits the kernel's BRAM budget.
    pub delta_s: usize,
    /// δ_D: maximum candidate adjacency-list length (`Port_max`).
    pub delta_d: u32,
    /// Hard cap on the *full* in-BRAM footprint of an emitted partition
    /// ([`Cst::size_bytes`]: payload **plus** the CSR offsets scaffold).
    /// δ_S deliberately checks only [`Cst::payload_bytes`] (see there), so
    /// a scaffold-heavy partition could otherwise exceed the physical BRAM
    /// budget by up to the scaffold's share; this post-fit check re-splits
    /// such partitions. `None` disables the check (pure paper behaviour).
    pub footprint_budget: Option<usize>,
    /// `Some(k)` forces a fixed partition factor (Fig. 8); `None` uses the
    /// paper's greedy ratio rule.
    pub fixed_k: Option<u32>,
    /// Hard cap on emitted partitions (safety valve for misconfiguration).
    pub max_partitions: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            // Mirrors the kernel defaults in `fpga-sim::FpgaSpec` (35 MB BRAM
            // with headroom for the partial-results buffer).
            delta_s: 16 << 20,
            delta_d: 4096,
            footprint_budget: None,
            fixed_k: None,
            max_partitions: 1 << 20,
        }
    }
}

/// Outcome counters of a partition run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Partitions emitted.
    pub partitions: usize,
    /// Partitions emitted despite violating a threshold because no further
    /// split was possible (all order vertices reduced to one candidate).
    pub forced: usize,
    /// Deepest recursion (order index reached).
    pub max_index: usize,
    /// Partitions skipped because a candidate set became empty.
    pub skipped_empty: usize,
    /// Oversized CSTs consumed by the steal hook instead of being split
    /// (FAST-SHARE's partition-cost reduction, paper Section VII-B).
    pub stolen: usize,
}

/// Whether `cst` satisfies the thresholds. δ_S is checked against
/// [`Cst::payload_bytes`] (see there for why the CSR offsets scaffold is
/// excluded from the partitioning metric); the optional
/// [`footprint_budget`](PartitionConfig::footprint_budget) additionally
/// bounds the full scaffold-inclusive footprint, making the check
/// BRAM-exact for scaffold-heavy partitions.
pub fn fits(cst: &Cst, config: &PartitionConfig) -> bool {
    cst.payload_bytes() <= config.delta_s
        && cst.max_candidate_degree() <= config.delta_d
        && config
            .footprint_budget
            .is_none_or(|budget| cst.size_bytes() <= budget)
}

/// Partitions `cst` until every part satisfies `config`, streaming parts into
/// `sink`. Returns statistics.
pub fn partition_cst_into(
    cst: &Cst,
    order: &MatchingOrder,
    config: &PartitionConfig,
    sink: &mut dyn FnMut(Cst),
) -> PartitionStats {
    partition_cst_with_steal(cst, order, config, &mut |_| false, sink)
}

/// Like [`partition_cst_into`], but consults `steal` before splitting an
/// oversized CST; returning `true` consumes it (the caller processes it,
/// e.g. on the CPU) and skips the split. This is FAST-SHARE's optimisation:
/// "we may directly assign it to CPU, reducing the cost of partitioning".
pub fn partition_cst_with_steal(
    cst: &Cst,
    order: &MatchingOrder,
    config: &PartitionConfig,
    steal: &mut dyn FnMut(&Cst) -> bool,
    sink: &mut dyn FnMut(Cst),
) -> PartitionStats {
    let mut stats = PartitionStats::default();
    recurse(cst.clone(), order, config, 0, steal, sink, &mut stats);
    stats
}

/// Convenience wrapper collecting partitions into a `Vec`.
pub fn partition_cst(
    cst: &Cst,
    order: &MatchingOrder,
    config: &PartitionConfig,
) -> (Vec<Cst>, PartitionStats) {
    let mut out = Vec::new();
    let stats = partition_cst_into(cst, order, config, &mut |p| out.push(p));
    (out, stats)
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    cst: Cst,
    order: &MatchingOrder,
    config: &PartitionConfig,
    index: usize,
    steal: &mut dyn FnMut(&Cst) -> bool,
    sink: &mut dyn FnMut(Cst),
    stats: &mut PartitionStats,
) {
    stats.max_index = stats.max_index.max(index);
    if stats.partitions >= config.max_partitions {
        return;
    }
    if cst.any_empty() {
        stats.skipped_empty += 1;
        return;
    }
    if fits(&cst, config) {
        stats.partitions += 1;
        sink(cst);
        return;
    }
    if steal(&cst) {
        stats.stolen += 1;
        return;
    }
    if index >= order.len() {
        // Cannot split further; emit as-is (callers surface `forced`).
        stats.partitions += 1;
        stats.forced += 1;
        sink(cst);
        return;
    }
    let u = order.vertex_at(index);
    let count = cst.candidate_count(u);
    if count <= 1 {
        recurse(cst, order, config, index + 1, steal, sink, stats);
        return;
    }

    // k ← max(|CST|/δS, D_CST/δD), clamped to [2, |C(u)|] (Alg. 2 lines 2-3).
    // A footprint budget adds its own ratio so scaffold-heavy CSTs split
    // aggressively enough to reach the BRAM-exact bound.
    let k = match config.fixed_k {
        Some(k) => k as usize,
        None => {
            let by_size = cst.payload_bytes().div_ceil(config.delta_s);
            let by_degree = (cst.max_candidate_degree() as usize).div_ceil(config.delta_d as usize);
            let by_footprint = config
                .footprint_budget
                .map_or(0, |budget| cst.size_bytes().div_ceil(budget.max(1)));
            by_size.max(by_degree).max(by_footprint)
        }
    }
    .clamp(2, count);

    // Even split of C(u) into k chunks (Alg. 2 line 4).
    let base = count / k;
    let extra = count % k;
    let mut start = 0usize;
    for part in 0..k {
        if stats.partitions >= config.max_partitions {
            return;
        }
        let len = base + usize::from(part < extra);
        if len == 0 {
            continue;
        }
        let range = start as u32..(start + len) as u32;
        start += len;
        let sub = rebuild_partition(&cst, order, index, range);
        if sub.any_empty() {
            stats.skipped_empty += 1;
            continue;
        }
        if fits(&sub, config) {
            stats.partitions += 1;
            sink(sub);
            if stats.partitions >= config.max_partitions {
                return;
            }
        } else if sub.candidate_count(u) <= 1 {
            recurse(sub, order, config, index + 1, steal, sink, stats);
        } else {
            recurse(sub, order, config, index, steal, sink, stats);
        }
    }
}

/// Rebuilds a CST keeping, for the order vertex at `index`, only candidates
/// with indices in `chunk`; vertices preceding `index` keep all candidates,
/// vertices following it keep candidates reachable through already-rebuilt
/// neighbours (Alg. 2 lines 5-13).
fn rebuild_partition(
    cst: &Cst,
    order: &MatchingOrder,
    index: usize,
    chunk: std::ops::Range<u32>,
) -> Cst {
    let n = cst.query_vertex_count();
    // keep[u] = boolean per old candidate index.
    let mut keep: Vec<Vec<bool>> = (0..n)
        .map(|u| vec![true; cst.candidate_count(graph_core::QueryVertexId::from_index(u))])
        .collect();
    let split_vertex = order.vertex_at(index);
    for (i, flag) in keep[split_vertex.index()].iter_mut().enumerate() {
        *flag = chunk.contains(&(i as u32));
    }

    // Top-down reachability filter along the order.
    for pos in (index + 1)..order.len() {
        let u = order.vertex_at(pos);
        // Earlier-rebuilt query neighbours: those with order position < pos
        // and >= index (sets before `index` are unchanged ⇒ no constraint).
        let constraining: Vec<graph_core::QueryVertexId> = cst
            .directed_edges()
            .filter(|&(a, _)| a == u)
            .map(|(_, b)| b)
            .filter(|&b| {
                let p = order.position_of(b);
                (index..pos).contains(&p)
            })
            .collect();
        if constraining.is_empty() {
            continue;
        }
        let mut flags = std::mem::take(&mut keep[u.index()]);
        for (i, flag) in flags.iter_mut().enumerate() {
            if !*flag {
                continue;
            }
            let reachable = constraining.iter().all(|&b| {
                cst.neighbors(u, i as u32, b)
                    .iter()
                    .any(|&t| keep[b.index()][t as usize])
            });
            if !reachable {
                *flag = false;
            }
        }
        keep[u.index()] = flags;
    }

    rebuild_with_keep(cst, &keep)
}

/// Restricts a CST to candidates of `vertex` whose indices fall in `range`,
/// leaving every other candidate set untouched (adjacency into/out of
/// `vertex` is re-filtered). Used by root-candidate work sharding (the
/// parallel baselines and the multi-FPGA extension); unlike
/// [`partition_cst`], no reachability pruning is applied, which is sound but
/// keeps slightly larger partitions.
pub fn shard_at_vertex(
    cst: &Cst,
    vertex: graph_core::QueryVertexId,
    range: std::ops::Range<u32>,
) -> Cst {
    let n = cst.query_vertex_count();
    let mut keep: Vec<Vec<bool>> = (0..n)
        .map(|u| vec![true; cst.candidate_count(graph_core::QueryVertexId::from_index(u))])
        .collect();
    for (i, flag) in keep[vertex.index()].iter_mut().enumerate() {
        *flag = range.contains(&(i as u32));
    }
    rebuild_with_keep(cst, &keep)
}

/// Rebuilds a CST dropping candidates whose `keep` flag is false, remapping
/// every adjacency list.
fn rebuild_with_keep(cst: &Cst, keep: &[Vec<bool>]) -> Cst {
    let n = cst.query_vertex_count();
    // Old-index → new-index maps.
    const DROPPED: u32 = u32::MAX;
    let mut remap: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut new_candidates = Vec::with_capacity(n);
    for (u, keep_u) in keep.iter().enumerate() {
        let qu = graph_core::QueryVertexId::from_index(u);
        let mut map = vec![DROPPED; keep_u.len()];
        let mut cands = Vec::new();
        for (i, &kept) in keep_u.iter().enumerate() {
            if kept {
                map[i] = cands.len() as u32;
                cands.push(cst.candidate(qu, i as u32));
            }
        }
        remap.push(map);
        new_candidates.push(cands);
    }

    // Rebuild adjacency CSRs restricted to kept candidates.
    let mut pairs = Vec::new();
    for (a, b) in cst.directed_edges() {
        let old = cst.adjacency(a, b);
        let mut offsets = Vec::with_capacity(new_candidates[a.index()].len() + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for (i, &kept) in keep[a.index()].iter().enumerate() {
            if !kept {
                continue;
            }
            for &t in old.neighbors(i) {
                let nt = remap[b.index()][t as usize];
                if nt != DROPPED {
                    targets.push(nt);
                }
            }
            offsets.push(targets.len() as u32);
        }
        pairs.push(((a, b), CsrAdj { offsets, targets }));
    }

    Cst::from_parts(n, new_candidates, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::build_cst;
    use crate::enumerate::count_embeddings;
    use graph_core::generators::random_labelled_graph;
    use graph_core::{BfsTree, Label, QueryGraph, QueryVertexId};

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn qv(x: usize) -> QueryVertexId {
        QueryVertexId::from_index(x)
    }

    fn setup() -> (QueryGraph, graph_core::Graph, BfsTree, MatchingOrder, Cst) {
        let q = QueryGraph::new(
            vec![l(0), l(1), l(0), l(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        .unwrap();
        let g = random_labelled_graph(80, 0.12, 2, 31);
        let tree = BfsTree::new(&q, qv(0));
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).unwrap();
        let cst = build_cst(&q, &g, &tree);
        (q, g, tree, order, cst)
    }

    #[test]
    fn partitions_respect_thresholds() {
        let (_, _, _, order, cst) = setup();
        let config = PartitionConfig {
            delta_s: cst.size_bytes() / 4 + 64,
            delta_d: u32::MAX,
            footprint_budget: None,
            fixed_k: None,
            max_partitions: 1 << 16,
        };
        let (parts, stats) = partition_cst(&cst, &order, &config);
        assert!(parts.len() >= 2, "expected a real split");
        assert_eq!(stats.forced, 0);
        for p in &parts {
            assert!(fits(p, &config));
        }
    }

    #[test]
    fn partition_union_preserves_embedding_count() {
        // The core disjointness/completeness property (Example 3): summing
        // embeddings over partitions equals the whole-CST count.
        let (q, _, _, order, cst) = setup();
        let whole = count_embeddings(&cst, &q, &order);
        for delta_div in [2, 4, 8] {
            let config = PartitionConfig {
                delta_s: cst.size_bytes() / delta_div + 64,
                delta_d: u32::MAX,
                footprint_budget: None,
                fixed_k: None,
                max_partitions: 1 << 16,
            };
            let (parts, _) = partition_cst(&cst, &order, &config);
            let sum: u64 = parts.iter().map(|p| count_embeddings(p, &q, &order)).sum();
            assert_eq!(sum, whole, "delta_div={delta_div}");
        }
    }

    #[test]
    fn fixed_k_union_also_preserves_count() {
        let (q, _, _, order, cst) = setup();
        let whole = count_embeddings(&cst, &q, &order);
        for k in [2, 4, 6] {
            let config = PartitionConfig {
                delta_s: cst.size_bytes() / 3 + 64,
                delta_d: u32::MAX,
                footprint_budget: None,
                fixed_k: Some(k),
                max_partitions: 1 << 16,
            };
            let (parts, _) = partition_cst(&cst, &order, &config);
            let sum: u64 = parts.iter().map(|p| count_embeddings(p, &q, &order)).sum();
            assert_eq!(sum, whole, "k={k}");
        }
    }

    #[test]
    fn degree_threshold_triggers_partitioning() {
        let (_, _, _, order, cst) = setup();
        let d = cst.max_candidate_degree();
        if d < 2 {
            return; // graph too sparse to exercise this
        }
        let config = PartitionConfig {
            delta_s: usize::MAX,
            delta_d: d / 2,
            footprint_budget: None,
            fixed_k: None,
            max_partitions: 1 << 16,
        };
        let (parts, _) = partition_cst(&cst, &order, &config);
        assert!(!parts.is_empty());
        // Either all parts satisfy the degree bound or they were forced.
        for p in &parts {
            assert!(p.max_candidate_degree() <= d);
        }
    }

    #[test]
    fn already_fitting_cst_is_returned_unchanged() {
        let (_, _, _, order, cst) = setup();
        let config = PartitionConfig::default();
        let (parts, stats) = partition_cst(&cst, &order, &config);
        assert_eq!(parts.len(), 1);
        assert_eq!(stats.partitions, 1);
        assert_eq!(parts[0].total_candidates(), cst.total_candidates());
    }

    #[test]
    fn partitions_are_structurally_valid() {
        let (q, _, _, order, cst) = setup();
        let config = PartitionConfig {
            delta_s: cst.size_bytes() / 6 + 64,
            delta_d: u32::MAX,
            footprint_budget: None,
            fixed_k: None,
            max_partitions: 1 << 16,
        };
        let (parts, _) = partition_cst(&cst, &order, &config);
        for p in &parts {
            p.validate(&q).unwrap();
        }
    }

    #[test]
    fn greedy_emits_no_more_partitions_than_small_fixed_k() {
        // Fig. 8's observation: the greedy rule needs the fewest partitions.
        let (_, _, _, order, cst) = setup();
        let delta_s = cst.size_bytes() / 4 + 64;
        let mk = |fixed_k| PartitionConfig {
            delta_s,
            delta_d: u32::MAX,
            footprint_budget: None,
            fixed_k,
            max_partitions: 1 << 16,
        };
        let (greedy, _) = partition_cst(&cst, &order, &mk(None));
        let (k2, _) = partition_cst(&cst, &order, &mk(Some(2)));
        assert!(greedy.len() <= k2.len() + 1, "{} vs {}", greedy.len(), k2.len());
    }

    #[test]
    fn footprint_budget_bounds_full_size() {
        // Against payload-only δ_S, a partition's scaffold-inclusive size
        // can exceed the intended BRAM budget; with `footprint_budget` set,
        // every non-forced partition obeys the exact bound.
        let (q, _, _, order, cst) = setup();
        let budget = cst.size_bytes() / 4 + 96;
        let config = PartitionConfig {
            // δ_S generous on purpose: only the footprint check forces
            // further splits here.
            delta_s: cst.payload_bytes(),
            delta_d: u32::MAX,
            footprint_budget: Some(budget),
            fixed_k: None,
            max_partitions: 1 << 16,
        };
        let (parts, stats) = partition_cst(&cst, &order, &config);
        assert!(parts.len() >= 2, "footprint check must trigger a split");
        if stats.forced == 0 {
            for p in &parts {
                assert!(
                    p.size_bytes() <= budget,
                    "footprint {} exceeds budget {budget}",
                    p.size_bytes()
                );
            }
        }
        // Disjointness/completeness is preserved under the extra splits.
        let whole = count_embeddings(&cst, &q, &order);
        let sum: u64 = parts.iter().map(|p| count_embeddings(p, &q, &order)).sum();
        assert_eq!(sum, whole);
    }

    #[test]
    fn max_partitions_caps_output() {
        let (_, _, _, order, cst) = setup();
        let config = PartitionConfig {
            delta_s: 128,
            delta_d: u32::MAX,
            footprint_budget: None,
            fixed_k: None,
            max_partitions: 3,
        };
        let (parts, _) = partition_cst(&cst, &order, &config);
        assert!(parts.len() <= 3);
    }
}
