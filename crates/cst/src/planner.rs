//! Workload-aware shard planning for the host CST pipeline.
//!
//! The pipeline's original sharding rule (`shard_ranges`) splits the root
//! candidate list into contiguous *equal-count* chunks. EXPERIMENTS.md §13
//! shows what that costs: interior candidates reachable from several shards
//! are rebuilt per shard, and on hub-dominated queries the duplication
//! factor reaches 2.7–4.6× at 16 shards — the host-side mirror of the
//! substream-partitioning observation (how you cut the stream determines
//! both balance and redundancy) and of the paper's Fig. 14 commentary on
//! the root-sharded DAF-8/CECI-8 baselines.
//!
//! This module plans the shard decomposition instead of splitting blindly:
//!
//! 1. **Probe** ([`RootProfile::probe`]): one top-down pass of
//!    Algorithm 1 (tree edges, no refinement) memoises the candidate
//!    space as per-level CSR, computes exact per-root `W_CST` weights —
//!    the planner's `WorkloadEstimate::per_root_candidate`, available
//!    *before* any shard build — plus a stride-sampled count of the
//!    non-tree candidate edges (where dense queries keep most of their
//!    CST entries).
//! 2. **Workload-balanced boundary search**
//!    ([`ShardPlanner::WorkloadBalanced`]): boundaries placed by prefix
//!    sums over the weights, so every shard carries ≈ `1/S` of the
//!    estimated workload instead of `1/S` of the roots. If no weight
//!    exceeds the mean shard workload, every planned shard is provably
//!    within 2× of the mean (first-crossing rule; see
//!    `balanced_boundaries`).
//! 3. **Overlap-aware planning** ([`ShardPlanner::OverlapAware`]): roots
//!    are re-ordered so that roots sharing their dominant hub neighbour
//!    land in the same shard (hub-clustered order), boundaries are
//!    workload-balanced over that order and locally refined to the cut
//!    with the smallest shared 1-hop frontier between the adjacent
//!    ranges. Candidate decompositions are scored by the **overlap cost
//!    model** ([`estimated_duplication`]): a per-shard bitmask is
//!    OR-propagated down the probed candidate space, and every
//!    refinement-surviving candidate edge counts once per shard that
//!    reaches both endpoints — the modelled total-entries-built over the
//!    sequential build, accurate to a few percent on the benchmark
//!    queries (EXPERIMENTS.md §13). Shard root sets are arbitrary subsets
//!    (the pipeline's soundness argument only needs them disjoint and
//!    complete), so the planner is free to permute.
//! 4. **Auto shard-count selection** ([`ShardPlanner::Auto`]): candidate
//!    shard counts are scored with the overlapped host model
//!    (`fill + max(build_par − fill, partition)` plus a contention charge
//!    for duplicated build work) using the plan's estimated duplication
//!    ([`ShardPlan::estimated_duplication`]), so flat queries keep the
//!    default shard count while hub-dominated ones drop to the count that
//!    minimises modelled prepare time.
//!
//! # Determinism
//!
//! A plan is a pure function of `(q, g, tree, CstOptions, requested
//! shards, planner)`. In particular [`PlannerConfig::reference_threads`]
//! is a **constant**, never the pipeline's actual thread count: the shard
//! decomposition — and everything downstream of it — must stay
//! bit-identical for every thread count (see `cst::pipeline` module docs).

use crate::construct::{CstOptions, TopDownSeed};
use crate::filter::CandidateFilter;
use crate::pipeline::{shard_ranges, PipelineOptions};
use graph_core::{BfsTree, Graph, QueryGraph, VertexId};
use std::ops::Range;
use std::sync::Arc;

/// Shard-boundary planning policy of the host CST pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPlanner {
    /// Contiguous equal-count chunks over the sorted root candidate list —
    /// the original (blind) rule; zero planning cost.
    #[default]
    Contiguous,
    /// Contiguous chunks balanced by the probed per-root workload weights.
    WorkloadBalanced,
    /// Hub-clustered root order, workload-balanced boundaries, each
    /// boundary refined to the cut minimising the shared 1-hop frontier.
    OverlapAware,
    /// Per-query shard-count selection: scores candidate shard counts with
    /// the overlapped host model and the plan's estimated duplication,
    /// then plans overlap-aware boundaries at the winning count (falling
    /// back to contiguous boundaries when the estimated duplication is
    /// already negligible).
    Auto,
}

impl std::fmt::Display for ShardPlanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ShardPlanner::Contiguous => "contiguous",
            ShardPlanner::WorkloadBalanced => "balanced",
            ShardPlanner::OverlapAware => "overlap",
            ShardPlanner::Auto => "auto",
        };
        f.write_str(s)
    }
}

/// Constants of the planner's cost model. All values are deliberately
/// thread-count independent (see the module docs on determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Reference host parallelism for the auto score — the paper's 8-core
    /// Xeon. **Never** set this from the pipeline's actual thread count.
    pub reference_threads: f64,
    /// Parallel efficiency of the reference host (mirrors
    /// `matching::CpuCostModel::parallel_efficiency`).
    pub parallel_efficiency: f64,
    /// Modelled partition-to-build work ratio ρ: the partition phase that
    /// `fill + max(build_par − fill, partition)` overlaps against, in
    /// units of the sequential build (calibrated from the `probe` split,
    /// where partitioning is 1–2× the build on the larger datasets). This
    /// is the *saturated* value — what partition-dominated queries pay —
    /// and the fallback when no probe or δ_S hint is available; per query,
    /// [`estimated_partition_ratio`] scales it by the partition count the
    /// probed candidate mass implies under [`PlannerConfig::delta_s_hint`].
    pub partition_build_ratio: f64,
    /// The device's δ_S payload threshold (bytes per partition), when the
    /// caller knows it ([`crate::PipelineOptions::partition_hint`]). Feeds
    /// the per-query ρ estimate: a CST whose probed candidate mass fits in
    /// one partition barely pays for partitioning at all, while one that
    /// splits hundreds of ways pays the full calibrated ratio.
    pub delta_s_hint: Option<usize>,
    /// Contention charge κ per unit of *duplicated* build work: duplicated
    /// shard work executes on the same socket as the partition/offload
    /// consumer, so it is charged at one reference-core's share.
    pub duplication_charge: f64,
    /// Boundary-refinement balance slack: a refined boundary may not push
    /// an adjacent shard beyond `slack × mean` planned workload.
    pub balance_slack: f64,
    /// Auto keeps plain contiguous boundaries when the estimated
    /// duplication at the chosen shard count stays below this threshold
    /// (flat queries must not pay reordering churn for nothing).
    pub overlap_fallback: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            reference_threads: 8.0,
            parallel_efficiency: 0.75,
            partition_build_ratio: 1.0,
            // Duplicated build work competes with the overlapped
            // partition/offload consumer for the socket's memory bandwidth,
            // so it is charged near its full serial cost; 0.7 places the
            // auto choices at the measured per-query optima of the DG03
            // duplication table (EXPERIMENTS.md §13).
            duplication_charge: 0.7,
            balance_slack: 2.0,
            overlap_fallback: 1.05,
            delta_s_hint: None,
        }
    }
}

/// Modelled bytes per CST adjacency entry: the `u32` target plus its share
/// of the CSR offsets scaffold (`Cst::payload_bytes` averages ≈ 5 bytes per
/// entry on the benchmark queries).
const BYTES_PER_ENTRY: f64 = 5.0;

/// Per-query estimate of the partition/build work ratio ρ from the probe:
/// the probed candidate mass ([`RootProfile::entry_mass`]) implies a
/// partition count `P = ⌈mass · bytes / δ_S⌉` under the δ_S hint, and the
/// greedy partitioner's work grows with the recursion depth `log₂ P` —
/// a CST that fits whole (`P = 1`) pays only the fits-check scan, while one
/// that splits ≥ 16 ways pays the full calibrated
/// [`PlannerConfig::partition_build_ratio`]. Falls back to that calibrated
/// constant when the profile carries no candidate mass or no hint was
/// given (exactly the old fixed ρ = 1 behaviour).
pub fn estimated_partition_ratio(profile: &RootProfile, config: &PlannerConfig) -> f64 {
    let Some(delta_s) = config.delta_s_hint else {
        return config.partition_build_ratio;
    };
    if profile.entry_mass <= 0.0 || delta_s == 0 {
        return config.partition_build_ratio;
    }
    let bytes = profile.entry_mass * BYTES_PER_ENTRY;
    let partitions = (bytes / delta_s as f64).ceil().max(1.0);
    // Depth factor: 0.2 at P = 1 (one streaming fits-check), saturating at
    // 1 once the split recursion is ≥ 4 levels deep, capped at 1.5 for
    // pathological split counts (the host model's flat 2× entries charge
    // stops growing there too).
    let depth = ((1.0 + partitions.log2()) / 5.0).clamp(0.2, 1.5);
    config.partition_build_ratio * depth
}

/// One non-root query vertex's slice of the probed candidate space: the
/// tree-edge adjacency from the parent's candidates to this vertex's, in
/// CSR form over *candidate indices* (discovery order).
#[derive(Debug, Clone, PartialEq)]
struct ProbeLevel {
    /// The query vertex this level belongs to (index into `q`).
    vertex: usize,
    /// The parent query vertex (index into `q`; the root included).
    parent: usize,
    /// Number of candidates discovered at this level.
    count: usize,
    /// `offsets[i]..offsets[i+1]` slices `targets` for the parent's `i`-th
    /// candidate.
    offsets: Vec<u32>,
    /// Candidate indices at this level (not sorted — discovery order).
    targets: Vec<u32>,
    /// The candidate data vertices, indexed by candidate index (discovery
    /// order) — the memoised phase-1 sets seeded shard builds restrict
    /// ([`RootProfile::seed_chunks`]).
    candidates: Vec<VertexId>,
}

/// One non-tree query edge's sampled candidate edges: `(i, j)` pairs of
/// candidate indices at the two endpoint levels, every `stride`-th edge of
/// the scan kept.
#[derive(Debug, Clone, PartialEq)]
struct NonTreeSample {
    /// Mask index of the first endpoint (0 = root, else level index + 1).
    a_mask: usize,
    /// Mask index of the second endpoint.
    b_mask: usize,
    /// Each kept pair stands for this many scanned candidate edges.
    stride: usize,
    pairs: Vec<(u32, u32)>,
}

/// Shard-reachability masks over the probed candidate space — stage 1 of
/// seed derivation ([`RootProfile::seed_masks`]): `chunks[c][level][cand]`
/// carries bit `s − 64·c` for every shard `s` whose roots reach the
/// candidate. One `u64` per candidate per 64-shard chunk.
#[derive(Debug)]
pub struct SeedMasks {
    /// Per 64-shard chunk, per probe level (root level excluded), the
    /// candidate masks.
    chunks: Vec<Vec<Vec<u64>>>,
    /// Shard count the masks were derived for.
    shards: usize,
}

/// Cap on kept pairs per non-tree edge; reaching it halves the sample and
/// doubles the stride (deterministic — no RNG).
const NONTREE_SAMPLE_CAP: usize = 1 << 18;

/// Neighbour-visit budget of one non-tree edge's scan. Candidate sets
/// whose degree sum exceeds it are source-sampled (every k-th candidate),
/// so the probe's non-tree pass stays a bounded fraction of the build the
/// plan is for.
const NONTREE_SCAN_BUDGET: usize = 1 << 20;

/// Per-root probe results: the unrefined tree-edge candidate space (one
/// top-down pass of Algorithm 1, memoised as per-level CSR **with the
/// discovered candidate vertices**, so shard builds can be seeded from it —
/// [`RootProfile::seed_chunks`]), per-root workload weights from the
/// `W_CST` dynamic program over that space, and per-root dominant hubs for
/// clustering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RootProfile {
    /// `W_CST` per root candidate over the probed (unrefined, tree-edge)
    /// candidate space — the planner's incarnation of
    /// `WorkloadEstimate::per_root_candidate`, computable before any shard
    /// build starts.
    pub weights: Vec<f64>,
    /// Non-root levels in BFS order. The root's own level-1 adjacency is
    /// the first entry whose `parent` is the root (the "CST root
    /// adjacency" the boundary scores read).
    levels: Vec<ProbeLevel>,
    /// Index of the root query vertex.
    root_vertex: usize,
    /// Dominant hub per root: the root's level-1 candidate shared with the
    /// most other roots (ties → smallest candidate index); `None` when the
    /// root reaches nothing.
    hubs: Vec<Option<u32>>,
    /// Refinement survival per level (`[0]` = the root level, then in step
    /// with `levels`): whether the candidate's DP subtree count is
    /// non-zero — exactly the candidates one bottom-up refinement pass
    /// keeps. Entry weights in the duplication estimate are restricted to
    /// survivors, mirroring the sequential build the actual factors divide
    /// by.
    alive: Vec<Vec<bool>>,
    /// Sampled non-tree candidate edges. Tree reachability alone misses
    /// the entry mass of dense queries (a clique hanging off the tree
    /// stores most of its CST in non-tree adjacency), so the probe counts
    /// those edges too — stride-sampled with a deterministic cap.
    nontree: Vec<NonTreeSample>,
    /// `(vertex, filter)` evaluations of the probe pass — its work unit
    /// for cost accounting.
    pub probe_entries: usize,
    /// Modelled sequential CST entry mass: refinement-surviving candidates
    /// plus their tree-adjacency entries towards surviving children and the
    /// (stride-weighted) surviving non-tree candidate edges — the same
    /// denominator [`estimated_duplication`] normalises by, available
    /// without a plan. Feeds the per-query ρ estimate
    /// ([`estimated_partition_ratio`]).
    pub entry_mass: f64,
}

impl RootProfile {
    /// Approximate heap bytes of the probe's memoised candidate space —
    /// the dominant weight of a probe-carrying [`ShardPlan`] in a
    /// byte-budgeted cache.
    pub fn approx_bytes(&self) -> usize {
        let levels: usize = self
            .levels
            .iter()
            .map(|l| {
                (l.offsets.len() + l.targets.len()) * std::mem::size_of::<u32>()
                    + l.candidates.len() * std::mem::size_of::<VertexId>()
            })
            .sum();
        let alive: usize = self.alive.iter().map(Vec::len).sum();
        let nontree: usize = self
            .nontree
            .iter()
            .map(|s| s.pairs.len() * std::mem::size_of::<(u32, u32)>())
            .sum();
        self.weights.len() * std::mem::size_of::<f64>()
            + self.hubs.len() * std::mem::size_of::<Option<u32>>()
            + levels
            + alive
            + nontree
    }

    /// Runs the probe: phase 1 of Algorithm 1 (top-down construction, no
    /// refinement, tree edges only), recording per-level candidate
    /// adjacency. Every interior vertex is expanded exactly once — unlike
    /// the shard builds whose duplication this estimates — so the cost is
    /// one filtered scan of the tree-edge candidate space, a fraction of
    /// the full build (which additionally refines and materialises
    /// adjacency for *all* query edges in both directions).
    pub fn probe(
        q: &QueryGraph,
        g: &Graph,
        tree: &BfsTree,
        options: CstOptions,
        roots: &[VertexId],
    ) -> RootProfile {
        let root = tree.root();
        let mut profile = RootProfile {
            weights: vec![1.0; roots.len()],
            levels: Vec::new(),
            root_vertex: root.index(),
            hubs: vec![None; roots.len()],
            alive: Vec::new(),
            nontree: Vec::new(),
            probe_entries: 0,
            entry_mass: 0.0,
        };
        let mut scratch = Vec::new();

        // Candidate vertex lists per query vertex (root seeded by caller);
        // `slot` maps data vertex → candidate index at the level currently
        // being built (u32::MAX = absent), reset between levels.
        let mut candidates: Vec<Vec<VertexId>> = vec![Vec::new(); q.vertex_count()];
        candidates[root.index()] = roots.to_vec();
        let mut slot = vec![u32::MAX; g.vertex_count()];

        for &u in &tree.bfs_order()[1..] {
            let parent = tree.parent(u).expect("non-root has a parent");
            let filter = CandidateFilter::new(q, u);
            let mut level = ProbeLevel {
                vertex: u.index(),
                parent: parent.index(),
                count: 0,
                offsets: Vec::with_capacity(candidates[parent.index()].len() + 1),
                targets: Vec::new(),
                candidates: Vec::new(),
            };
            level.offsets.push(0);
            let mut discovered: Vec<VertexId> = Vec::new();
            for vp in candidates[parent.index()].iter().copied() {
                for &w in g.neighbors(vp) {
                    profile.probe_entries += 1;
                    let passes = if options.use_nlf {
                        filter.passes(g, w, &mut scratch)
                    } else {
                        filter.passes_basic(g, w)
                    };
                    if !passes {
                        continue;
                    }
                    let idx = if slot[w.index()] == u32::MAX {
                        let idx = discovered.len() as u32;
                        slot[w.index()] = idx;
                        discovered.push(w);
                        idx
                    } else {
                        slot[w.index()]
                    };
                    level.targets.push(idx);
                }
                level.offsets.push(level.targets.len() as u32);
            }
            for &w in &discovered {
                slot[w.index()] = u32::MAX;
            }
            level.count = discovered.len();
            level.candidates = discovered.clone();
            candidates[u.index()] = discovered;
            profile.levels.push(level);
        }

        // Sample the non-tree candidate edges: for every non-tree query
        // edge, scan one endpoint's candidates against the other's
        // membership, keeping every `stride`-th hit (stride doubles when
        // the cap is reached — deterministic). This is a counting scan of
        // the adjacency the build's phase 3 will materialise per shard;
        // dense queries keep most of their CST entries here.
        let mask_index = |v: usize| -> usize {
            if v == root.index() {
                0
            } else {
                1 + profile
                    .levels
                    .iter()
                    .position(|l| l.vertex == v)
                    .expect("every non-root query vertex has a probe level")
            }
        };
        for &(a, b) in q.edges() {
            if tree.is_tree_edge(a, b) {
                continue;
            }
            let (ca, cb) = (&candidates[a.index()], &candidates[b.index()]);
            // Scan the smaller candidate side.
            let (u, w) = if ca.len() <= cb.len() { (a, b) } else { (b, a) };
            for (wi, &x) in candidates[w.index()].iter().enumerate() {
                slot[x.index()] = wi as u32;
            }
            let mut sample = NonTreeSample {
                a_mask: mask_index(u.index()),
                b_mask: mask_index(w.index()),
                stride: 1,
                pairs: Vec::new(),
            };
            // Source-sample when the scan would blow the budget: every
            // `source_stride`-th candidate of `u` is scanned, each kept
            // pair standing for `source_stride` sources' worth of edges.
            let deg_sum: usize = candidates[u.index()]
                .iter()
                .map(|&v| g.degree(v) as usize)
                .sum();
            let source_stride = deg_sum.div_ceil(NONTREE_SCAN_BUDGET).max(1);
            let mut hit_stride = 1usize;
            let mut seen = 0usize;
            for (ui, &v) in candidates[u.index()].iter().enumerate() {
                if !ui.is_multiple_of(source_stride) {
                    continue;
                }
                for &x in g.neighbors(v) {
                    profile.probe_entries += 1;
                    let wi = slot[x.index()];
                    if wi == u32::MAX {
                        continue;
                    }
                    if seen.is_multiple_of(hit_stride) {
                        if sample.pairs.len() == NONTREE_SAMPLE_CAP {
                            // Halve the sample, double the stride.
                            let mut keep = 0usize;
                            for i in (0..sample.pairs.len()).step_by(2) {
                                sample.pairs[keep] = sample.pairs[i];
                                keep += 1;
                            }
                            sample.pairs.truncate(keep);
                            hit_stride *= 2;
                        }
                        if seen.is_multiple_of(hit_stride) {
                            sample.pairs.push((ui as u32, wi));
                        }
                    }
                    seen += 1;
                }
            }
            sample.stride = source_stride * hit_stride;
            for &x in candidates[w.index()].iter() {
                slot[x.index()] = u32::MAX;
            }
            profile.nontree.push(sample);
        }

        profile.compute_weights();
        profile.compute_hubs();
        profile.compute_entry_mass();
        profile
    }

    /// Bottom-up `W_CST` dynamic program over the probed levels:
    /// `c_u(v) = Π_{children} Σ_{targets} c_child`, roots last. A zero DP
    /// value is exactly "no support under some child" — what one bottom-up
    /// refinement pass removes — so the survival bitmaps fall out for free.
    fn compute_weights(&mut self) {
        let mut c: Vec<Vec<f64>> = self.levels.iter().map(|l| vec![1.0; l.count]).collect();
        // Levels are in BFS order, so reverse order is bottom-up. Each
        // level folds its DP values into its parent's product.
        for li in (0..self.levels.len()).rev() {
            let level = &self.levels[li];
            let child_c = std::mem::take(&mut c[li]);
            let parent_count = level.offsets.len() - 1;
            let mut sums = vec![0.0f64; parent_count];
            for (pi, sum) in sums.iter_mut().enumerate() {
                let r = level.offsets[pi] as usize..level.offsets[pi + 1] as usize;
                *sum = level.targets[r].iter().map(|&t| child_c[t as usize]).sum();
            }
            if level.parent == self.root_vertex {
                for (w, s) in self.weights.iter_mut().zip(&sums) {
                    *w *= s;
                }
            } else {
                let parent_li = self
                    .levels
                    .iter()
                    .position(|l| l.vertex == level.parent)
                    .expect("parent level precedes child in BFS order");
                for (v, s) in c[parent_li].iter_mut().zip(&sums) {
                    *v *= s;
                }
            }
            c[li] = child_c;
        }
        self.alive = Vec::with_capacity(self.levels.len() + 1);
        self.alive
            .push(self.weights.iter().map(|&w| w > 0.0).collect());
        for values in &c {
            self.alive.push(values.iter().map(|&v| v > 0.0).collect());
        }
    }

    /// Dominant hub per root: the level-1 candidate shared with the most
    /// roots (by in-degree over the root adjacency), ties → smallest
    /// index. Roots sharing their dominant hub are the ones whose shard
    /// separation duplicates that hub's whole subtree.
    fn compute_hubs(&mut self) {
        let Some(level1) = self.levels.iter().find(|l| l.parent == self.root_vertex) else {
            return;
        };
        let mut indeg = vec![0u32; level1.count];
        for &t in &level1.targets {
            indeg[t as usize] += 1;
        }
        for (i, hub) in self.hubs.iter_mut().enumerate() {
            let r = level1.offsets[i] as usize..level1.offsets[i + 1] as usize;
            *hub = level1.targets[r]
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    indeg[a as usize]
                        .cmp(&indeg[b as usize])
                        .then_with(|| b.cmp(&a)) // ties → smallest index wins
                });
        }
    }

    /// The sequential entry-mass accumulation of [`estimated_duplication`]
    /// without any plan: every refinement-surviving candidate counts itself
    /// plus its tree-adjacency entries towards surviving children, and every
    /// surviving sampled non-tree edge counts its stride.
    fn compute_entry_mass(&mut self) {
        if !self.has_levels() {
            self.entry_mass = 0.0;
            return;
        }
        let mut mass = 0.0f64;
        for li in 0..=self.levels.len() {
            let (vertex, count) = if li == 0 {
                (self.root_vertex, self.weights.len())
            } else {
                (self.levels[li - 1].vertex, self.levels[li - 1].count)
            };
            let alive = &self.alive[li];
            for (vi, &live) in alive.iter().enumerate().take(count) {
                if !live {
                    continue;
                }
                let mut entries = 1.0f64;
                for (ci, child) in self.levels.iter().enumerate() {
                    if child.parent != vertex {
                        continue;
                    }
                    let child_alive = &self.alive[ci + 1];
                    let r = child.offsets[vi] as usize..child.offsets[vi + 1] as usize;
                    entries += child.targets[r]
                        .iter()
                        .filter(|&&t| child_alive[t as usize])
                        .count() as f64;
                }
                mass += entries;
            }
        }
        for sample in &self.nontree {
            let (aa, ba) = (&self.alive[sample.a_mask], &self.alive[sample.b_mask]);
            let stride = sample.stride as f64;
            for &(i, j) in &sample.pairs {
                if aa[i as usize] && ba[j as usize] {
                    mass += stride;
                }
            }
        }
        self.entry_mass = mass;
    }

    /// A profile carrying only workload weights (no candidate-space
    /// information) — what planning from an exact
    /// `WorkloadEstimate::per_root_candidate` vector looks like. Overlap
    /// estimates degrade to 1.0.
    pub fn from_weights(weights: Vec<f64>) -> RootProfile {
        let n = weights.len();
        RootProfile {
            weights,
            levels: Vec::new(),
            root_vertex: 0,
            hubs: vec![None; n],
            alive: Vec::new(),
            nontree: Vec::new(),
            probe_entries: 0,
            entry_mass: 0.0,
        }
    }

    /// Stage 1 of seed derivation: shard-reachability masks over the
    /// memoised candidate space. Shard masks are OR-propagated down the
    /// probed tree-edge CSR (one integer sweep per 64 shards — no graph
    /// access, no filter evaluations): shard `s` reaches a candidate iff
    /// some candidate parent of it carries bit `s`. The masks are shared
    /// by every shard's [`seed_shard`](Self::seed_shard) extraction — one
    /// `u64` per candidate per 64-shard chunk, far smaller than
    /// materialising all shards' candidate sets upfront.
    ///
    /// Returns `None` when the profile carries no candidate space
    /// (weights-only profiles) or was probed over a different root list —
    /// the caller must fall back to cold builds.
    pub fn seed_masks(&self, plan: &ShardPlan, roots: &[VertexId]) -> Option<SeedMasks> {
        if !self.has_levels()
            || self.weights.len() != roots.len()
            || plan.order.len() != roots.len()
        {
            return None;
        }
        let shards = plan.shard_count();
        let level_index: std::collections::HashMap<usize, usize> = self
            .levels
            .iter()
            .enumerate()
            .map(|(li, l)| (l.vertex, li + 1))
            .collect();
        // One 64-wide mask sweep per chunk of shards (no saturation — every
        // shard gets its own bit, unlike the duplication estimate).
        let mut chunks = Vec::with_capacity(shards.div_ceil(64));
        for base in (0..shards).step_by(64) {
            let width = (shards - base).min(64);
            let mut masks: Vec<Vec<u64>> = Vec::with_capacity(self.levels.len() + 1);
            let mut root_masks = vec![0u64; roots.len()];
            for s in base..base + width {
                let bit = 1u64 << (s - base);
                for &i in &plan.order[plan.ranges[s].clone()] {
                    root_masks[i as usize] |= bit;
                }
            }
            masks.push(root_masks);
            for level in &self.levels {
                let parent_masks: &Vec<u64> = if level.parent == self.root_vertex {
                    &masks[0]
                } else {
                    &masks[level_index[&level.parent]]
                };
                let mut mine = vec![0u64; level.count];
                for (pi, &m) in parent_masks.iter().enumerate() {
                    if m == 0 {
                        continue;
                    }
                    let r = level.offsets[pi] as usize..level.offsets[pi + 1] as usize;
                    for &t in &level.targets[r] {
                        mine[t as usize] |= m;
                    }
                }
                masks.push(mine);
            }
            // Drop the root-level masks: extraction never reads them (the
            // root level of a seed is the shard's own chunk).
            masks.remove(0);
            chunks.push(masks);
        }
        Some(SeedMasks { chunks, shards })
    }

    /// Stage 2 of seed derivation: extracts shard `s`'s phase-1 candidate
    /// sets from the propagated `masks`. Each level's reached candidates
    /// are **exactly** the set the shard's own top-down pass would
    /// discover, because every shard parent candidate is a member of the
    /// probed space with the identical (filtered) target list. The
    /// resulting [`TopDownSeed`] feeds
    /// [`crate::construct::build_cst_seeded`]; seeded builds are
    /// bit-identical to cold ones (`tests/prop_seeded_build.rs`). Note the
    /// probe's stride-sampled non-tree edges play no part here: seeds
    /// carry only the tree-edge candidate *sets*, and the build
    /// re-materialises every adjacency list from the graph.
    ///
    /// `chunk` is the shard's sorted root chunk (`ShardPlan::chunk_roots`);
    /// runs on whichever thread builds the shard, so extraction
    /// parallelises with the builds.
    pub fn seed_shard(&self, masks: &SeedMasks, chunk: Vec<VertexId>, s: usize) -> TopDownSeed {
        assert!(s < masks.shards, "shard index within the planned count");
        let n = self.levels.len() + 1; // the BFS tree spans every query vertex
        let mut seed = TopDownSeed {
            candidates: vec![Vec::new(); n],
        };
        seed.candidates[self.root_vertex] = chunk;
        let level_masks = &masks.chunks[s / 64];
        let bit = 1u64 << (s % 64);
        for (li, level) in self.levels.iter().enumerate() {
            let mut cands: Vec<VertexId> = level
                .candidates
                .iter()
                .zip(&level_masks[li])
                .filter(|&(_, &m)| m & bit != 0)
                .map(|(&v, _)| v)
                .collect();
            // Discovery order → the sorted order the top-down pass emits
            // (candidate vertices are distinct by construction).
            cands.sort_unstable();
            seed.candidates[level.vertex] = cands;
        }
        seed
    }

    /// Derives every shard's phase-1 candidate sets at once —
    /// [`seed_masks`](Self::seed_masks) + [`seed_shard`](Self::seed_shard)
    /// per shard. The pipeline itself extracts lazily per shard (bounding
    /// peak memory to the in-flight shards); this convenience form backs
    /// the tests.
    pub fn seed_chunks(&self, plan: &ShardPlan, roots: &[VertexId]) -> Option<Vec<TopDownSeed>> {
        let masks = self.seed_masks(plan, roots)?;
        Some(
            (0..plan.shard_count())
                .map(|s| self.seed_shard(&masks, plan.chunk_roots(roots, s), s))
                .collect(),
        )
    }

    /// Drops the planner-only payloads — non-tree edge samples (up to
    /// 2¹⁸ pairs per non-tree query edge), dominant hubs, refinement
    /// bitmaps — keeping exactly what seed derivation reads: the
    /// per-level candidate CSR (with candidate vertices) and the root
    /// weights (whose length gates [`seed_masks`](Self::seed_masks)).
    /// Applied before the probe is attached to a [`ShardPlan`], so a plan
    /// cache pins only the seed-relevant data.
    fn into_seed_profile(mut self) -> RootProfile {
        self.nontree = Vec::new();
        self.hubs = Vec::new();
        self.alive = Vec::new();
        self
    }

    /// The root's level-1 adjacency: candidate indices reachable from root
    /// `i` (the 1-hop frontier, in discovery order).
    fn level1(&self, i: usize) -> &[u32] {
        match self.levels.iter().find(|l| l.parent == self.root_vertex) {
            Some(l) => {
                &l.targets[l.offsets[i] as usize..l.offsets[i + 1] as usize]
            }
            None => &[],
        }
    }

    /// Whether the profile carries candidate-space information.
    fn has_levels(&self) -> bool {
        !self.levels.is_empty()
    }
}

/// A planned shard decomposition of the root candidate list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardPlan {
    /// The planner that produced this plan.
    pub planner: ShardPlanner,
    /// Root indices (into the sorted root candidate list) in assignment
    /// order; shard `s` owns `order[ranges[s]]`. Identity for contiguous
    /// and workload-balanced plans.
    pub order: Vec<u32>,
    /// Shard boundaries over `order`.
    pub ranges: Vec<Range<usize>>,
    /// Planned workload per shard (sums of the probed weights; root counts
    /// when no weights were available).
    pub shard_weights: Vec<f64>,
    /// Estimated interior-candidate duplication of this decomposition:
    /// `Σ_s |frontier(s)| / |∪ frontier|` over the probed 1-hop frontiers
    /// (1.0 for one shard or when no frontier information exists).
    pub estimated_duplication: f64,
    /// The partition/build ratio ρ the planner's score used
    /// ([`estimated_partition_ratio`]): per-query from the probed candidate
    /// mass when a δ_S hint was available, otherwise the calibrated
    /// [`PlannerConfig::partition_build_ratio`] constant.
    pub partition_ratio: f64,
    /// Probe work behind the plan (0 for contiguous plans).
    pub probe_entries: usize,
    /// Fingerprint of the planning inputs ([`crate::cache::plan_provenance`]):
    /// set by [`plan_pipeline_shards`], 0 for hand-built plans. A supplied
    /// plan is only trusted by `for_each_shard_cst_planned` when this
    /// matches the freshly derived inputs.
    pub provenance: u64,
    /// The probe behind the plan, when one ran: the memoised per-level
    /// candidate space shard builds are seeded from
    /// ([`RootProfile::seed_chunks`]). Rides with the plan through the
    /// pipeline and any plan cache, so a warm-cache session skips the
    /// global top-down scan entirely. `None` for contiguous/degenerate
    /// plans (no probe) and hand-built plans; covered by the same
    /// [`provenance`](Self::provenance) trust check as the boundaries —
    /// a foreign probe is discarded with its plan, never seeded from.
    pub probe: Option<Arc<RootProfile>>,
}

impl ShardPlan {
    /// The blind equal-count plan over `count` roots — the pipeline's
    /// original rule, with no probe cost.
    pub fn contiguous(count: usize, shards: usize) -> ShardPlan {
        let ranges = shard_ranges(count, shards);
        let shard_weights = ranges.iter().map(|r| r.len() as f64).collect();
        ShardPlan {
            planner: ShardPlanner::Contiguous,
            order: (0..count as u32).collect(),
            ranges,
            shard_weights,
            estimated_duplication: 1.0,
            partition_ratio: 1.0,
            probe_entries: 0,
            provenance: 0,
            probe: None,
        }
    }

    /// Approximate heap bytes of the plan — boundaries, weights, and the
    /// riding probe. The eviction weight of a byte-budgeted plan cache
    /// (`serve::PlanCache`): probe-carrying plans dominate (the memoised
    /// candidate space), so an entry-count LRU systematically undercounts
    /// exactly the entries worth budgeting.
    pub fn approx_bytes(&self) -> usize {
        self.order.len() * std::mem::size_of::<u32>()
            + self.ranges.len() * std::mem::size_of::<Range<usize>>()
            + self.shard_weights.len() * std::mem::size_of::<f64>()
            + self.probe.as_ref().map_or(0, |p| p.approx_bytes())
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// The root candidates of shard `s`, sorted by vertex id (the form
    /// `build_cst_from_roots` requires).
    pub fn chunk_roots(&self, roots: &[VertexId], s: usize) -> Vec<VertexId> {
        let mut chunk: Vec<VertexId> = self.order[self.ranges[s].clone()]
            .iter()
            .map(|&i| roots[i as usize])
            .collect();
        chunk.sort_unstable();
        chunk
    }

    /// Load-imbalance diagnostic: `max / mean` of the planned shard
    /// workloads (1.0 for ≤ 1 shard or zero total).
    pub fn workload_skew(&self) -> f64 {
        if self.shard_weights.len() <= 1 {
            return 1.0;
        }
        let total: f64 = self.shard_weights.iter().sum();
        if total <= 0.0 {
            return 1.0;
        }
        let mean = total / self.shard_weights.len() as f64;
        self.shard_weights.iter().cloned().fold(0.0, f64::max) / mean
    }
}

/// Plans the pipeline's shard decomposition for `roots` under `options` —
/// the entry point `cst::pipeline` calls before spawning workers.
pub fn plan_pipeline_shards(
    q: &QueryGraph,
    g: &Graph,
    tree: &BfsTree,
    options: &PipelineOptions,
    roots: &[VertexId],
) -> ShardPlan {
    let shards = options.resolve_shards(roots.len());
    let provenance = crate::cache::plan_provenance(roots, options);
    if options.planner == ShardPlanner::Contiguous || roots.len() <= 1 || shards <= 1 {
        let mut plan = ShardPlan::contiguous(roots.len(), shards);
        // Keep the requested planner visible even when it degenerated.
        plan.planner = options.planner;
        plan.provenance = provenance;
        return plan;
    }
    let profile = RootProfile::probe(q, g, tree, options.cst, roots);
    let config = PlannerConfig {
        delta_s_hint: options.partition_hint,
        ..PlannerConfig::default()
    };
    let mut plan = plan_shards(options.planner, &profile, shards, &config);
    plan.provenance = provenance;
    // The probe is a first-class artifact: it rides with the plan so shard
    // builds can be seeded from its candidate space instead of re-running
    // the top-down scan per shard (and so a plan cache retains it) —
    // trimmed to the seed-relevant fields first, so caches don't pin the
    // planner-only payloads.
    plan.probe = Some(Arc::new(profile.into_seed_profile()));
    plan
}

/// Plans a shard decomposition from a probed (or synthetic) profile.
/// `shards` is the requested shard count — the cap for [`ShardPlanner::Auto`],
/// exact for the other planners (clamped to the root count).
pub fn plan_shards(
    planner: ShardPlanner,
    profile: &RootProfile,
    shards: usize,
    config: &PlannerConfig,
) -> ShardPlan {
    let n = profile.weights.len();
    let shards = shards.clamp(1, n.max(1));
    let mut plan = match planner {
        ShardPlanner::Contiguous => ShardPlan::contiguous(n, shards),
        ShardPlanner::WorkloadBalanced => {
            let order: Vec<u32> = (0..n as u32).collect();
            assemble(ShardPlanner::WorkloadBalanced, profile, order, shards, None)
        }
        ShardPlanner::OverlapAware => overlap_plan(profile, shards, config),
        ShardPlanner::Auto => auto_plan(profile, shards, config),
    };
    plan.probe_entries = profile.probe_entries;
    plan.partition_ratio = estimated_partition_ratio(profile, config);
    plan
}

/// Builds a plan from an explicit root order: balanced boundaries, optional
/// seam refinement, duplication estimate.
fn assemble(
    planner: ShardPlanner,
    profile: &RootProfile,
    order: Vec<u32>,
    shards: usize,
    refine: Option<&PlannerConfig>,
) -> ShardPlan {
    let mut ranges = balanced_boundaries(&profile.weights, &order, shards);
    if let Some(config) = refine {
        refine_boundaries(profile, &order, &mut ranges, config);
    }
    let shard_weights: Vec<f64> = ranges
        .iter()
        .map(|r| order[r.clone()].iter().map(|&i| profile.weights[i as usize]).sum())
        .collect();
    let estimated_duplication = estimated_duplication(profile, &order, &ranges);
    ShardPlan {
        planner,
        order,
        ranges,
        shard_weights,
        estimated_duplication,
        partition_ratio: 1.0,
        probe_entries: profile.probe_entries,
        provenance: 0,
        probe: None,
    }
}

/// Places `shards` boundaries over `order` by prefix sums of the weights
/// (first-crossing rule): shard `k` closes at the first position whose
/// cumulative weight reaches `total · (k+1) / S`.
///
/// Guarantee: when every weight is ≤ the mean shard workload
/// (`total / S`), every shard's planned workload is < 2× the mean — the
/// prefix at each boundary overshoots its target by less than one weight.
/// Degenerate weight vectors (zero total) fall back to equal-count chunks.
fn balanced_boundaries(weights: &[f64], order: &[u32], shards: usize) -> Vec<Range<usize>> {
    let n = order.len();
    let shards = shards.clamp(1, n.max(1));
    let total: f64 = order.iter().map(|&i| weights[i as usize]).sum();
    if shards <= 1 || n == 0 || total <= 0.0 || !total.is_finite() {
        return shard_ranges(n, shards);
    }
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut cum = 0.0f64;
    for s in 0..shards {
        let remaining_shards = shards - s;
        // Reserve at least one root for every later shard.
        let max_end = n - (remaining_shards - 1);
        let mut end = start;
        if s + 1 == shards {
            end = n;
        } else {
            let target = total * (s + 1) as f64 / shards as f64;
            while end < max_end {
                cum += weights[order[end] as usize];
                end += 1;
                if cum >= target {
                    break;
                }
            }
            end = end.max(start + 1).min(max_end);
        }
        ranges.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, n);
    ranges
}

/// Shared 1-hop frontier between the roots just left and just right of a
/// candidate cut at `pos` (up to `SPAN` roots each side) — the boundary
/// score of the overlap cost model. Low values mean the two sides expand
/// into mostly different interior vertices.
fn boundary_overlap(profile: &RootProfile, order: &[u32], pos: usize) -> usize {
    const SPAN: usize = 4;
    let lo = pos.saturating_sub(SPAN);
    let hi = (pos + SPAN).min(order.len());
    let mut left: Vec<u32> = order[lo..pos]
        .iter()
        .flat_map(|&i| profile.level1(i as usize).iter().copied())
        .collect();
    left.sort_unstable();
    left.dedup();
    let mut right: Vec<u32> = order[pos..hi]
        .iter()
        .flat_map(|&i| profile.level1(i as usize).iter().copied())
        .collect();
    right.sort_unstable();
    right.dedup();
    sorted_intersection_len(&left, &right)
}

fn sorted_intersection_len(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Locally moves each interior boundary to the candidate cut with the
/// smallest [`boundary_overlap`], subject to the balance slack: neither
/// adjacent shard may exceed `slack × mean` planned workload. Ties prefer
/// the balanced position (then the smaller index) for determinism.
fn refine_boundaries(
    profile: &RootProfile,
    order: &[u32],
    ranges: &mut [Range<usize>],
    config: &PlannerConfig,
) {
    if !profile.has_levels() || ranges.len() <= 1 {
        return;
    }
    let n = order.len();
    let shards = ranges.len();
    let total: f64 = order.iter().map(|&i| profile.weights[i as usize]).sum();
    let mean = if total > 0.0 { total / shards as f64 } else { 0.0 };
    let cap = config.balance_slack * mean;
    let window = (n / (4 * shards)).clamp(2, 32);
    let weight_of = |r: Range<usize>| -> f64 {
        order[r].iter().map(|&i| profile.weights[i as usize]).sum()
    };
    for k in 1..shards {
        let b = ranges[k].start;
        let lo = (ranges[k - 1].start + 1).max(b.saturating_sub(window));
        let hi = (ranges[k].end.saturating_sub(1)).min(b + window);
        if lo > hi {
            continue;
        }
        let mut best = b;
        let mut best_score = (boundary_overlap(profile, order, b), 0usize, b);
        for j in lo..=hi {
            if j == b {
                continue;
            }
            if mean > 0.0 {
                let left = weight_of(ranges[k - 1].start..j);
                let right = weight_of(j..ranges[k].end);
                if left > cap || right > cap {
                    continue;
                }
            }
            let score = (boundary_overlap(profile, order, j), b.abs_diff(j), j);
            if score < best_score {
                best_score = score;
                best = j;
            }
        }
        if best != b {
            ranges[k - 1].end = best;
            ranges[k].start = best;
        }
    }
}

/// Estimated interior-candidate duplication of a decomposition: a shard
/// mask is OR-propagated down the probed candidate space (shard `s`
/// reaches candidate `v` iff some candidate parent of `v` carries bit
/// `s`), and every candidate is weighted by the tree-adjacency entries it
/// sources, so the ratio
///
/// ```text
/// Σ_v popcount(mask(v)) · entries(v)  /  Σ_v entries(v)
/// ```
///
/// is the modelled total-entries-built over the sequential build — across
/// **all** levels, not just the 1-hop frontier. One integer sweep over the
/// probe's CSR per candidate plan; refinement pruning and non-tree-edge
/// population are not modelled (they are what makes actual duplication
/// drop below 1 on refinement-heavy queries — the estimate is an upper
/// structure). Shard counts beyond 64 saturate the top mask bit, slightly
/// underestimating very fine decompositions.
pub fn estimated_duplication(
    profile: &RootProfile,
    order: &[u32],
    ranges: &[Range<usize>],
) -> f64 {
    if !profile.has_levels() || ranges.len() <= 1 {
        return 1.0;
    }
    // Root shard masks from the plan.
    let n_roots = order.len();
    let mut masks: Vec<Vec<u64>> = Vec::with_capacity(profile.levels.len() + 1);
    let mut root_masks = vec![0u64; n_roots];
    for (s, r) in ranges.iter().enumerate() {
        let bit = 1u64 << s.min(63);
        for &i in &order[r.clone()] {
            root_masks[i as usize] = bit;
        }
    }
    // Propagate level by level (BFS order ⇒ parents are already done).
    // `masks` is indexed in step with `profile.levels`, root first.
    let level_index: std::collections::HashMap<usize, usize> = profile
        .levels
        .iter()
        .enumerate()
        .map(|(li, l)| (l.vertex, li + 1))
        .collect();
    masks.push(root_masks);
    for level in &profile.levels {
        let parent_masks: &Vec<u64> = if level.parent == profile.root_vertex {
            &masks[0]
        } else {
            &masks[level_index[&level.parent]]
        };
        let mut mine = vec![0u64; level.count];
        for (pi, &m) in parent_masks.iter().enumerate() {
            if m == 0 {
                continue;
            }
            let r = level.offsets[pi] as usize..level.offsets[pi + 1] as usize;
            for &t in &level.targets[r] {
                mine[t as usize] |= m;
            }
        }
        masks.push(mine);
    }
    // Entry weights: each *refinement-surviving* candidate sources its
    // outgoing tree-adjacency lists towards surviving children (its slices
    // of the child levels' CSRs) plus itself — mirroring the sequential
    // build's post-refinement entry count the actual factors divide by.
    let mut duplicated = 0.0f64;
    let mut sequential = 0.0f64;
    for (li, level_masks) in masks.iter().enumerate() {
        let vertex = if li == 0 {
            profile.root_vertex
        } else {
            profile.levels[li - 1].vertex
        };
        let alive = &profile.alive[li];
        for (vi, &m) in level_masks.iter().enumerate() {
            if m == 0 || !alive[vi] {
                continue;
            }
            let mut entries = 1.0f64;
            for (ci, child) in profile.levels.iter().enumerate() {
                if child.parent != vertex {
                    continue;
                }
                let child_alive = &profile.alive[ci + 1];
                let r = child.offsets[vi] as usize..child.offsets[vi + 1] as usize;
                entries += child.targets[r]
                    .iter()
                    .filter(|&&t| child_alive[t as usize])
                    .count() as f64;
            }
            duplicated += m.count_ones() as f64 * entries;
            sequential += entries;
        }
    }
    // Non-tree entries: a shard materialises a sampled candidate edge iff
    // it reaches *both* endpoints — the AND of the endpoint masks.
    for sample in &profile.nontree {
        let (am, bm) = (&masks[sample.a_mask], &masks[sample.b_mask]);
        let (aa, ba) = (&profile.alive[sample.a_mask], &profile.alive[sample.b_mask]);
        let stride = sample.stride as f64;
        for &(i, j) in &sample.pairs {
            if !aa[i as usize] || !ba[j as usize] {
                continue;
            }
            let m = am[i as usize] & bm[j as usize];
            duplicated += m.count_ones() as f64 * stride;
            sequential += stride;
        }
    }
    if sequential <= 0.0 {
        return 1.0;
    }
    (duplicated / sequential).max(1.0)
}

/// Hub-clustered root order: roots sorted by their dominant hub neighbour
/// (then by root index), so that all roots expanding into the same hub
/// land in one contiguous run and the hub's subtree is built once instead
/// of once per shard. Hubless roots (empty frontiers) sort last.
fn cluster_order(profile: &RootProfile) -> Vec<u32> {
    let mut order: Vec<u32> = (0..profile.weights.len() as u32).collect();
    order.sort_by_key(|&i| {
        let hub = profile.hubs[i as usize];
        (hub.is_none(), hub, i)
    });
    order
}

/// The overlap-aware plan at a fixed shard count.
fn overlap_plan(profile: &RootProfile, shards: usize, config: &PlannerConfig) -> ShardPlan {
    if !profile.has_levels() {
        // No frontier information: the best we can do is balance workloads.
        let order: Vec<u32> = (0..profile.weights.len() as u32).collect();
        let mut plan = assemble(ShardPlanner::OverlapAware, profile, order, shards, None);
        plan.planner = ShardPlanner::OverlapAware;
        return plan;
    }
    let order = cluster_order(profile);
    assemble(ShardPlanner::OverlapAware, profile, order, shards, Some(config))
}

/// Scores a candidate plan with the overlapped host model, in units of the
/// sequential build:
///
/// ```text
/// d         = estimated duplication of the plan
/// build_par = d · max(1 / (T_ref · e), max planned shard share)
/// fill      = first planned shard's share · d
/// score     = fill + max(build_par − fill, ρ) + κ · (d − 1)
/// ```
///
/// `ρ` is the partition phase the pipeline overlaps against — per query
/// from [`estimated_partition_ratio`] — and `κ` charges duplicated build
/// work for contending with the consumer thread on the reference socket
/// (from [`PlannerConfig`]).
fn plan_score(plan: &ShardPlan, config: &PlannerConfig, rho: f64) -> f64 {
    let d = plan.estimated_duplication.max(1.0);
    let total: f64 = plan.shard_weights.iter().sum();
    let shards = plan.shard_count().max(1) as f64;
    let max_share = if total > 0.0 {
        plan.shard_weights.iter().cloned().fold(0.0, f64::max) / total
    } else {
        1.0 / shards
    };
    let effective = (config.reference_threads * config.parallel_efficiency).max(1.0);
    // LPT bound: the build wall cannot beat the largest shard on one core.
    let build_par = d * (1.0 / effective).max(max_share);
    let fill = (d / shards).min(build_par);
    fill + (build_par - fill).max(rho) + config.duplication_charge * (d - 1.0)
}

/// Candidate shard counts for auto selection: powers of two up to the cap,
/// plus the cap itself.
fn candidate_shard_counts(cap: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut s = 1usize;
    while s < cap {
        out.push(s);
        s *= 2;
    }
    out.push(cap);
    out
}

/// Auto planning: score every candidate shard count and keep the best plan
/// (ties prefer more shards — more overlap at equal modelled cost). At the
/// winning count, contiguous boundaries are kept when the estimated
/// duplication is below [`PlannerConfig::overlap_fallback`] so flat
/// queries reproduce the contiguous decomposition exactly.
fn auto_plan(profile: &RootProfile, cap: usize, config: &PlannerConfig) -> ShardPlan {
    let n = profile.weights.len();
    let cap = cap.clamp(1, n.max(1));
    let rho = estimated_partition_ratio(profile, config);
    let mut best: Option<(f64, ShardPlan)> = None;
    for s in candidate_shard_counts(cap) {
        let contiguous = {
            let mut p = ShardPlan::contiguous(n, s);
            p.shard_weights = p
                .ranges
                .iter()
                .map(|r| profile.weights[r.clone()].iter().sum())
                .collect();
            p.estimated_duplication = estimated_duplication(profile, &p.order, &p.ranges);
            p
        };
        let candidate = if contiguous.estimated_duplication <= config.overlap_fallback {
            contiguous
        } else {
            let overlap = overlap_plan(profile, s, config);
            if overlap.estimated_duplication < contiguous.estimated_duplication {
                overlap
            } else {
                contiguous
            }
        };
        let score = plan_score(&candidate, config, rho);
        match &best {
            Some((best_score, _)) if *best_score < score => {}
            _ => best = Some((score, candidate)),
        }
    }
    let mut plan = best.expect("at least one candidate shard count").1;
    plan.planner = ShardPlanner::Auto;
    plan.probe_entries = profile.probe_entries;
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(weights: Vec<f64>) -> RootProfile {
        RootProfile::from_weights(weights)
    }

    fn coverage_ok(plan: &ShardPlan, n: usize) {
        let mut seen: Vec<u32> = plan
            .ranges
            .iter()
            .flat_map(|r| plan.order[r.clone()].iter().copied())
            .collect();
        assert_eq!(seen.len(), n, "every root assigned exactly once");
        seen.sort_unstable();
        assert!(seen.iter().enumerate().all(|(i, &v)| i as u32 == v));
        let mut prev_end = 0usize;
        for r in &plan.ranges {
            assert_eq!(r.start, prev_end);
            prev_end = r.end;
        }
        assert_eq!(prev_end, n);
    }

    #[test]
    fn balanced_respects_weights() {
        // One heavy root at the front: equal-count halves would put 5 roots
        // in each shard; balanced puts the heavy root alone.
        let w = vec![100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let plan = plan_shards(
            ShardPlanner::WorkloadBalanced,
            &profile(w),
            2,
            &PlannerConfig::default(),
        );
        coverage_ok(&plan, 10);
        assert_eq!(plan.ranges[0], 0..1);
        assert_eq!(plan.shard_weights, vec![100.0, 9.0]);
    }

    #[test]
    fn balanced_two_x_mean_guarantee() {
        // Uniform-ish weights where max ≤ mean shard workload.
        let w: Vec<f64> = (0..64).map(|i| 1.0 + (i % 5) as f64 * 0.2).collect();
        for shards in [2usize, 3, 4, 8] {
            let plan = plan_shards(
                ShardPlanner::WorkloadBalanced,
                &profile(w.clone()),
                shards,
                &PlannerConfig::default(),
            );
            coverage_ok(&plan, 64);
            let total: f64 = w.iter().sum();
            let mean = total / shards as f64;
            for sw in &plan.shard_weights {
                assert!(*sw < 2.0 * mean, "shard {sw} vs mean {mean} (S={shards})");
            }
        }
    }

    #[test]
    fn zero_workload_roots_fall_back_to_equal_count() {
        let plan = plan_shards(
            ShardPlanner::WorkloadBalanced,
            &profile(vec![0.0; 12]),
            4,
            &PlannerConfig::default(),
        );
        coverage_ok(&plan, 12);
        assert!(plan.ranges.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn single_root_collapses_to_one_shard() {
        for planner in [
            ShardPlanner::Contiguous,
            ShardPlanner::WorkloadBalanced,
            ShardPlanner::OverlapAware,
            ShardPlanner::Auto,
        ] {
            let plan = plan_shards(planner, &profile(vec![3.0]), 8, &PlannerConfig::default());
            assert_eq!(plan.shard_count(), 1);
            coverage_ok(&plan, 1);
            assert_eq!(plan.estimated_duplication, 1.0);
        }
    }

    #[test]
    fn more_shards_than_roots_clamp() {
        let plan = plan_shards(
            ShardPlanner::WorkloadBalanced,
            &profile(vec![1.0, 2.0, 3.0]),
            100,
            &PlannerConfig::default(),
        );
        assert_eq!(plan.shard_count(), 3);
        coverage_ok(&plan, 3);
        assert!(plan.ranges.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn auto_without_frontiers_keeps_the_cap_on_flat_weights() {
        // No frontier info ⇒ duplication 1.0 everywhere ⇒ the score is
        // minimised by the largest shard count (smallest fill).
        let plan = plan_shards(
            ShardPlanner::Auto,
            &profile(vec![1.0; 64]),
            16,
            &PlannerConfig::default(),
        );
        assert_eq!(plan.shard_count(), 16);
        coverage_ok(&plan, 64);
    }

    #[test]
    fn workload_skew_diagnostic() {
        let plan = ShardPlan {
            shard_weights: vec![1.0, 3.0],
            ..ShardPlan::contiguous(2, 2)
        };
        assert!((plan.workload_skew() - 1.5).abs() < 1e-12);
        assert_eq!(ShardPlan::contiguous(0, 1).workload_skew(), 1.0);
    }

    #[test]
    fn partition_ratio_falls_back_without_hint_or_mass() {
        let config = PlannerConfig::default();
        let p = profile(vec![1.0; 8]);
        // No hint: the calibrated constant, exactly the old fixed ρ.
        assert_eq!(
            estimated_partition_ratio(&p, &config),
            config.partition_build_ratio
        );
        // Hint but no probed mass (weights-only profile): same fallback.
        let hinted = PlannerConfig {
            delta_s_hint: Some(1 << 16),
            ..config
        };
        assert_eq!(
            estimated_partition_ratio(&p, &hinted),
            config.partition_build_ratio
        );
    }

    #[test]
    fn partition_ratio_scales_with_candidate_mass() {
        let base = PlannerConfig {
            delta_s_hint: Some(10_000),
            ..PlannerConfig::default()
        };
        let mut p = profile(vec![1.0; 8]);
        // Fits in one partition: only the fits-check share of ρ.
        p.entry_mass = 100.0;
        let fits = estimated_partition_ratio(&p, &base);
        assert!((fits - 0.2 * base.partition_build_ratio).abs() < 1e-12, "{fits}");
        // Hundreds of partitions: saturates above the calibrated constant.
        p.entry_mass = 1e9;
        let split = estimated_partition_ratio(&p, &base);
        assert!((split - 1.5 * base.partition_build_ratio).abs() < 1e-12, "{split}");
        // Monotone in the candidate mass between the clamps.
        let mut prev = 0.0;
        for mass in [1e3, 1e4, 1e5, 1e6, 1e7] {
            p.entry_mass = mass;
            let rho = estimated_partition_ratio(&p, &base);
            assert!(rho >= prev, "ρ must not decrease with mass");
            prev = rho;
        }
    }

    #[test]
    fn plans_carry_the_ratio_they_scored_with() {
        let config = PlannerConfig {
            delta_s_hint: Some(1_000),
            ..PlannerConfig::default()
        };
        let mut p = profile(vec![1.0; 16]);
        p.entry_mass = 5e5;
        let expected = estimated_partition_ratio(&p, &config);
        for planner in [
            ShardPlanner::WorkloadBalanced,
            ShardPlanner::OverlapAware,
            ShardPlanner::Auto,
        ] {
            let plan = plan_shards(planner, &p, 8, &config);
            assert!(
                (plan.partition_ratio - expected).abs() < 1e-12,
                "{planner}: {} vs {}",
                plan.partition_ratio,
                expected
            );
        }
    }

    #[test]
    fn candidate_counts_cover_cap() {
        assert_eq!(candidate_shard_counts(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(candidate_shard_counts(6), vec![1, 2, 4, 6]);
        assert_eq!(candidate_shard_counts(1), vec![1]);
    }
}
