//! Workload estimation (paper Section V-C, Example 4).
//!
//! `W_CST` is the number of embeddings in the CST *ignoring false positives*
//! (non-tree edges and injectivity): a bottom-up dynamic program over the
//! BFS tree. For each candidate `v ∈ C(u)`,
//!
//! ```text
//! c_u(v) = Π_{u_c ∈ children(u)} Σ_{v' ∈ N^u_{u_c}(v)} c_{u_c}(v')
//! ```
//!
//! with `c_u(v) = 1` at leaves, and `W_CST = Σ_{v ∈ C(root)} c_root(v)`.
//!
//! Counts grow multiplicatively (the paper's graphs reach 10^11 embeddings),
//! so the DP runs in `f64`; the scheduler only compares magnitudes.

use crate::structure::Cst;
use graph_core::BfsTree;

/// Result of the workload DP.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEstimate {
    /// `W_CST`: total estimated embeddings in the CST.
    pub total: f64,
    /// `c_root(v)` per root candidate — the per-root workload split used by
    /// workload-aware multi-FPGA assignment (Section VII-E).
    pub per_root_candidate: Vec<f64>,
}

/// Estimates `W_CST` for `cst` under the spanning tree `tree`.
pub fn estimate_workload(cst: &Cst, tree: &BfsTree) -> WorkloadEstimate {
    let n = cst.query_vertex_count();
    // c[u][i] for the i-th candidate of u; filled bottom-up.
    let mut c: Vec<Vec<f64>> = (0..n).map(|_| Vec::new()).collect();

    for u in tree.bottom_up_order() {
        let count = cst.candidate_count(u);
        let children = tree.children(u);
        let mut values = vec![1.0f64; count];
        if !children.is_empty() {
            for (i, value) in values.iter_mut().enumerate() {
                let mut product = 1.0f64;
                for &uc in children {
                    let sum: f64 = cst
                        .neighbors(u, i as u32, uc)
                        .iter()
                        .map(|&j| c[uc.index()][j as usize])
                        .sum();
                    product *= sum;
                    if product == 0.0 {
                        break;
                    }
                }
                *value = product;
            }
        }
        c[u.index()] = values;
    }

    let per_root_candidate = std::mem::take(&mut c[tree.root().index()]);
    WorkloadEstimate {
        total: per_root_candidate.iter().sum(),
        per_root_candidate,
    }
}

impl WorkloadEstimate {
    /// Splits the per-root-candidate workloads into `shards` contiguous
    /// chunks — the sharding rule of `cst::pipeline` — and returns each
    /// shard's total. The ratio `max / mean` of the returned vector is the
    /// pipeline's load-imbalance diagnostic: contiguous root sharding is
    /// exactly what limits `DAF-8`/`CECI-8` scaling on skewed graphs
    /// (Fig. 14 commentary), and the same skew bounds the sharded host
    /// pipeline's build-phase speedup.
    pub fn shard_workloads(&self, shards: usize) -> Vec<f64> {
        crate::pipeline::shard_ranges(self.per_root_candidate.len(), shards)
            .into_iter()
            .map(|r| self.per_root_candidate[r].iter().sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::CsrAdj;
    use graph_core::{Label, QueryGraph, QueryVertexId, VertexId};

    fn qv(x: usize) -> QueryVertexId {
        QueryVertexId::from_index(x)
    }

    fn dv(x: u32) -> VertexId {
        VertexId::new(x)
    }

    /// Reconstruction of the paper's Example 4 (Fig. 4(a)/(d)):
    /// tree u0 → {u1, u2}, u1 → u3;
    /// C(u0)={v1,v2}, C(u1)={v3,v4,v5}, C(u2)={v6,v7,v8}, C(u3)={v9,v10};
    /// edges chosen so that c_{u1} = [1,2,1], c_{u0} = [4,3], W = 7.
    fn example4() -> (QueryGraph, BfsTree, Cst) {
        let q = QueryGraph::new(
            vec![Label::new(0), Label::new(1), Label::new(2), Label::new(3)],
            &[(0, 1), (0, 2), (1, 3)],
        )
        .unwrap();
        let tree = BfsTree::new(&q, qv(0));
        let mk = |offsets: Vec<u32>, targets: Vec<u32>| CsrAdj { offsets, targets };
        let candidates = vec![
            vec![dv(1), dv(2)],
            vec![dv(3), dv(4), dv(5)],
            vec![dv(6), dv(7), dv(8)],
            vec![dv(9), dv(10)],
        ];
        let pairs = vec![
            // u0→u1: v1:{v3,v5}, v2:{v3,v4}
            ((qv(0), qv(1)), mk(vec![0, 2, 4], vec![0, 2, 0, 1])),
            ((qv(1), qv(0)), mk(vec![0, 2, 3, 4], vec![0, 1, 1, 0])),
            // u0→u2: v1:{v6,v8}, v2:{v7}
            ((qv(0), qv(2)), mk(vec![0, 2, 3], vec![0, 2, 1])),
            ((qv(2), qv(0)), mk(vec![0, 1, 2, 3], vec![0, 1, 0])),
            // u1→u3: v3:{v9}, v4:{v9,v10}, v5:{v10}
            ((qv(1), qv(3)), mk(vec![0, 1, 3, 4], vec![0, 0, 1, 1])),
            ((qv(3), qv(1)), mk(vec![0, 2, 4], vec![0, 1, 1, 2])),
        ];
        let cst = Cst::from_parts(4, candidates, pairs);
        (q, tree, cst)
    }

    #[test]
    fn example4_total_is_seven() {
        let (_, tree, cst) = example4();
        let w = estimate_workload(&cst, &tree);
        assert_eq!(w.per_root_candidate, vec![4.0, 3.0]);
        assert_eq!(w.total, 7.0);
    }

    #[test]
    fn empty_candidate_set_gives_zero() {
        let (_, tree, cst) = {
            let (q, tree, _) = example4();
            // CST with an empty leaf candidate set.
            let mk = |offsets: Vec<u32>, targets: Vec<u32>| CsrAdj { offsets, targets };
            let candidates = vec![vec![dv(1)], vec![dv(3)], vec![dv(6)], vec![]];
            let pairs = vec![
                ((qv(0), qv(1)), mk(vec![0, 1], vec![0])),
                ((qv(1), qv(0)), mk(vec![0, 1], vec![0])),
                ((qv(0), qv(2)), mk(vec![0, 1], vec![0])),
                ((qv(2), qv(0)), mk(vec![0, 1], vec![0])),
                ((qv(1), qv(3)), mk(vec![0, 0], vec![])),
                ((qv(3), qv(1)), mk(vec![0], vec![])),
            ];
            (q, tree, Cst::from_parts(4, candidates, pairs))
        };
        let w = estimate_workload(&cst, &tree);
        assert_eq!(w.total, 0.0);
    }

    #[test]
    fn shard_workloads_partition_the_total() {
        let (_, tree, cst) = example4();
        let w = estimate_workload(&cst, &tree);
        assert_eq!(w.shard_workloads(1), vec![w.total]);
        let halves = w.shard_workloads(2);
        assert_eq!(halves.len(), 2);
        assert_eq!(halves.iter().sum::<f64>(), w.total);
        // More shards than root candidates clamps.
        assert_eq!(w.shard_workloads(99).len(), w.per_root_candidate.len());
    }

    #[test]
    fn single_vertex_query_counts_candidates() {
        let q = QueryGraph::new(vec![Label::new(0)], &[]).unwrap();
        let tree = BfsTree::new(&q, qv(0));
        let cst = Cst::from_parts(1, vec![vec![dv(0), dv(1), dv(2)]], vec![]);
        let w = estimate_workload(&cst, &tree);
        assert_eq!(w.total, 3.0);
    }

    #[test]
    fn workload_matches_tree_embedding_count_on_built_cst() {
        // For a *tree* query, W_CST ignoring injectivity must equal the
        // number of homomorphic tree embeddings, which we can count by DP
        // over the data graph directly.
        use crate::construct::build_cst;
        use graph_core::generators::random_labelled_graph;
        let q = QueryGraph::new(
            vec![Label::new(0), Label::new(1), Label::new(1)],
            &[(0, 1), (0, 2)],
        )
        .unwrap();
        let g = random_labelled_graph(30, 0.3, 2, 5);
        let tree = BfsTree::new(&q, qv(0));
        let cst = build_cst(&q, &g, &tree);
        let w = estimate_workload(&cst, &tree);

        // Independent count: for each data vertex with label 0, (number of
        // label-1 neighbours)² — but restricted to CST candidates, which for
        // star queries equals the candidate-filtered sets.
        let mut expected = 0.0f64;
        for (i, &v) in cst.candidates(qv(0)).iter().enumerate() {
            let d1 = cst.neighbors(qv(0), i as u32, qv(1)).len() as f64;
            let d2 = cst.neighbors(qv(0), i as u32, qv(2)).len() as f64;
            let _ = v;
            expected += d1 * d2;
        }
        assert_eq!(w.total, expected);
    }
}
