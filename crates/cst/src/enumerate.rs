//! CST-only embedding enumeration (paper Theorem 1).
//!
//! Given a sound CST, *all* embeddings of `q` in `G` can be computed by
//! traversing only the CST. This module is the CPU-side reference
//! implementation of that traversal — the "basic backtracking subgraph
//! matching algorithm" the host uses for its CPU share (Section V-C), and
//! the correctness oracle the kernel simulator is tested against.

use crate::structure::Cst;
use graph_core::{MatchingOrder, QueryGraph, QueryVertexId, VertexId};

/// Per-depth expansion plan derived from a matching order.
#[derive(Debug, Clone)]
pub struct MatchPlan {
    /// `order[d]` = query vertex matched at depth `d`.
    order: Vec<QueryVertexId>,
    /// For each depth `d ≥ 1`: positions (depths) of all backward neighbours
    /// of `order[d]`, i.e. query neighbours already matched.
    backward: Vec<Vec<usize>>,
}

impl MatchPlan {
    /// Builds the plan for `q` under `order`.
    pub fn new(q: &QueryGraph, order: &MatchingOrder) -> Self {
        let seq = order.as_slice().to_vec();
        let backward = seq
            .iter()
            .map(|&u| {
                order
                    .backward_neighbors(q, u)
                    .iter()
                    .map(|&b| order.position_of(b))
                    .collect()
            })
            .collect();
        MatchPlan {
            order: seq,
            backward,
        }
    }

    /// The query vertex at depth `d`.
    #[inline]
    pub fn vertex_at(&self, d: usize) -> QueryVertexId {
        self.order[d]
    }

    /// Depths of backward neighbours of the vertex at depth `d`.
    #[inline]
    pub fn backward(&self, d: usize) -> &[usize] {
        &self.backward[d]
    }

    /// Number of depths (query vertices).
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the plan is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Counters describing an enumeration run (the software analogue of the
/// kernel's `N` and `M`, Section VI-B).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// Embeddings reported.
    pub embeddings: u64,
    /// Partial results generated (`N`): every candidate expansion attempted.
    pub partials_generated: u64,
    /// Edge-validation tasks performed (`M`): per expansion, one check per
    /// backward non-anchor neighbour.
    pub edge_validations: u64,
    /// Expansions rejected by the visited (injectivity) check.
    pub visited_rejections: u64,
    /// Expansions rejected by edge validation.
    pub edge_rejections: u64,
}

/// Enumerates all embeddings of `q` encoded in `cst` under `order`.
///
/// `on_embedding` receives the embedding **indexed by query vertex id**
/// (`embedding[u] = M(u)`); return `false` from the callback to stop early.
/// Returns run statistics.
pub fn enumerate_embeddings<F>(
    cst: &Cst,
    q: &QueryGraph,
    order: &MatchingOrder,
    mut on_embedding: F,
) -> EnumerationStats
where
    F: FnMut(&[VertexId]) -> bool,
{
    let plan = MatchPlan::new(q, order);
    let mut stats = EnumerationStats::default();
    let n = plan.len();
    if n == 0 {
        return stats;
    }
    // mapping[d] = candidate index (into C(order[d])) chosen at depth d.
    let mut mapping = vec![0u32; n];
    // mapped[d] = data vertex chosen at depth d (for injectivity checks).
    let mut mapped = vec![VertexId::new(0); n];
    // embedding[u] = data vertex assigned to query vertex u.
    let mut embedding = vec![VertexId::new(0); n];

    let root = plan.vertex_at(0);
    let root_count = cst.candidate_count(root) as u32;
    let mut stopped = false;
    for i in 0..root_count {
        if stopped {
            break;
        }
        stats.partials_generated += 1;
        mapping[0] = i;
        mapped[0] = cst.candidate(root, i);
        embedding[root.index()] = mapped[0];
        stopped = !descend(
            cst,
            &plan,
            1,
            &mut mapping,
            &mut mapped,
            &mut embedding,
            &mut stats,
            &mut on_embedding,
        );
    }
    stats
}

/// Counts all embeddings (convenience wrapper).
pub fn count_embeddings(cst: &Cst, q: &QueryGraph, order: &MatchingOrder) -> u64 {
    enumerate_embeddings(cst, q, order, |_| true).embeddings
}

/// Recursive expansion; returns `false` if the callback requested a stop.
#[allow(clippy::too_many_arguments)]
fn descend<F>(
    cst: &Cst,
    plan: &MatchPlan,
    depth: usize,
    mapping: &mut [u32],
    mapped: &mut [VertexId],
    embedding: &mut [VertexId],
    stats: &mut EnumerationStats,
    on_embedding: &mut F,
) -> bool
where
    F: FnMut(&[VertexId]) -> bool,
{
    if depth == plan.len() {
        stats.embeddings += 1;
        return on_embedding(embedding);
    }
    let u = plan.vertex_at(depth);
    let backward = plan.backward(depth);
    debug_assert!(!backward.is_empty(), "connected order has an anchor");

    // Anchor: the backward neighbour with the smallest adjacency list from
    // its chosen candidate (cheapest generator, same as the kernel picking
    // the parent list; any anchor is correct since the CST stores adjacency
    // for every query edge in both directions).
    let (anchor_pos, anchor_list) = backward
        .iter()
        .map(|&bd| {
            let bu = plan.vertex_at(bd);
            let list = cst.neighbors(bu, mapping[bd], u);
            (bd, list)
        })
        .min_by_key(|(_, list)| list.len())
        .expect("backward non-empty");

    for &j in anchor_list {
        stats.partials_generated += 1;
        let v = cst.candidate(u, j);
        // Visited validation (injectivity).
        if mapped[..depth].contains(&v) {
            stats.visited_rejections += 1;
            continue;
        }
        // Edge validation against every other backward neighbour.
        let mut ok = true;
        for &bd in backward {
            if bd == anchor_pos {
                continue;
            }
            stats.edge_validations += 1;
            let bu = plan.vertex_at(bd);
            if !cst.has_candidate_edge(bu, mapping[bd], u, j) {
                ok = false;
                stats.edge_rejections += 1;
                break;
            }
        }
        if !ok {
            continue;
        }
        mapping[depth] = j;
        mapped[depth] = v;
        embedding[u.index()] = v;
        if !descend(
            cst,
            plan,
            depth + 1,
            mapping,
            mapped,
            embedding,
            stats,
            on_embedding,
        ) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_cst, build_cst_with_stats, CstOptions};
    use graph_core::generators::random_labelled_graph;
    use graph_core::{BfsTree, GraphBuilder, Label};

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn qv(x: usize) -> QueryVertexId {
        QueryVertexId::from_index(x)
    }

    /// Paper Example 1: the Fig. 1 query has exactly 2 embeddings in the
    /// Fig. 1 data graph.
    #[test]
    fn fig1_has_two_embeddings() {
        let q = QueryGraph::new(
            vec![l(0), l(1), l(2), l(3)],
            &[(0, 1), (0, 2), (1, 2), (2, 3)],
        )
        .unwrap();
        let mut b = GraphBuilder::new();
        let labels = [
            l(9),
            l(0),
            l(0),
            l(2),
            l(1),
            l(2),
            l(1),
            l(2),
            l(3),
            l(3),
            l(3),
            l(4),
            l(4),
        ];
        for &lab in &labels {
            b.add_vertex(lab);
        }
        for (a, bb) in [
            (1, 4),
            (1, 3),
            (2, 6),
            (2, 5),
            (2, 7),
            (4, 3),
            (6, 5),
            (6, 7),
            (3, 9),
            (5, 10),
            (8, 1),
            (7, 11),
            (9, 12),
        ] {
            b.add_edge(VertexId::new(a), VertexId::new(bb)).unwrap();
        }
        let g = b.build();
        let tree = BfsTree::new(&q, qv(0));
        let cst = build_cst(&q, &g, &tree);
        let order = MatchingOrder::new(&q, vec![qv(0), qv(1), qv(2), qv(3)]).unwrap();
        let mut found = Vec::new();
        enumerate_embeddings(&cst, &q, &order, |m| {
            found.push(m.to_vec());
            true
        });
        // {(u0,v1),(u1,v4),(u2,v3),(u3,v9)} and {(u0,v2),(u1,v6),(u2,v5),(u3,v10)}.
        assert_eq!(found.len(), 2);
        let v = VertexId::new;
        assert!(found.contains(&vec![v(1), v(4), v(3), v(9)]));
        assert!(found.contains(&vec![v(2), v(6), v(5), v(10)]));
    }

    /// Theorem 1: results must be identical for every sound CST
    /// configuration and every connected matching order.
    #[test]
    fn counts_invariant_across_options_and_orders() {
        let q = QueryGraph::new(
            vec![l(0), l(1), l(0), l(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        )
        .unwrap();
        let g = random_labelled_graph(35, 0.2, 2, 23);
        let tree = BfsTree::new(&q, qv(0));
        let mut counts = std::collections::HashSet::new();
        for opts in [CstOptions::default(), CstOptions::minimal()] {
            let (cst, _) = build_cst_with_stats(&q, &g, &tree, opts);
            for order in graph_core::all_connected_orders(&q, qv(0)) {
                counts.insert(count_embeddings(&cst, &q, &order));
            }
        }
        assert_eq!(counts.len(), 1, "counts differ: {counts:?}");
    }

    #[test]
    fn early_stop_via_callback() {
        let q = QueryGraph::new(vec![l(0), l(1)], &[(0, 1)]).unwrap();
        let g = random_labelled_graph(60, 0.4, 2, 2);
        let tree = BfsTree::new(&q, qv(0));
        let cst = build_cst(&q, &g, &tree);
        let order = MatchingOrder::new(&q, vec![qv(0), qv(1)]).unwrap();
        let total = count_embeddings(&cst, &q, &order);
        assert!(total > 3);
        let mut seen = 0;
        enumerate_embeddings(&cst, &q, &order, |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn injectivity_enforced() {
        // Query: two vertices of the same label joined to a middle vertex.
        // Data: middle vertex with ONE same-labelled neighbour (plus an
        // unrelated neighbour so the degree filter passes) — the only
        // candidate would have to be used twice, so there is no embedding.
        let q = QueryGraph::new(vec![l(1), l(0), l(1)], &[(0, 1), (1, 2)]).unwrap();
        let mut b = GraphBuilder::new();
        let x = b.add_vertex(l(1));
        let m = b.add_vertex(l(0));
        let y = b.add_vertex(l(2));
        b.add_edge(x, m).unwrap();
        b.add_edge(m, y).unwrap();
        let g = b.build();
        let tree = BfsTree::new(&q, qv(1));
        // NLF would already prune m (it needs two l1 neighbours); disable it
        // so the *enumerator's* visited check is what rejects the reuse.
        let opts = CstOptions {
            use_nlf: false,
            refine_passes: 1,
        };
        let (cst, _) = build_cst_with_stats(&q, &g, &tree, opts);
        let order = MatchingOrder::new(&q, vec![qv(1), qv(0), qv(2)]).unwrap();
        let stats = enumerate_embeddings(&cst, &q, &order, |_| true);
        assert_eq!(stats.embeddings, 0);
        assert!(stats.visited_rejections > 0);
    }

    #[test]
    fn stats_track_generated_and_validated() {
        let q = QueryGraph::new(vec![l(0), l(1), l(0)], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let g = random_labelled_graph(30, 0.3, 2, 8);
        let tree = BfsTree::new(&q, qv(0));
        let cst = build_cst(&q, &g, &tree);
        let order = MatchingOrder::new(&q, vec![qv(0), qv(1), qv(2)]).unwrap();
        let stats = enumerate_embeddings(&cst, &q, &order, |_| true);
        // The triangle's closing edge forces edge validations.
        assert!(stats.partials_generated >= stats.embeddings);
        if stats.embeddings > 0 {
            assert!(stats.edge_validations > 0);
        }
    }
}
