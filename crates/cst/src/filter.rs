//! Local candidate filters ("local features" of Algorithm 1, lines 2/4).
//!
//! A data vertex `v` is a candidate for query vertex `u` only if:
//! 1. `l_G(v) = l_q(u)` (label filter);
//! 2. `d_G(v) ≥ d_q(u)` (degree filter);
//! 3. for every label `l` among `u`'s neighbours, `v` has at least as many
//!    neighbours with label `l` as `u` does (NLF, neighbour label frequency).
//!
//! These are the standard filters used by CFL/CECI/DAF, which the paper's
//! CST construction follows.

use graph_core::{Graph, QueryGraph, QueryVertexId, VertexId};

/// Precomputed per-query-vertex filter.
#[derive(Debug, Clone)]
pub struct CandidateFilter {
    degree: u32,
    label: graph_core::Label,
    /// Sorted `(label, min_count)` requirements.
    nlf: Vec<(graph_core::Label, u32)>,
}

impl CandidateFilter {
    /// Builds the filter for query vertex `u`.
    pub fn new(q: &QueryGraph, u: QueryVertexId) -> Self {
        CandidateFilter {
            degree: q.degree(u),
            label: q.label(u),
            nlf: q.neighbor_label_counts(u),
        }
    }

    /// Whether `v` passes label and degree checks (cheap pre-filter).
    #[inline]
    pub fn passes_basic(&self, g: &Graph, v: VertexId) -> bool {
        g.label(v) == self.label && g.degree(v) >= self.degree
    }

    /// Whether `v` passes the full filter including NLF. `scratch` is a
    /// reusable buffer for the per-vertex neighbour label counts.
    pub fn passes(&self, g: &Graph, v: VertexId, scratch: &mut Vec<(graph_core::Label, u32)>) -> bool {
        if !self.passes_basic(g, v) {
            return false;
        }
        if self.nlf.len() <= 1 {
            // Single-label neighbourhoods are already implied by the degree
            // filter when the query vertex has only one neighbour label and
            // the data vertex label matched — but mixed data neighbourhoods
            // still need the count check, so only skip when trivially true.
            if self.nlf.is_empty() {
                return true;
            }
        }
        g.neighbor_label_counts(v, scratch);
        let mut i = 0;
        for &(need_label, need_count) in &self.nlf {
            // Both lists are sorted by label: advance a merged cursor.
            while i < scratch.len() && scratch[i].0 < need_label {
                i += 1;
            }
            if i >= scratch.len() || scratch[i].0 != need_label || scratch[i].1 < need_count {
                return false;
            }
        }
        true
    }

    /// Collects all candidates of `u` from the graph's label index.
    pub fn candidates(&self, g: &Graph) -> Vec<VertexId> {
        let mut scratch = Vec::new();
        g.vertices_with_label(self.label)
            .iter()
            .copied()
            .filter(|&v| self.passes(g, v, &mut scratch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::{GraphBuilder, Label};

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    /// Data graph: hub h(l0) connected to two l1 and one l2 vertex;
    /// lone vertex a(l0) connected to one l1 vertex.
    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        let h = b.add_vertex(l(0));
        let a = b.add_vertex(l(0));
        let x1 = b.add_vertex(l(1));
        let x2 = b.add_vertex(l(1));
        let y = b.add_vertex(l(2));
        let x3 = b.add_vertex(l(1));
        b.add_edge(h, x1).unwrap();
        b.add_edge(h, x2).unwrap();
        b.add_edge(h, y).unwrap();
        b.add_edge(a, x3).unwrap();
        b.build()
    }

    /// Query: u0(l0) adjacent to two l1 vertices.
    fn query_two_l1() -> QueryGraph {
        QueryGraph::new(vec![l(0), l(1), l(1)], &[(0, 1), (0, 2)]).unwrap()
    }

    #[test]
    fn nlf_rejects_undersupplied_neighbourhoods() {
        let g = graph();
        let q = query_two_l1();
        let f = CandidateFilter::new(&q, QueryVertexId::new(0));
        let cands = f.candidates(&g);
        // Only the hub has two l1 neighbours; `a` has one.
        assert_eq!(cands, vec![VertexId::new(0)]);
    }

    #[test]
    fn degree_filter() {
        let g = graph();
        let q = QueryGraph::new(vec![l(1), l(0), l(0)], &[(0, 1), (0, 2)]).unwrap();
        let f = CandidateFilter::new(&q, QueryVertexId::new(0));
        // l1 vertices all have degree 1 < 2 → no candidates.
        assert!(f.candidates(&g).is_empty());
    }

    #[test]
    fn label_filter() {
        let g = graph();
        let q = QueryGraph::new(vec![l(2), l(0)], &[(0, 1)]).unwrap();
        let f = CandidateFilter::new(&q, QueryVertexId::new(0));
        assert_eq!(f.candidates(&g), vec![VertexId::new(4)]);
    }

    #[test]
    fn passes_basic_is_a_superset_of_passes() {
        let g = graph();
        let q = query_two_l1();
        let f = CandidateFilter::new(&q, QueryVertexId::new(0));
        let mut scratch = Vec::new();
        for v in g.vertices() {
            if f.passes(&g, v, &mut scratch) {
                assert!(f.passes_basic(&g, v));
            }
        }
    }
}
