//! CST construction (paper Algorithm 1).
//!
//! Three phases, mirroring the paper:
//! 1. **Top-down construction** (lines 3-7): candidates of each query vertex
//!    are computed by local features (label / degree, optionally NLF) and
//!    restricted to vertices adjacent to at least one candidate of the
//!    BFS-tree parent.
//! 2. **Bottom-up refinement** (lines 8-14): a candidate `v` of `u` is valid
//!    only if, for every child `u_c` of `u` in `t_q`, `v` has at least one
//!    neighbour among `C(u_c)`. Invalid candidates are removed.
//! 3. **Non-tree edges** (lines 15-19): adjacency lists are populated for
//!    every query edge (tree *and* non-tree) between the surviving sets —
//!    this is what makes the CST a *complete* search space (unlike CPI) and
//!    therefore partitionable (Section V-A, Remark).
//!
//! The paper's Remark stresses the trade-off between search-space size and
//! construction cost (the FPGA is idle while the CPU builds the CST), so the
//! pruning strength is configurable via [`CstOptions`]: the benches ablate
//! NLF and refinement against end-to-end time.

use crate::filter::CandidateFilter;
use crate::structure::{CsrAdj, Cst};
use graph_core::{BfsTree, Graph, QueryGraph, VertexId};

/// Pruning knobs for CST construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CstOptions {
    /// Apply the neighbour-label-frequency filter on top of label/degree.
    pub use_nlf: bool,
    /// Number of bottom-up refinement passes. The paper's CST runs one
    /// (equivalent to the first two of CS's three refinements, per the
    /// Remark in Section V-A); DAF's CS corresponds to more passes.
    pub refine_passes: u32,
}

impl Default for CstOptions {
    fn default() -> Self {
        CstOptions {
            use_nlf: true,
            refine_passes: 1,
        }
    }
}

impl CstOptions {
    /// Label/degree filtering only, no refinement — the weakest sound
    /// configuration (what the paper's Fig. 3(b) illustration shows).
    pub fn minimal() -> Self {
        CstOptions {
            use_nlf: false,
            refine_passes: 0,
        }
    }

    /// DAF-style candidate space: full filters plus repeated refinement.
    pub fn daf_cs() -> Self {
        CstOptions {
            use_nlf: true,
            refine_passes: 3,
        }
    }
}

/// Statistics of a CST construction run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Candidates right after top-down construction, per query vertex.
    pub candidates_before_refine: Vec<usize>,
    /// Candidates removed by the bottom-up refinement, per query vertex.
    pub removed_by_refine: Vec<usize>,
    /// Total directed adjacency entries in the final CST.
    pub adjacency_entries: usize,
    /// Neighbour visits (each a candidate filter evaluation) of the
    /// top-down pass — the phase-1 scan work, in the same unit as
    /// `RootProfile::probe_entries`. **0 for seeded builds**
    /// ([`build_cst_seeded`]), which restrict a memoised candidate space
    /// instead of re-scanning the graph.
    pub topdown_entries: usize,
}

/// Builds the CST of `q` over `g` with default (strongest) pruning.
pub fn build_cst(q: &QueryGraph, g: &Graph, tree: &BfsTree) -> Cst {
    build_cst_with_stats(q, g, tree, CstOptions::default()).0
}

/// Computes the root candidate set (phase 1 for the root only): every data
/// vertex passing the root's local filters, sorted by vertex id. This is the
/// sharding axis of the parallel pipeline (`cst::pipeline`): splitting the
/// returned list into contiguous chunks and calling
/// [`build_cst_from_roots`] per chunk yields CSTs whose search spaces are
/// disjoint at the root.
pub fn root_candidates(
    q: &QueryGraph,
    g: &Graph,
    tree: &BfsTree,
    options: CstOptions,
) -> Vec<VertexId> {
    let root = tree.root();
    let filter = CandidateFilter::new(q, root);
    let mut scratch = Vec::new();
    let mut cands: Vec<VertexId> = g
        .vertices_with_label(q.label(root))
        .iter()
        .copied()
        .filter(|&v| {
            if options.use_nlf {
                filter.passes(g, v, &mut scratch)
            } else {
                filter.passes_basic(g, v)
            }
        })
        .collect();
    cands.sort_unstable();
    cands
}

/// [`build_cst`] with explicit options and construction statistics.
pub fn build_cst_with_stats(
    q: &QueryGraph,
    g: &Graph,
    tree: &BfsTree,
    options: CstOptions,
) -> (Cst, BuildStats) {
    let roots = root_candidates(q, g, tree, options);
    build_cst_from_roots(q, g, tree, options, roots)
}

/// The memoised phase-1 output handed to a seeded build: per query vertex,
/// exactly the sorted candidate list the top-down pass of
/// [`build_cst_from_roots`] would produce for the corresponding root chunk.
/// Produced by `RootProfile::seed_chunks` (the planner's probe already ran
/// the global top-down pass; restricting its candidate space to one shard's
/// roots is an integer sweep, not a filtered graph scan).
#[derive(Debug, Clone, Default)]
pub struct TopDownSeed {
    /// Sorted, deduplicated candidates per query vertex (indexed by query
    /// vertex index; the tree root's entry is the shard's root chunk).
    pub candidates: Vec<Vec<VertexId>>,
}

/// Builds the CST whose root candidate set is exactly `roots` (which must be
/// sorted, deduplicated, and a subset of [`root_candidates`]). Phases 2-3 of
/// Algorithm 1 run unchanged; only the root seeding differs. With the full
/// root candidate list this is exactly [`build_cst_with_stats`]; with a
/// chunk of it, the result is the shard CST of the parallel pipeline.
pub fn build_cst_from_roots(
    q: &QueryGraph,
    g: &Graph,
    tree: &BfsTree,
    options: CstOptions,
    roots: Vec<VertexId>,
) -> (Cst, BuildStats) {
    let n = q.vertex_count();
    let filters: Vec<CandidateFilter> = q
        .vertices()
        .map(|u| CandidateFilter::new(q, u))
        .collect();

    // Membership bitmaps over data vertices, one per query vertex.
    let words = g.vertex_count().div_ceil(64);
    let mut member: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
    let mut candidates: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut topdown_entries = 0usize;

    let set = |bits: &mut [u64], v: VertexId| bits[v.index() / 64] |= 1 << (v.index() % 64);
    let test = |bits: &[u64], v: VertexId| bits[v.index() / 64] >> (v.index() % 64) & 1 == 1;

    let mut scratch = Vec::new();
    let passes = |filter: &CandidateFilter, g: &Graph, v: VertexId, scratch: &mut Vec<_>| {
        if options.use_nlf {
            filter.passes(g, v, scratch)
        } else {
            filter.passes_basic(g, v)
        }
    };

    // --- Phase 1: top-down construction (root seeded by the caller). ---
    let root = tree.root();
    {
        debug_assert!(roots.windows(2).all(|w| w[0] < w[1]), "roots sorted+dedup");
        for &v in &roots {
            set(&mut member[root.index()], v);
        }
        candidates[root.index()] = roots;
    }
    for &u in &tree.bfs_order()[1..] {
        let up = tree.parent(u).expect("non-root has a parent");
        let filter = &filters[u.index()];
        // Take u's bitmap out so the parent candidate list can stay borrowed.
        let mut member_u = std::mem::take(&mut member[u.index()]);
        let mut cands = Vec::new();
        for &vp in &candidates[up.index()] {
            for &w in g.neighbors(vp) {
                topdown_entries += 1;
                if !test(&member_u, w) && passes(filter, g, w, &mut scratch) {
                    set(&mut member_u, w);
                    cands.push(w);
                }
            }
        }
        cands.sort_unstable();
        member[u.index()] = member_u;
        candidates[u.index()] = cands;
    }
    refine_and_materialise(q, g, tree, options, candidates, member, topdown_entries)
}

/// Builds the CST from a precomputed phase-1 candidate space: phases 2-3 of
/// Algorithm 1 (bottom-up refinement, adjacency materialisation for every
/// query edge) run unchanged on `seed.candidates` — exactly what the
/// top-down pass of [`build_cst_from_roots`] would have produced, so the
/// result is **bit-identical** to the unseeded build
/// (`tests/prop_seeded_build.rs`). The seed must come from a probe of the
/// *same* `(q, g, tree, options)` (the pipeline checks the plan's
/// provenance fingerprint before seeding); note that the adjacency — tree
/// and non-tree edges alike — is re-materialised from the graph here: the
/// probe's stride-sampled non-tree edge *samples* are a counting estimate
/// and are never used as exact candidates.
pub fn build_cst_seeded(
    q: &QueryGraph,
    g: &Graph,
    tree: &BfsTree,
    options: CstOptions,
    seed: TopDownSeed,
) -> (Cst, BuildStats) {
    let n = q.vertex_count();
    assert_eq!(seed.candidates.len(), n, "seed covers every query vertex");
    let words = g.vertex_count().div_ceil(64);
    let mut member: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
    let set = |bits: &mut [u64], v: VertexId| bits[v.index() / 64] |= 1 << (v.index() % 64);
    for (u, cands) in seed.candidates.iter().enumerate() {
        debug_assert!(cands.windows(2).all(|w| w[0] < w[1]), "seed sorted+dedup");
        for &v in cands {
            set(&mut member[u], v);
        }
    }
    refine_and_materialise(q, g, tree, options, seed.candidates, member, 0)
}

/// Phases 2-3 of Algorithm 1, shared by the scanning and seeded entry
/// points: bottom-up refinement over the phase-1 candidate sets (with their
/// membership bitmaps), then adjacency materialisation for every directed
/// query edge.
fn refine_and_materialise(
    q: &QueryGraph,
    g: &Graph,
    tree: &BfsTree,
    options: CstOptions,
    mut candidates: Vec<Vec<VertexId>>,
    mut member: Vec<Vec<u64>>,
    topdown_entries: usize,
) -> (Cst, BuildStats) {
    let n = q.vertex_count();
    let mut stats = BuildStats {
        candidates_before_refine: vec![0; n],
        removed_by_refine: vec![0; n],
        adjacency_entries: 0,
        topdown_entries,
    };
    for (u, cands) in candidates.iter().enumerate() {
        stats.candidates_before_refine[u] = cands.len();
    }

    let set = |bits: &mut [u64], v: VertexId| bits[v.index() / 64] |= 1 << (v.index() % 64);
    let test = |bits: &[u64], v: VertexId| bits[v.index() / 64] >> (v.index() % 64) & 1 == 1;

    // --- Phase 2: bottom-up refinement (the paper runs a single pass;
    //     extra passes approximate DAF's CS). ---
    for _ in 0..options.refine_passes {
        for u in tree.bottom_up_order() {
            let children = tree.children(u);
            if children.is_empty() {
                continue;
            }
            let ui = u.index();
            let mut cands = std::mem::take(&mut candidates[ui]);
            let before = cands.len();
            cands.retain(|&v| {
                children.iter().all(|&uc| {
                    g.neighbors(v).iter().any(|&w| test(&member[uc.index()], w))
                })
            });
            stats.removed_by_refine[ui] = before - cands.len();
            // Rebuild the bitmap for u after removals.
            member[ui].iter_mut().for_each(|w| *w = 0);
            for &v in &cands {
                set(&mut member[ui], v);
            }
            candidates[ui] = cands;
        }
    }

    // --- Phase 3: adjacency for every directed query edge. ---
    let mut pairs = Vec::with_capacity(q.edge_count() * 2);
    for u in q.vertices() {
        for un in q.neighbors(u) {
            let adj = build_directed_adjacency(
                g,
                &candidates[u.index()],
                &candidates[un.index()],
                &member[un.index()],
            );
            stats.adjacency_entries += adj.targets.len();
            pairs.push(((u, un), adj));
        }
    }

    (Cst::from_parts(n, candidates, pairs), stats)
}

/// Builds the CSR adjacency `N^u_{u'}` from sorted candidate sets, using the
/// target-side membership bitmap to filter and a binary search to re-index.
fn build_directed_adjacency(
    g: &Graph,
    sources: &[VertexId],
    targets: &[VertexId],
    target_member: &[u64],
) -> CsrAdj {
    let test =
        |bits: &[u64], v: VertexId| bits[v.index() / 64] >> (v.index() % 64) & 1 == 1;
    let mut offsets = Vec::with_capacity(sources.len() + 1);
    let mut out_targets = Vec::new();
    offsets.push(0u32);
    for &v in sources {
        for &w in g.neighbors(v) {
            if test(target_member, w) {
                let j = targets
                    .binary_search(&w)
                    .expect("bitmap member must be in candidate vec") as u32;
                out_targets.push(j);
            }
        }
        // Graph adjacency is sorted by vertex id and `targets` is sorted, so
        // the produced indices are already ascending.
        offsets.push(out_targets.len() as u32);
    }
    CsrAdj {
        offsets,
        targets: out_targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::{GraphBuilder, Label, QueryVertexId};

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn qv(x: usize) -> QueryVertexId {
        QueryVertexId::from_index(x)
    }

    fn dv(x: u32) -> VertexId {
        VertexId::new(x)
    }

    /// The paper's running example: Fig. 1 query + data graph.
    /// Labels: A=0, B=1, C=2, D=3, E=4.
    fn fig1() -> (QueryGraph, Graph, BfsTree) {
        let q = QueryGraph::new(
            vec![l(0), l(1), l(2), l(3)],
            &[(0, 1), (0, 2), (1, 2), (2, 3)],
        )
        .unwrap();
        // Data graph of Fig. 1(b): v1,v2 (A); v4,v6 (B); v3,v5,v7 (C);
        // v8,v9,v10 (D); v11,v12 (E). Index 0 is an unused decoy.
        let mut b = GraphBuilder::new();
        let labels = [
            l(9),
            l(0), // v1 A
            l(0), // v2 A
            l(2), // v3 C
            l(1), // v4 B
            l(2), // v5 C
            l(1), // v6 B
            l(2), // v7 C
            l(3), // v8 D
            l(3), // v9 D
            l(3), // v10 D
            l(4), // v11 E
            l(4), // v12 E
        ];
        for &lab in &labels {
            b.add_vertex(lab);
        }
        let edges = [
            (1, 4),
            (1, 3),
            (2, 6),
            (2, 5),
            (2, 7),
            (4, 3),
            (6, 5),
            (6, 7),
            (3, 9),
            (5, 10),
            (8, 1),
            (7, 11),
            (9, 12),
        ];
        for (a, bb) in edges {
            b.add_edge(dv(a), dv(bb)).unwrap();
        }
        let g = b.build();
        let tree = BfsTree::new(&q, qv(0));
        (q, g, tree)
    }

    #[test]
    fn fig1_minimal_options_match_fig3_illustration() {
        // With label/degree filtering only and no refinement, the CST matches
        // the paper's Fig. 3(b) exactly — including the false-positive v7,
        // which has no D-labelled neighbour.
        let (q, g, tree) = fig1();
        let (cst, _) = build_cst_with_stats(&q, &g, &tree, CstOptions::minimal());
        cst.validate(&q).unwrap();
        assert_eq!(cst.candidates(qv(0)), &[dv(1), dv(2)]);
        assert_eq!(cst.candidates(qv(1)), &[dv(4), dv(6)]);
        assert_eq!(cst.candidates(qv(2)), &[dv(3), dv(5), dv(7)]);
        assert_eq!(cst.candidates(qv(3)), &[dv(9), dv(10)]);
        // Example 2: N^{u1}_{u2}(v6) = {v5, v7}.
        let i = cst.candidate_index(qv(1), dv(6)).unwrap();
        let ns: Vec<VertexId> = cst
            .neighbors(qv(1), i, qv(2))
            .iter()
            .map(|&j| cst.candidate(qv(2), j))
            .collect();
        assert_eq!(ns, vec![dv(5), dv(7)]);
        // Example 2: N^{u2}_{u3}(v3) = {v9}.
        let i3 = cst.candidate_index(qv(2), dv(3)).unwrap();
        let ns3: Vec<VertexId> = cst
            .neighbors(qv(2), i3, qv(3))
            .iter()
            .map(|&j| cst.candidate(qv(3), j))
            .collect();
        assert_eq!(ns3, vec![dv(9)]);
    }

    #[test]
    fn fig1_default_options_prune_v7() {
        // Full pruning removes v7 (no D neighbour ⇒ fails both NLF and the
        // bottom-up refinement). The CST stays sound: v7 is in no embedding.
        let (q, g, tree) = fig1();
        let (cst, stats) = build_cst_with_stats(&q, &g, &tree, CstOptions::default());
        cst.validate(&q).unwrap();
        assert_eq!(cst.candidates(qv(2)), &[dv(3), dv(5)]);
        assert_eq!(cst.candidates(qv(3)), &[dv(9), dv(10)]);
        assert!(stats.adjacency_entries > 0);
    }

    #[test]
    fn refinement_removes_leafless_candidates() {
        // Path query A-B-C; data has an A-B pair without any C below it.
        let q = QueryGraph::new(vec![l(0), l(1), l(2)], &[(0, 1), (1, 2)]).unwrap();
        let mut b = GraphBuilder::new();
        let a1 = b.add_vertex(l(0));
        let b1 = b.add_vertex(l(1));
        let c1 = b.add_vertex(l(2));
        let a2 = b.add_vertex(l(0));
        let b2 = b.add_vertex(l(1)); // b2 has no C neighbour
        b.add_edge(a1, b1).unwrap();
        b.add_edge(b1, c1).unwrap();
        b.add_edge(a2, b2).unwrap();
        let g = b.build();
        let tree = BfsTree::new(&q, qv(0));
        let opts = CstOptions {
            use_nlf: false,
            refine_passes: 1,
        };
        let (cst, stats) = build_cst_with_stats(&q, &g, &tree, opts);
        // b2 never enters C(u1): the degree filter rejects it top-down.
        assert_eq!(cst.candidates(qv(1)), &[b1]);
        // a2's only B neighbour is gone, so bottom-up refinement removes a2.
        assert_eq!(cst.candidates(qv(0)), &[a1]);
        assert_eq!(stats.removed_by_refine.iter().sum::<usize>(), 1);
    }

    #[test]
    fn soundness_every_embedding_is_in_cst() {
        // Random graph; check the soundness constraint (Section V-A) by
        // brute-force triangle enumeration over G.
        use graph_core::generators::random_labelled_graph;
        let q = QueryGraph::new(vec![l(0), l(1), l(0)], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let g = random_labelled_graph(40, 0.25, 2, 17);
        let tree = BfsTree::new(&q, qv(0));
        for opts in [CstOptions::default(), CstOptions::minimal()] {
            let (cst, _) = build_cst_with_stats(&q, &g, &tree, opts);
            cst.validate(&q).unwrap();
            for a in g.vertices() {
                for bb in g.vertices() {
                    for c in g.vertices() {
                        let distinct = a != bb && bb != c && a != c;
                        if distinct
                            && g.label(a) == l(0)
                            && g.label(bb) == l(1)
                            && g.label(c) == l(0)
                            && g.has_edge(a, bb)
                            && g.has_edge(bb, c)
                            && g.has_edge(a, c)
                        {
                            assert!(cst.candidate_index(qv(0), a).is_some());
                            assert!(cst.candidate_index(qv(1), bb).is_some());
                            assert!(cst.candidate_index(qv(2), c).is_some());
                            // The candidate edges must be present too.
                            let ia = cst.candidate_index(qv(0), a).unwrap();
                            let ib = cst.candidate_index(qv(1), bb).unwrap();
                            let ic = cst.candidate_index(qv(2), c).unwrap();
                            assert!(cst.has_candidate_edge(qv(0), ia, qv(1), ib));
                            assert!(cst.has_candidate_edge(qv(1), ib, qv(2), ic));
                            assert!(cst.has_candidate_edge(qv(0), ia, qv(2), ic));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_when_label_missing() {
        let q = QueryGraph::new(vec![l(7), l(1)], &[(0, 1)]).unwrap();
        let mut b = GraphBuilder::new();
        let x = b.add_vertex(l(0));
        let y = b.add_vertex(l(1));
        b.add_edge(x, y).unwrap();
        let g = b.build();
        let tree = BfsTree::new(&q, qv(0));
        let cst = build_cst(&q, &g, &tree);
        assert!(cst.any_empty());
    }

    #[test]
    fn stronger_pruning_never_grows_the_cst() {
        use graph_core::generators::random_labelled_graph;
        let q = QueryGraph::new(vec![l(0), l(1), l(0), l(1)], &[(0, 1), (1, 2), (2, 3), (3, 0)])
            .unwrap();
        let g = random_labelled_graph(60, 0.15, 2, 3);
        let tree = BfsTree::new(&q, qv(0));
        let (full, _) = build_cst_with_stats(&q, &g, &tree, CstOptions::default());
        let (min, _) = build_cst_with_stats(&q, &g, &tree, CstOptions::minimal());
        assert!(full.total_candidates() <= min.total_candidates());
        assert!(full.size_bytes() <= min.size_bytes());
    }
}
