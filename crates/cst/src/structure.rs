//! The CST data structure (paper Definition 2).
//!
//! A `Cst` is a graph isomorphic to the query `q`: each query vertex `u`
//! carries a candidate set `C(u)`, and for every query edge `(u, u')` there
//! is an edge between `v ∈ C(u)` and `v' ∈ C(u')` iff `(v, v') ∈ E(G)`.
//!
//! Layout notes:
//! * Candidate sets are sorted `Vec<VertexId>`.
//! * Adjacency `N^u_{u'}(v)` is stored **per directed query edge** in CSR
//!   form, with targets as *indices into `C(u')`* rather than raw vertex ids.
//!   Index-based targets keep the kernel's edge-existence check a dense
//!   array probe (the FPGA's array-partitioned BRAM lookup) and make
//!   partition-time re-indexing cheap.

use graph_core::{QueryGraph, QueryVertexId, VertexId};

/// CSR adjacency for one directed query edge `(u → u')`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrAdj {
    /// `offsets[i]..offsets[i+1]` indexes `targets` for the `i`-th candidate
    /// of `u`. Length `|C(u)| + 1`.
    pub offsets: Vec<u32>,
    /// Sorted indices into `C(u')`.
    pub targets: Vec<u32>,
}

impl CsrAdj {
    /// Adjacency list of the `i`-th candidate of the source vertex.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of the `i`-th source candidate under this edge.
    #[inline]
    pub fn degree(&self, i: usize) -> u32 {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Number of source candidates covered.
    #[inline]
    pub fn source_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Largest adjacency list length (contributes to `D_CST`).
    pub fn max_degree(&self) -> u32 {
        (0..self.source_count())
            .map(|i| self.degree(i))
            .max()
            .unwrap_or(0)
    }

    /// O(log d) membership test.
    #[inline]
    pub fn has_edge(&self, i: usize, j: u32) -> bool {
        self.neighbors(i).binary_search(&j).is_ok()
    }
}

/// The candidate search tree.
#[derive(Debug, Clone)]
pub struct Cst {
    /// Candidate sets, indexed by query vertex; each sorted by vertex id.
    candidates: Vec<Vec<VertexId>>,
    /// Directed-edge adjacency, indexed by [`Cst::edge_slot`].
    adjacency: Vec<CsrAdj>,
    /// `edge_slot[u][u']` = index into `adjacency`, or `NO_EDGE`.
    edge_slot: Vec<Vec<u32>>,
}

const NO_EDGE: u32 = u32::MAX;

impl Cst {
    /// Assembles a CST from parts. `adjacency_pairs` holds
    /// `((u, u'), adj)` for every **directed** query edge.
    pub fn from_parts(
        query_vertex_count: usize,
        candidates: Vec<Vec<VertexId>>,
        adjacency_pairs: Vec<((QueryVertexId, QueryVertexId), CsrAdj)>,
    ) -> Self {
        assert_eq!(candidates.len(), query_vertex_count);
        let mut edge_slot = vec![vec![NO_EDGE; query_vertex_count]; query_vertex_count];
        let mut adjacency = Vec::with_capacity(adjacency_pairs.len());
        for ((u, v), adj) in adjacency_pairs {
            debug_assert_eq!(adj.source_count(), candidates[u.index()].len());
            edge_slot[u.index()][v.index()] = adjacency.len() as u32;
            adjacency.push(adj);
        }
        Cst {
            candidates,
            adjacency,
            edge_slot,
        }
    }

    /// Number of query vertices.
    #[inline]
    pub fn query_vertex_count(&self) -> usize {
        self.candidates.len()
    }

    /// The candidate set `C(u)`, sorted by vertex id.
    #[inline]
    pub fn candidates(&self, u: QueryVertexId) -> &[VertexId] {
        &self.candidates[u.index()]
    }

    /// `|C(u)|`.
    #[inline]
    pub fn candidate_count(&self, u: QueryVertexId) -> usize {
        self.candidates[u.index()].len()
    }

    /// The candidate of `u` at index `i`.
    #[inline]
    pub fn candidate(&self, u: QueryVertexId, i: u32) -> VertexId {
        self.candidates[u.index()][i as usize]
    }

    /// Index of data vertex `v` within `C(u)`, if present.
    #[inline]
    pub fn candidate_index(&self, u: QueryVertexId, v: VertexId) -> Option<u32> {
        self.candidates[u.index()]
            .binary_search(&v)
            .ok()
            .map(|i| i as u32)
    }

    /// Whether the directed query edge `(u → u')` has adjacency stored.
    #[inline]
    pub fn has_adjacency(&self, u: QueryVertexId, v: QueryVertexId) -> bool {
        self.edge_slot[u.index()][v.index()] != NO_EDGE
    }

    /// The adjacency CSR of directed edge `(u → u')`.
    ///
    /// # Panics
    /// Panics if `(u, u')` is not a query edge.
    #[inline]
    pub fn adjacency(&self, u: QueryVertexId, v: QueryVertexId) -> &CsrAdj {
        let slot = self.edge_slot[u.index()][v.index()];
        assert!(slot != NO_EDGE, "no CST adjacency for ({u:?} -> {v:?})");
        &self.adjacency[slot as usize]
    }

    /// `N^u_{u'}(v)` as candidate indices into `C(u')`, where `v` is the
    /// `i`-th candidate of `u`.
    #[inline]
    pub fn neighbors(&self, u: QueryVertexId, i: u32, v: QueryVertexId) -> &[u32] {
        self.adjacency(u, v).neighbors(i as usize)
    }

    /// Edge-existence check between the `i`-th candidate of `u` and the
    /// `j`-th candidate of `u'` (the Edge Validator's probe, Algorithm 7).
    #[inline]
    pub fn has_candidate_edge(&self, u: QueryVertexId, i: u32, v: QueryVertexId, j: u32) -> bool {
        self.adjacency(u, v).has_edge(i as usize, j)
    }

    /// Total in-memory footprint of the CST: candidate arrays plus all CSR
    /// adjacency including `offsets` bookkeeping. This is the number used by
    /// the PCIe transfer model and the baselines' peak-memory accounting —
    /// everything here really is stored and shipped.
    pub fn size_bytes(&self) -> usize {
        self.payload_bytes() + self.scaffold_bytes()
    }

    /// The CSR `offsets` bookkeeping bytes: the part of
    /// [`size_bytes`](Self::size_bytes) excluded from
    /// [`payload_bytes`](Self::payload_bytes).
    pub fn scaffold_bytes(&self) -> usize {
        self.adjacency
            .iter()
            .map(|a| a.offsets.len() * std::mem::size_of::<u32>())
            .sum()
    }

    /// `|CST|` as checked against the δ_S partition threshold (Section V-B):
    /// candidate arrays plus adjacency *entries*, excluding the CSR `offsets`
    /// scaffold. Offsets carry an irreducible floor — even a fully-split
    /// partition with one candidate per vertex keeps `2 × 4 bytes` of them
    /// per directed query edge — so charging them to δ_S would make small
    /// but legal thresholds unattainable and force the partitioner's
    /// oversized-emit escape hatch. Against the payload metric, splitting
    /// can always reach any threshold ≥ one candidate per vertex. Callers
    /// deriving δ_S from a hard BRAM budget should reserve headroom for the
    /// scaffold: its exact size is `4 × Σ_e (|C(src(e))| + 1)` bytes over the
    /// directed query edges — each source vertex's candidate count is paid
    /// once per *outgoing* edge — which shrinks with the candidate sets as
    /// partitions split (see `FastConfig::partition_config` for the budget
    /// split used by the FPGA flow).
    pub fn payload_bytes(&self) -> usize {
        let cand: usize = self
            .candidates
            .iter()
            .map(|c| c.len() * std::mem::size_of::<VertexId>())
            .sum();
        let adj: usize = self
            .adjacency
            .iter()
            .map(|a| a.targets.len() * std::mem::size_of::<u32>())
            .sum();
        cand + adj
    }

    /// `D_CST`: the maximum candidate adjacency-list length, bounded by the
    /// FPGA's `Port_max` via the δ_D partition threshold (Section VI-A).
    pub fn max_candidate_degree(&self) -> u32 {
        self.adjacency.iter().map(CsrAdj::max_degree).max().unwrap_or(0)
    }

    /// Total number of candidates across all query vertices.
    pub fn total_candidates(&self) -> usize {
        self.candidates.iter().map(Vec::len).sum()
    }

    /// Total number of directed candidate-edge entries.
    pub fn total_adjacency_entries(&self) -> usize {
        self.adjacency.iter().map(|a| a.targets.len()).sum()
    }

    /// Whether any candidate set is empty (no embedding can exist).
    pub fn any_empty(&self) -> bool {
        self.candidates.iter().any(Vec::is_empty)
    }

    /// Iterates the directed query edges with stored adjacency.
    pub fn directed_edges(&self) -> impl Iterator<Item = (QueryVertexId, QueryVertexId)> + '_ {
        let n = self.query_vertex_count();
        (0..n).flat_map(move |a| {
            (0..n).filter(move |&b| self.edge_slot[a][b] != NO_EDGE).map(
                move |b| {
                    (
                        QueryVertexId::from_index(a),
                        QueryVertexId::from_index(b),
                    )
                },
            )
        })
    }

    /// Debug-level structural validation: offsets monotone, targets sorted
    /// and in range, and the `(u → u')` / `(u' → u)` lists mutually
    /// consistent. Used by tests and the partitioner's debug assertions.
    pub fn validate(&self, q: &QueryGraph) -> Result<(), String> {
        for (u, v) in self.directed_edges() {
            if !q.has_edge(u, v) {
                return Err(format!("CST stores adjacency for non-edge ({u:?},{v:?})"));
            }
            let adj = self.adjacency(u, v);
            if adj.source_count() != self.candidate_count(u) {
                return Err(format!(
                    "adjacency ({u:?}->{v:?}) covers {} sources, expected {}",
                    adj.source_count(),
                    self.candidate_count(u)
                ));
            }
            let target_len = self.candidate_count(v) as u32;
            for i in 0..adj.source_count() {
                let ns = adj.neighbors(i);
                if !ns.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("unsorted adjacency ({u:?}->{v:?}) src {i}"));
                }
                if ns.iter().any(|&t| t >= target_len) {
                    return Err(format!("target out of range in ({u:?}->{v:?}) src {i}"));
                }
                for &t in ns {
                    if !self.adjacency(v, u).has_edge(t as usize, i as u32) {
                        return Err(format!(
                            "asymmetric candidate edge ({u:?}[{i}] -> {v:?}[{t}])"
                        ));
                    }
                }
            }
        }
        for &(a, b) in q.edges() {
            if !self.has_adjacency(a, b) || !self.has_adjacency(b, a) {
                return Err(format!("query edge ({a:?},{b:?}) missing CST adjacency"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::Label;

    fn qv(x: usize) -> QueryVertexId {
        QueryVertexId::from_index(x)
    }

    fn dv(x: u32) -> VertexId {
        VertexId::new(x)
    }

    /// Hand-built CST matching the paper's Fig. 3(b):
    /// C(u0)={v1,v2}, C(u1)={v4,v6}, C(u2)={v3,v5,v7}, C(u3)={v9,v10}.
    fn fig3_cst() -> Cst {
        let candidates = vec![
            vec![dv(1), dv(2)],
            vec![dv(4), dv(6)],
            vec![dv(3), dv(5), dv(7)],
            vec![dv(9), dv(10)],
        ];
        // Data edges (Fig. 1(b)): v1-v4, v2-v6, v1-v3, v2-v5, v2-v7,
        // v4-v3, v6-v5, v6-v7, v3-v9, v5-v10, (v7-v11 not in C(u3)).
        let mk = |offsets: Vec<u32>, targets: Vec<u32>| CsrAdj { offsets, targets };
        let pairs = vec![
            // u0 -> u1: v1:{v4}, v2:{v6}
            ((qv(0), qv(1)), mk(vec![0, 1, 2], vec![0, 1])),
            // u1 -> u0
            ((qv(1), qv(0)), mk(vec![0, 1, 2], vec![0, 1])),
            // u0 -> u2: v1:{v3}, v2:{v5,v7}
            ((qv(0), qv(2)), mk(vec![0, 1, 3], vec![0, 1, 2])),
            // u2 -> u0: v3:{v1}, v5:{v2}, v7:{v2}
            ((qv(2), qv(0)), mk(vec![0, 1, 2, 3], vec![0, 1, 1])),
            // u1 -> u2 (non-tree): v4:{v3}, v6:{v5,v7}
            ((qv(1), qv(2)), mk(vec![0, 1, 3], vec![0, 1, 2])),
            // u2 -> u1: v3:{v4}, v5:{v6}, v7:{v6}
            ((qv(2), qv(1)), mk(vec![0, 1, 2, 3], vec![0, 1, 1])),
            // u2 -> u3: v3:{v9}, v5:{v10}, v7:{}
            ((qv(2), qv(3)), mk(vec![0, 1, 2, 2], vec![0, 1])),
            // u3 -> u2: v9:{v3}, v10:{v5}
            ((qv(3), qv(2)), mk(vec![0, 1, 2], vec![0, 1])),
        ];
        Cst::from_parts(4, candidates, pairs)
    }

    fn fig1_query() -> QueryGraph {
        QueryGraph::new(
            vec![Label::new(0), Label::new(1), Label::new(2), Label::new(3)],
            &[(0, 1), (0, 2), (1, 2), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let cst = fig3_cst();
        assert_eq!(cst.query_vertex_count(), 4);
        assert_eq!(cst.candidate_count(qv(2)), 3);
        assert_eq!(cst.candidate(qv(2), 1), dv(5));
        assert_eq!(cst.candidate_index(qv(2), dv(7)), Some(2));
        assert_eq!(cst.candidate_index(qv(2), dv(4)), None);
    }

    #[test]
    fn neighbors_match_paper_example_2() {
        let cst = fig3_cst();
        // N^{u1}_{u2}(v6) = {v5, v7} → target indices {1, 2} in C(u2).
        let v6 = cst.candidate_index(qv(1), dv(6)).unwrap();
        assert_eq!(cst.neighbors(qv(1), v6, qv(2)), &[1, 2]);
        // N^{u2}_{u3}(v3) = {v9} → index 0 in C(u3).
        let v3 = cst.candidate_index(qv(2), dv(3)).unwrap();
        assert_eq!(cst.neighbors(qv(2), v3, qv(3)), &[0]);
    }

    #[test]
    fn candidate_edge_probe() {
        let cst = fig3_cst();
        assert!(cst.has_candidate_edge(qv(1), 1, qv(2), 1)); // v6-v5
        assert!(!cst.has_candidate_edge(qv(1), 0, qv(2), 1)); // v4-v5 absent
    }

    #[test]
    fn size_and_degree_models() {
        let cst = fig3_cst();
        assert!(cst.size_bytes() > 0);
        // Largest list: v6's or v2's 2-entry lists → D_CST = 2.
        assert_eq!(cst.max_candidate_degree(), 2);
        assert_eq!(cst.total_candidates(), 9);
    }

    #[test]
    fn validate_passes_for_consistent_cst() {
        let cst = fig3_cst();
        cst.validate(&fig1_query()).unwrap();
    }

    #[test]
    fn validate_catches_asymmetry() {
        let mut candidates = vec![vec![dv(0)], vec![dv(1)]];
        candidates[0].sort();
        let pairs = vec![
            (
                (qv(0), qv(1)),
                CsrAdj {
                    offsets: vec![0, 1],
                    targets: vec![0],
                },
            ),
            (
                (qv(1), qv(0)),
                CsrAdj {
                    offsets: vec![0, 0],
                    targets: vec![],
                },
            ),
        ];
        let cst = Cst::from_parts(2, candidates, pairs);
        let q = QueryGraph::new(vec![Label::new(0), Label::new(1)], &[(0, 1)]).unwrap();
        assert!(cst.validate(&q).is_err());
    }

    #[test]
    fn empty_candidate_detection() {
        let cst = Cst::from_parts(1, vec![vec![]], vec![]);
        assert!(cst.any_empty());
        let cst2 = Cst::from_parts(1, vec![vec![dv(0)]], vec![]);
        assert!(!cst2.any_empty());
    }
}
