//! Query graphs.
//!
//! The paper's queries (Fig. 6) have 4-6 vertices; real-world subgraph
//! queries are rarely larger. We cap queries at [`MAX_QUERY_VERTICES`] = 32
//! vertices, which lets adjacency be a per-vertex `u32` bitmask — O(1) edge
//! tests and trivially copyable, which the FPGA kernel exploits.

use crate::types::{Label, QueryVertexId};

/// Maximum number of vertices in a query graph.
pub const MAX_QUERY_VERTICES: usize = 32;

/// Errors raised by [`QueryGraph`] construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// More than [`MAX_QUERY_VERTICES`] vertices.
    TooManyVertices(usize),
    /// An edge references a vertex index out of range.
    UnknownVertex(usize),
    /// Self loop.
    SelfLoop(usize),
    /// The query graph is not connected (required by the problem statement).
    Disconnected,
    /// The query graph has no vertices.
    Empty,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::TooManyVertices(n) => {
                write!(f, "query has {n} vertices; max is {MAX_QUERY_VERTICES}")
            }
            QueryError::UnknownVertex(u) => write!(f, "edge references unknown query vertex {u}"),
            QueryError::SelfLoop(u) => write!(f, "self loop on query vertex {u}"),
            QueryError::Disconnected => write!(f, "query graph must be connected"),
            QueryError::Empty => write!(f, "query graph must have at least one vertex"),
        }
    }
}

impl std::error::Error for QueryError {}

/// An undirected, labelled, connected, simple query graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryGraph {
    labels: Vec<Label>,
    /// `adjacency[u]` has bit `v` set iff `(u, v)` is an edge.
    adjacency: Vec<u32>,
    /// Each undirected edge once, `(min, max)`, sorted.
    edges: Vec<(QueryVertexId, QueryVertexId)>,
}

impl QueryGraph {
    /// Builds a validated query graph from labels and undirected edges
    /// (given as vertex-index pairs).
    pub fn new(labels: Vec<Label>, edges: &[(usize, usize)]) -> Result<Self, QueryError> {
        let n = labels.len();
        if n == 0 {
            return Err(QueryError::Empty);
        }
        if n > MAX_QUERY_VERTICES {
            return Err(QueryError::TooManyVertices(n));
        }
        let mut adjacency = vec![0u32; n];
        let mut edge_list = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            if a == b {
                return Err(QueryError::SelfLoop(a));
            }
            if a >= n {
                return Err(QueryError::UnknownVertex(a));
            }
            if b >= n {
                return Err(QueryError::UnknownVertex(b));
            }
            if adjacency[a] & (1 << b) == 0 {
                adjacency[a] |= 1 << b;
                adjacency[b] |= 1 << a;
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                edge_list.push((QueryVertexId::from_index(lo), QueryVertexId::from_index(hi)));
            }
        }
        edge_list.sort_unstable();

        let q = QueryGraph {
            labels,
            adjacency,
            edges: edge_list,
        };
        if !q.is_connected() {
            return Err(QueryError::Disconnected);
        }
        Ok(q)
    }

    /// Number of query vertices, `|V(q)|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected query edges, `|E(q)|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The label of query vertex `u`.
    #[inline]
    pub fn label(&self, u: QueryVertexId) -> Label {
        self.labels[u.index()]
    }

    /// Degree of query vertex `u`.
    #[inline]
    pub fn degree(&self, u: QueryVertexId) -> u32 {
        self.adjacency[u.index()].count_ones()
    }

    /// O(1) edge test.
    #[inline]
    pub fn has_edge(&self, u: QueryVertexId, v: QueryVertexId) -> bool {
        self.adjacency[u.index()] & (1 << v.index()) != 0
    }

    /// The adjacency bitmask of `u` (bit `v` set iff `(u,v) ∈ E(q)`).
    #[inline]
    pub fn adjacency_mask(&self, u: QueryVertexId) -> u32 {
        self.adjacency[u.index()]
    }

    /// Iterates over the neighbours of `u` in ascending order.
    pub fn neighbors(&self, u: QueryVertexId) -> impl Iterator<Item = QueryVertexId> + '_ {
        let mut mask = self.adjacency[u.index()];
        std::iter::from_fn(move || {
            if mask == 0 {
                None
            } else {
                let v = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                Some(QueryVertexId::from_index(v))
            }
        })
    }

    /// Each undirected edge once, as sorted `(min, max)` pairs.
    #[inline]
    pub fn edges(&self) -> &[(QueryVertexId, QueryVertexId)] {
        &self.edges
    }

    /// Iterates over all query vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = QueryVertexId> {
        (0..self.labels.len()).map(QueryVertexId::from_index)
    }

    /// Whether the query graph is connected (single BFS component).
    pub fn is_connected(&self) -> bool {
        let n = self.labels.len();
        if n == 0 {
            return false;
        }
        let mut seen = 1u32; // start from vertex 0
        let mut frontier = 1u32;
        while frontier != 0 {
            let mut next = 0u32;
            let mut f = frontier;
            while f != 0 {
                let u = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.adjacency[u] & !seen;
            }
            seen |= next;
            frontier = next;
        }
        seen.count_ones() as usize == n
    }

    /// Counts, for each neighbour label of `u`, how many neighbours carry it.
    /// Sorted by label. Used by the NLF candidate filter.
    pub fn neighbor_label_counts(&self, u: QueryVertexId) -> Vec<(Label, u32)> {
        let mut out: Vec<(Label, u32)> = Vec::new();
        for v in self.neighbors(u) {
            let l = self.label(v);
            match out.iter_mut().find(|(ol, _)| *ol == l) {
                Some((_, c)) => *c += 1,
                None => out.push((l, 1)),
            }
        }
        out.sort_unstable_by_key(|&(l, _)| l);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn u(x: usize) -> QueryVertexId {
        QueryVertexId::from_index(x)
    }

    /// The paper's Fig. 1(a) query: A-B, A-C, B-C, C-D (labels A,B,C,D).
    fn fig1_query() -> QueryGraph {
        QueryGraph::new(
            vec![l(0), l(1), l(2), l(3)],
            &[(0, 1), (0, 2), (1, 2), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn fig1_structure() {
        let q = fig1_query();
        assert_eq!(q.vertex_count(), 4);
        assert_eq!(q.edge_count(), 4);
        assert!(q.has_edge(u(0), u(1)));
        assert!(q.has_edge(u(1), u(0)));
        assert!(!q.has_edge(u(0), u(3)));
        assert_eq!(q.degree(u(2)), 3);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(QueryGraph::new(vec![], &[]), Err(QueryError::Empty));
    }

    #[test]
    fn rejects_disconnected() {
        let r = QueryGraph::new(vec![l(0), l(1), l(2)], &[(0, 1)]);
        assert_eq!(r, Err(QueryError::Disconnected));
    }

    #[test]
    fn rejects_self_loop() {
        let r = QueryGraph::new(vec![l(0), l(1)], &[(0, 0), (0, 1)]);
        assert_eq!(r, Err(QueryError::SelfLoop(0)));
    }

    #[test]
    fn rejects_unknown_vertex() {
        let r = QueryGraph::new(vec![l(0), l(1)], &[(0, 5)]);
        assert_eq!(r, Err(QueryError::UnknownVertex(5)));
    }

    #[test]
    fn rejects_oversized() {
        let labels = vec![l(0); MAX_QUERY_VERTICES + 1];
        let edges: Vec<_> = (0..MAX_QUERY_VERTICES).map(|i| (i, i + 1)).collect();
        assert_eq!(
            QueryGraph::new(labels, &edges),
            Err(QueryError::TooManyVertices(MAX_QUERY_VERTICES + 1))
        );
    }

    #[test]
    fn duplicate_edges_merged() {
        let q = QueryGraph::new(vec![l(0), l(1)], &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(q.edge_count(), 1);
    }

    #[test]
    fn neighbors_ascending() {
        let q = fig1_query();
        let ns: Vec<_> = q.neighbors(u(2)).collect();
        assert_eq!(ns, vec![u(0), u(1), u(3)]);
    }

    #[test]
    fn neighbor_label_counts() {
        let q = QueryGraph::new(vec![l(5), l(1), l(1), l(2)], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(
            q.neighbor_label_counts(u(0)),
            vec![(l(1), 2), (l(2), 1)]
        );
    }

    #[test]
    fn single_vertex_is_connected() {
        let q = QueryGraph::new(vec![l(0)], &[]).unwrap();
        assert!(q.is_connected());
        assert_eq!(q.vertex_count(), 1);
    }
}
