//! Compact identifier newtypes shared across the workspace.
//!
//! Data graphs in the paper reach 187M vertices and 1.25B edges, so vertex
//! identifiers are kept at 32 bits and labels at 16 bits (the LDBC datasets
//! have 11 labels). The newtypes prevent accidentally mixing data-graph
//! vertices, query-graph vertices, and labels.

use std::fmt;

/// Identifier of a vertex in a **data graph**.
///
/// Backed by `u32`: sufficient for graphs of up to ~4.29B vertices, and half
/// the footprint of `usize` in adjacency arrays (see the CSR layout in
/// [`crate::Graph`]).
///
/// `repr(transparent)` guarantees the layout matches the raw `u32`, so a
/// little-endian snapshot section can be viewed in place as `[VertexId]`
/// (see `crate::snapshot::load_snapshot_mapped`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex id from its raw `u32` value.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        VertexId(raw)
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize`, suitable for indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a vertex id from a `usize` index.
    ///
    /// # Panics
    /// Panics in debug builds if `index` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "vertex index overflows u32");
        VertexId(index as u32)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a vertex in a **query graph**.
///
/// Query graphs are small (the paper's queries have 4-6 vertices; we cap at
/// [`crate::query::MAX_QUERY_VERTICES`]), so `u8` suffices and keeps
/// per-partial-result state tiny in the FPGA kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryVertexId(u8);

impl QueryVertexId {
    /// Creates a query vertex id from its raw `u8` value.
    #[inline]
    pub const fn new(raw: u8) -> Self {
        QueryVertexId(raw)
    }

    /// Returns the raw `u8` value.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Returns the id as a `usize`, suitable for indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a query vertex id from a `usize` index.
    ///
    /// # Panics
    /// Panics in debug builds if `index` exceeds `u8::MAX`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u8::MAX as usize, "query vertex index overflows u8");
        QueryVertexId(index as u8)
    }
}

impl fmt::Debug for QueryVertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for QueryVertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A vertex label.
///
/// The paper's LDBC datasets use 11 labels (Table III); `u16` leaves ample
/// headroom while keeping label arrays compact. `repr(transparent)` makes
/// the layout identical to `u16` so mapped snapshot sections can be viewed
/// in place.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Label(u16);

impl Label {
    /// Creates a label from its raw `u16` value.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        Label(raw)
    }

    /// Returns the raw `u16` value.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Returns the label as a `usize`, suitable for indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(v.index(), 42);
        assert_eq!(VertexId::from_index(42), v);
    }

    #[test]
    fn query_vertex_roundtrip() {
        let u = QueryVertexId::new(7);
        assert_eq!(u.raw(), 7);
        assert_eq!(u.index(), 7);
        assert_eq!(QueryVertexId::from_index(7), u);
    }

    #[test]
    fn label_roundtrip() {
        let l = Label::new(3);
        assert_eq!(l.raw(), 3);
        assert_eq!(l.index(), 3);
    }

    #[test]
    fn ordering_follows_raw_values() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert!(QueryVertexId::new(0) < QueryVertexId::new(1));
        assert!(Label::new(0) < Label::new(5));
    }

    #[test]
    fn debug_formats_are_prefixed() {
        assert_eq!(format!("{:?}", VertexId::new(3)), "v3");
        assert_eq!(format!("{:?}", QueryVertexId::new(3)), "u3");
        assert_eq!(format!("{:?}", Label::new(3)), "L3");
    }

    #[test]
    fn type_sizes_stay_compact() {
        // The kernel stores millions of these; keep them at their minimal
        // sizes (perf-book: smaller integers shrink hot types).
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<QueryVertexId>(), 1);
        assert_eq!(std::mem::size_of::<Label>(), 2);
        assert_eq!(std::mem::size_of::<Option<VertexId>>(), 8);
    }
}
