//! Matching orders.
//!
//! A matching order `O` is a permutation of the query vertices such that each
//! vertex (after the first) is adjacent in `q` to at least one earlier vertex
//! (a *connected* order). The paper's scheduler uses the path-based order of
//! CFL (Section V-B) but is "designed to work with any arbitrary connected
//! matching orders"; Fig. 15 evaluates FAST under CFL's, DAF's, CECI's, and
//! random connected orders, all of which are provided here.

use crate::bfs_tree::BfsTree;
use crate::csr::Graph;
use crate::query::QueryGraph;
use crate::types::QueryVertexId;
use rand::seq::SliceRandom;
use rand::Rng;

/// A validated connected matching order over a query graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingOrder {
    order: Vec<QueryVertexId>,
    /// `position[u] = i` iff `order[i] == u`.
    position: Vec<usize>,
}

/// Errors raised by [`MatchingOrder::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderError {
    /// The sequence is not a permutation of the query vertices.
    NotAPermutation,
    /// Some vertex has no earlier neighbour (the order is disconnected).
    NotConnected(QueryVertexId),
}

impl std::fmt::Display for OrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderError::NotAPermutation => write!(f, "order is not a permutation of V(q)"),
            OrderError::NotConnected(u) => {
                write!(f, "vertex {u:?} has no earlier neighbour in the order")
            }
        }
    }
}

impl std::error::Error for OrderError {}

impl MatchingOrder {
    /// Validates and wraps a vertex sequence as a matching order for `q`.
    pub fn new(q: &QueryGraph, order: Vec<QueryVertexId>) -> Result<Self, OrderError> {
        let n = q.vertex_count();
        if order.len() != n {
            return Err(OrderError::NotAPermutation);
        }
        let mut seen = vec![false; n];
        for &u in &order {
            if u.index() >= n || seen[u.index()] {
                return Err(OrderError::NotAPermutation);
            }
            seen[u.index()] = true;
        }
        // Connectivity: each vertex after the first must see an earlier one.
        let mut placed = 0u32;
        for (i, &u) in order.iter().enumerate() {
            if i > 0 && q.adjacency_mask(u) & placed == 0 {
                return Err(OrderError::NotConnected(u));
            }
            placed |= 1 << u.index();
        }
        let mut position = vec![0usize; n];
        for (i, &u) in order.iter().enumerate() {
            position[u.index()] = i;
        }
        Ok(MatchingOrder { order, position })
    }

    /// The vertex sequence.
    #[inline]
    pub fn as_slice(&self) -> &[QueryVertexId] {
        &self.order
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the order is empty (never true for validated orders).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The `i`-th vertex to match.
    #[inline]
    pub fn vertex_at(&self, i: usize) -> QueryVertexId {
        self.order[i]
    }

    /// The position of `u` in the order.
    #[inline]
    pub fn position_of(&self, u: QueryVertexId) -> usize {
        self.position[u.index()]
    }

    /// The first vertex (the root of the search).
    #[inline]
    pub fn first(&self) -> QueryVertexId {
        self.order[0]
    }

    /// Neighbours of `u` in `q` that precede `u` in this order
    /// ("backward neighbours"), in order position.
    pub fn backward_neighbors(&self, q: &QueryGraph, u: QueryVertexId) -> Vec<QueryVertexId> {
        let pu = self.position_of(u);
        let mut back: Vec<QueryVertexId> = q
            .neighbors(u)
            .filter(|&v| self.position_of(v) < pu)
            .collect();
        back.sort_unstable_by_key(|&v| self.position_of(v));
        back
    }
}

/// Selects a starting (root) vertex for the BFS tree, following the
/// CFL/CECI convention: minimise `|C_init(u)| / d_q(u)` where `C_init(u)`
/// estimates candidates by label frequency and degree.
pub fn select_root(q: &QueryGraph, g: &Graph) -> QueryVertexId {
    let mut best = QueryVertexId::new(0);
    let mut best_score = f64::INFINITY;
    for u in q.vertices() {
        let candidates = g
            .vertices_with_label(q.label(u))
            .iter()
            .filter(|&&v| g.degree(v) >= q.degree(u))
            .count();
        let score = candidates as f64 / q.degree(u).max(1) as f64;
        if score < best_score {
            best_score = score;
            best = u;
        }
    }
    best
}

/// The paper's path-based order (Section V-B): decompose `t_q` into
/// root-to-leaf paths, order paths by estimated selectivity (ascending
/// estimated candidate volume), and concatenate, skipping repeats.
///
/// Tree parents always precede children, which the CST partitioner relies on.
pub fn path_based_order(q: &QueryGraph, tree: &BfsTree, g: &Graph) -> MatchingOrder {
    let paths = tree.root_to_leaf_paths();
    // Score a path by the product of per-vertex label-candidate frequencies —
    // a cheap proxy for how much the path's Cartesian product can blow up.
    // Lower (more selective) paths go first, matching CFL's heuristic.
    let mut scored: Vec<(f64, Vec<QueryVertexId>)> = paths
        .into_iter()
        .map(|p| {
            let score: f64 = p
                .iter()
                .map(|&u| {
                    let f = g.vertices_with_label(q.label(u)).len().max(1) as f64;
                    f / (q.degree(u).max(1) as f64)
                })
                .product();
            (score, p)
        })
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

    let mut order = Vec::with_capacity(q.vertex_count());
    let mut placed = vec![false; q.vertex_count()];
    for (_, path) in scored {
        for u in path {
            if !placed[u.index()] {
                placed[u.index()] = true;
                order.push(u);
            }
        }
    }
    MatchingOrder::new(q, order).expect("path-based order is connected by construction")
}

/// CFL-style core-forest-leaf order: vertices of the 2-core of `q` first (in
/// BFS order), then internal forest vertices, then leaves — postponing the
/// Cartesian products that leaves introduce.
pub fn cfl_style_order(q: &QueryGraph, tree: &BfsTree) -> MatchingOrder {
    let core = two_core_mask(q);
    let mut order = Vec::with_capacity(q.vertex_count());
    let in_core = |u: QueryVertexId| core & (1 << u.index()) != 0;
    // Three passes over BFS order keep parents ahead of children within each
    // class; cross-class adjacency is guaranteed because the core is
    // connected whenever non-empty and the forest hangs off it.
    for &u in tree.bfs_order() {
        if in_core(u) {
            order.push(u);
        }
    }
    for &u in tree.bfs_order() {
        if !in_core(u) && (!tree.is_leaf(u) || q.degree(u) != 1) {
            order.push(u);
        }
    }
    for &u in tree.bfs_order() {
        if !in_core(u) && tree.is_leaf(u) && q.degree(u) == 1 {
            order.push(u);
        }
    }
    match MatchingOrder::new(q, order) {
        Ok(o) => o,
        // Degenerate queries (e.g. core not containing the BFS root) can
        // break connectivity; fall back to plain BFS order, as CFL does.
        Err(_) => MatchingOrder::new(q, tree.bfs_order().to_vec())
            .expect("BFS order is always connected"),
    }
}

/// DAF-style order: greedy "minimum candidate count first" — repeatedly pick
/// the unmatched vertex adjacent to the matched set with the smallest
/// estimated candidate set (label frequency scaled down by degree).
pub fn daf_style_order(q: &QueryGraph, g: &Graph, start: QueryVertexId) -> MatchingOrder {
    let n = q.vertex_count();
    let estimate = |u: QueryVertexId| -> f64 {
        let f = g
            .vertices_with_label(q.label(u))
            .iter()
            .filter(|&&v| g.degree(v) >= q.degree(u))
            .count() as f64;
        f / (q.degree(u).max(1) as f64)
    };
    let mut order = vec![start];
    let mut placed = 1u32 << start.index();
    while order.len() < n {
        let next = q
            .vertices()
            .filter(|&u| placed & (1 << u.index()) == 0)
            .filter(|&u| q.adjacency_mask(u) & placed != 0)
            .min_by(|&a, &b| estimate(a).total_cmp(&estimate(b)).then(a.cmp(&b)))
            .expect("query is connected");
        placed |= 1 << next.index();
        order.push(next);
    }
    MatchingOrder::new(q, order).expect("greedy frontier order is connected")
}

/// CECI-style order: plain BFS order of the spanning tree (CECI matches in
/// BFS-tree order with intersection-based extension).
pub fn ceci_style_order(q: &QueryGraph, tree: &BfsTree) -> MatchingOrder {
    MatchingOrder::new(q, tree.bfs_order().to_vec()).expect("BFS order is always connected")
}

/// A uniformly random connected order starting from `start`.
///
/// Used by the Fig. 15 matching-order sensitivity experiment ("all other
/// random connected orders").
pub fn random_connected_order<R: Rng>(
    q: &QueryGraph,
    start: QueryVertexId,
    rng: &mut R,
) -> MatchingOrder {
    let n = q.vertex_count();
    let mut order = vec![start];
    let mut placed = 1u32 << start.index();
    while order.len() < n {
        let frontier: Vec<QueryVertexId> = q
            .vertices()
            .filter(|&u| placed & (1 << u.index()) == 0)
            .filter(|&u| q.adjacency_mask(u) & placed != 0)
            .collect();
        let &next = frontier.choose(rng).expect("query is connected");
        placed |= 1 << next.index();
        order.push(next);
    }
    MatchingOrder::new(q, order).expect("frontier growth keeps the order connected")
}

/// Enumerates *all* connected matching orders starting from `start`.
///
/// Exponential in `|V(q)|`; intended for the Fig. 15 BEST/WORST analysis on
/// the paper's small queries only.
pub fn all_connected_orders(q: &QueryGraph, start: QueryVertexId) -> Vec<MatchingOrder> {
    let n = q.vertex_count();
    let mut out = Vec::new();
    let mut current = vec![start];
    fn recurse(
        q: &QueryGraph,
        n: usize,
        placed: u32,
        current: &mut Vec<QueryVertexId>,
        out: &mut Vec<MatchingOrder>,
    ) {
        if current.len() == n {
            out.push(
                MatchingOrder::new(q, current.clone()).expect("constructed order is connected"),
            );
            return;
        }
        for u in q.vertices() {
            let bit = 1u32 << u.index();
            if placed & bit == 0 && q.adjacency_mask(u) & placed != 0 {
                current.push(u);
                recurse(q, n, placed | bit, current, out);
                current.pop();
            }
        }
    }
    recurse(q, n, 1 << start.index(), &mut current, &mut out);
    out
}

/// The set of vertices in the 2-core of `q` (max subgraph with min degree 2),
/// as a bitmask.
fn two_core_mask(q: &QueryGraph) -> u32 {
    let n = q.vertex_count();
    let mut alive = (0..n).fold(0u32, |m, i| m | (1 << i));
    loop {
        let mut changed = false;
        for u in q.vertices() {
            let bit = 1u32 << u.index();
            if alive & bit != 0 {
                let deg = (q.adjacency_mask(u) & alive).count_ones();
                if deg < 2 {
                    alive &= !bit;
                    changed = true;
                }
            }
        }
        if !changed {
            return alive;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::types::Label;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn u(x: usize) -> QueryVertexId {
        QueryVertexId::from_index(x)
    }

    fn fig1() -> (QueryGraph, Graph) {
        let q = QueryGraph::new(
            vec![l(0), l(1), l(2), l(3)],
            &[(0, 1), (0, 2), (1, 2), (2, 3)],
        )
        .unwrap();
        // Small data graph with matching labels so frequency estimates exist.
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex(l(0));
        let b0 = b.add_vertex(l(1));
        let c0 = b.add_vertex(l(2));
        let d0 = b.add_vertex(l(3));
        let c1 = b.add_vertex(l(2));
        b.add_edge(a0, b0).unwrap();
        b.add_edge(a0, c0).unwrap();
        b.add_edge(b0, c0).unwrap();
        b.add_edge(c0, d0).unwrap();
        b.add_edge(a0, c1).unwrap();
        (q, b.build())
    }

    #[test]
    fn validation_rejects_non_permutation() {
        let (q, _) = fig1();
        assert_eq!(
            MatchingOrder::new(&q, vec![u(0), u(0), u(1), u(2)]),
            Err(OrderError::NotAPermutation)
        );
        assert_eq!(
            MatchingOrder::new(&q, vec![u(0), u(1)]),
            Err(OrderError::NotAPermutation)
        );
    }

    #[test]
    fn validation_rejects_disconnected_order() {
        let (q, _) = fig1();
        // u3 is only adjacent to u2; placing it second disconnects the order.
        assert_eq!(
            MatchingOrder::new(&q, vec![u(0), u(3), u(1), u(2)]),
            Err(OrderError::NotConnected(u(3)))
        );
    }

    #[test]
    fn positions_invert_order() {
        let (q, _) = fig1();
        let o = MatchingOrder::new(&q, vec![u(0), u(2), u(1), u(3)]).unwrap();
        for i in 0..o.len() {
            assert_eq!(o.position_of(o.vertex_at(i)), i);
        }
    }

    #[test]
    fn backward_neighbors_in_order_position() {
        let (q, _) = fig1();
        let o = MatchingOrder::new(&q, vec![u(0), u(2), u(1), u(3)]).unwrap();
        assert_eq!(o.backward_neighbors(&q, u(1)), vec![u(0), u(2)]);
        assert_eq!(o.backward_neighbors(&q, u(3)), vec![u(2)]);
        assert!(o.backward_neighbors(&q, u(0)).is_empty());
    }

    #[test]
    fn path_based_order_is_valid_and_parent_first() {
        let (q, g) = fig1();
        let t = BfsTree::new(&q, u(0));
        let o = path_based_order(&q, &t, &g);
        assert_eq!(o.len(), 4);
        for v in q.vertices() {
            if let Some(p) = t.parent(v) {
                assert!(o.position_of(p) < o.position_of(v));
            }
        }
    }

    #[test]
    fn cfl_daf_ceci_orders_valid() {
        let (q, g) = fig1();
        let t = BfsTree::new(&q, u(0));
        // Constructors validate internally; just exercise them.
        let _ = cfl_style_order(&q, &t);
        let _ = daf_style_order(&q, &g, u(0));
        let _ = ceci_style_order(&q, &t);
    }

    #[test]
    fn random_orders_are_connected_and_diverse() {
        let (q, _) = fig1();
        let mut rng = StdRng::seed_from_u64(7);
        let orders: Vec<_> = (0..20)
            .map(|_| random_connected_order(&q, u(0), &mut rng))
            .collect();
        // All valid by construction; at least two distinct orders expected.
        let first = orders[0].as_slice().to_vec();
        assert!(orders.iter().any(|o| o.as_slice() != first.as_slice()));
    }

    #[test]
    fn all_connected_orders_match_manual_count() {
        let (q, _) = fig1();
        // From u0: next ∈ {u1, u2}; enumerate manually = 5 total orders:
        // 0,1,2,3 / 0,2,1,3 / 0,2,3,1. Wait — u3 attaches only to u2, so
        // orders are: [0,1,2,3], [0,2,1,3], [0,2,3,1]. That is 3.
        let orders = all_connected_orders(&q, u(0));
        assert_eq!(orders.len(), 3);
    }

    #[test]
    fn select_root_prefers_selective_labels() {
        let (q, g) = fig1();
        // Degree-filtered candidate counts: u0 → {a0}, score 1/2; u1 → {b0},
        // score 1/2; u2 → {c0} (c1 has degree 1 < 3), score 1/3; u3 → {d0},
        // score 1/1. u2 minimises |C_init|/deg.
        assert_eq!(select_root(&q, &g), u(2));
    }

    #[test]
    fn two_core_of_triangle_with_tail() {
        let (q, _) = fig1();
        let core = two_core_mask(&q);
        // Triangle u0,u1,u2 is the 2-core; u3 is not.
        assert_eq!(core, 0b0111);
    }
}
