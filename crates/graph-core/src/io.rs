//! Text serialisation in the de-facto subgraph-matching benchmark format.
//!
//! The format used by CFL-Match, CECI, DAF and the in-memory matching survey:
//!
//! ```text
//! t <num_vertices> <num_edges>
//! v <vertex_id> <label> <degree>
//! ...
//! e <vertex_a> <vertex_b>
//! ...
//! ```
//!
//! Vertex ids must be dense `0..n`. The degree column is advisory and
//! re-derived on load.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::query::{QueryGraph, QueryError};
use crate::types::{Label, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors raised while parsing the text format.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse { line: usize, message: String },
    /// The parsed query graph failed validation.
    Query(QueryError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Query(e) => write!(f, "invalid query graph: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Parsed raw content shared by graph and query readers.
struct RawGraph {
    labels: Vec<Label>,
    edges: Vec<(usize, usize)>,
}

fn read_raw<R: Read>(reader: R) -> Result<RawGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut labels: Vec<Option<Label>> = Vec::new();
    let mut edges = Vec::new();
    let mut declared: Option<(usize, usize)> = None;

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("t") => {
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad vertex count"))?;
                let m: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad edge count"))?;
                declared = Some((n, m));
                labels.resize(n, None);
            }
            Some("v") => {
                let id: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad vertex id"))?;
                let label: u16 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad label"))?;
                if id >= labels.len() {
                    labels.resize(id + 1, None);
                }
                labels[id] = Some(Label::new(label));
            }
            Some("e") => {
                let a: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad edge endpoint"))?;
                let b: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad edge endpoint"))?;
                edges.push((a, b));
            }
            Some(other) => {
                return Err(parse_err(lineno, format!("unknown record type '{other}'")))
            }
            None => {}
        }
    }

    let labels: Vec<Label> = labels
        .into_iter()
        .enumerate()
        .map(|(i, l)| l.ok_or_else(|| parse_err(0, format!("vertex {i} missing 'v' record"))))
        .collect::<Result<_, _>>()?;

    if let Some((n, m)) = declared {
        if labels.len() != n {
            return Err(parse_err(
                0,
                format!("header declares {n} vertices but {} found", labels.len()),
            ));
        }
        if edges.len() != m {
            return Err(parse_err(
                0,
                format!("header declares {m} edges but {} found", edges.len()),
            ));
        }
    }
    Ok(RawGraph { labels, edges })
}

/// Reads a data graph from the text format.
pub fn read_graph_text<R: Read>(reader: R) -> Result<Graph, IoError> {
    let raw = read_raw(reader)?;
    let mut b = GraphBuilder::with_capacity(raw.labels.len(), raw.edges.len());
    for l in &raw.labels {
        b.add_vertex(*l);
    }
    for (i, &(a, b_)) in raw.edges.iter().enumerate() {
        b.add_edge(VertexId::from_index(a), VertexId::from_index(b_))
            .map_err(|e| parse_err(0, format!("edge {i}: {e}")))?;
    }
    Ok(b.build())
}

/// Reads a query graph from the text format.
pub fn read_query_text<R: Read>(reader: R) -> Result<QueryGraph, IoError> {
    let raw = read_raw(reader)?;
    QueryGraph::new(raw.labels, &raw.edges).map_err(IoError::Query)
}

/// Writes a data graph in the text format.
pub fn write_graph_text<W: Write>(g: &Graph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "t {} {}", g.vertex_count(), g.edge_count())?;
    for v in g.vertices() {
        writeln!(w, "v {} {} {}", v.raw(), g.label(v).raw(), g.degree(v))?;
    }
    for (a, b) in g.edges() {
        writeln!(w, "e {} {}", a.raw(), b.raw())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a query graph in the text format.
pub fn write_query_text<W: Write>(q: &QueryGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "t {} {}", q.vertex_count(), q.edge_count())?;
    for u in q.vertices() {
        writeln!(w, "v {} {} {}", u.raw(), q.label(u).raw(), q.degree(u))?;
    }
    for &(a, b) in q.edges() {
        writeln!(w, "e {} {}", a.raw(), b.raw())?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_labelled_graph;
    use crate::queries::all_benchmark_queries;

    #[test]
    fn graph_roundtrip() {
        let g = random_labelled_graph(40, 0.15, 5, 3);
        let mut buf = Vec::new();
        write_graph_text(&g, &mut buf).unwrap();
        let g2 = read_graph_text(&buf[..]).unwrap();
        assert_eq!(g.vertex_count(), g2.vertex_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
            assert_eq!(g.label(v), g2.label(v));
        }
    }

    #[test]
    fn query_roundtrip_all_benchmarks() {
        for q in all_benchmark_queries() {
            let mut buf = Vec::new();
            write_query_text(&q, &mut buf).unwrap();
            let q2 = read_query_text(&buf[..]).unwrap();
            assert_eq!(q, q2);
        }
    }

    #[test]
    fn parses_with_comments_and_blank_lines() {
        let text = "# comment\n\nt 2 1\nv 0 0 1\nv 1 1 1\n% another\ne 0 1\n";
        let g = read_graph_text(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_header_mismatch() {
        let text = "t 3 1\nv 0 0 1\nv 1 1 1\ne 0 1\n";
        assert!(read_graph_text(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_missing_vertex_record() {
        let text = "v 0 0 1\nv 2 0 0\ne 0 2\n";
        assert!(read_graph_text(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_unknown_record() {
        let text = "x 1 2 3\n";
        assert!(read_graph_text(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_malformed_numbers() {
        assert!(read_graph_text("t x 1\n".as_bytes()).is_err());
        assert!(read_graph_text("v a 0 0\n".as_bytes()).is_err());
        assert!(read_graph_text("e 0 q\n".as_bytes()).is_err());
    }

    #[test]
    fn query_reader_validates_connectivity() {
        let text = "t 3 1\nv 0 0 1\nv 1 0 1\nv 2 0 0\ne 0 1\n";
        assert!(matches!(
            read_query_text(text.as_bytes()),
            Err(IoError::Query(_))
        ));
    }
}
