//! The CSR data-graph representation.
//!
//! The paper's data graphs (Table III) range up to 1.25B edges, so the
//! representation matters: a compressed sparse row layout with `u32` vertex
//! ids halves memory traffic compared to pointer-based adjacency, and sorted
//! neighbour lists give `O(log d)` edge tests — the same access pattern the
//! host-side CST constructor (Algorithm 1) is built around.

use crate::types::{Label, VertexId};
use std::any::Any;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Backing storage for one flat CSR array: either an owned `Vec<T>` (the
/// builder / copying-loader path) or a borrowed view into a shared
/// memory-mapped snapshot (`crate::snapshot::load_snapshot_mapped`). The
/// mapped variant keeps the mapping alive through an opaque `Arc`, so a
/// `Graph` clone is an `Arc` bump, not an array copy.
pub(crate) enum Section<T> {
    Owned(Vec<T>),
    Mapped {
        /// Keep-alive handle for the mapping backing `ptr`.
        keep: Arc<dyn Any + Send + Sync>,
        ptr: *const T,
        len: usize,
    },
}

// Safety: the mapped variant points into a private read-only file mapping
// owned by `keep`; it is never written through and outlives every view via
// the `Arc`, so sharing the raw pointer across threads is sound.
unsafe impl<T: Send + Sync> Send for Section<T> {}
unsafe impl<T: Send + Sync> Sync for Section<T> {}

impl<T> Section<T> {
    /// Wraps a read-only view into a mapping. `ptr` must be valid for
    /// `len` aligned reads of `T` for as long as `keep` is alive.
    pub(crate) fn mapped(keep: Arc<dyn Any + Send + Sync>, ptr: *const T, len: usize) -> Self {
        Section::Mapped { keep, ptr, len }
    }

    /// Bytes of this section held in owned heap storage (0 when mapped).
    fn owned_bytes(&self) -> usize {
        match self {
            Section::Owned(v) => v.len() * std::mem::size_of::<T>(),
            Section::Mapped { .. } => 0,
        }
    }
}

impl<T> From<Vec<T>> for Section<T> {
    fn from(v: Vec<T>) -> Self {
        Section::Owned(v)
    }
}

impl<T> Deref for Section<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            Section::Owned(v) => v,
            // Safety: upheld by the `Section::mapped` contract; `keep` is
            // alive for as long as `self` is.
            Section::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T> Clone for Section<T>
where
    T: Clone,
{
    fn clone(&self) -> Self {
        match self {
            Section::Owned(v) => Section::Owned(v.clone()),
            Section::Mapped { keep, ptr, len } => Section::Mapped {
                keep: Arc::clone(keep),
                ptr: *ptr,
                len: *len,
            },
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Section<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <[T] as fmt::Debug>::fmt(self, f)
    }
}

/// An undirected, labelled, simple data graph in CSR form.
///
/// Construct via [`crate::GraphBuilder`] or [`crate::io::read_graph_text`].
#[derive(Debug, Clone)]
pub struct Graph {
    labels: Section<Label>,
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Section<usize>,
    /// Concatenated, per-vertex-sorted adjacency lists. Each undirected edge
    /// appears twice (once per endpoint).
    neighbors: Section<VertexId>,
    /// Number of undirected edges.
    edge_count: usize,
    /// Vertices grouped by label: `label_offsets[l]..label_offsets[l+1]`
    /// indexes `vertices_by_label`. Always owned (derived, not stored in
    /// snapshots).
    label_offsets: Vec<usize>,
    vertices_by_label: Vec<VertexId>,
    max_degree: u32,
}

impl Graph {
    /// Assembles a graph from prevalidated CSR parts.
    ///
    /// Intended for [`crate::GraphBuilder`]; offsets must be monotone with
    /// `offsets.len() == labels.len() + 1`, and each adjacency slice sorted.
    pub(crate) fn from_csr_parts(
        labels: Vec<Label>,
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        edge_count: usize,
    ) -> Self {
        Self::from_csr_sections(labels.into(), offsets.into(), neighbors.into(), edge_count)
    }

    /// Assembles a graph from prevalidated CSR sections (owned or mapped);
    /// the derived label index is always computed into owned storage.
    pub(crate) fn from_csr_sections(
        labels: Section<Label>,
        offsets: Section<usize>,
        neighbors: Section<VertexId>,
        edge_count: usize,
    ) -> Self {
        debug_assert_eq!(offsets.len(), labels.len() + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), neighbors.len());

        let n = labels.len();
        let num_labels = labels.iter().map(|l| l.index() + 1).max().unwrap_or(0);

        // Bucket vertices by label (counting sort: labels are dense).
        let mut counts = vec![0usize; num_labels];
        for l in labels.iter() {
            counts[l.index()] += 1;
        }
        let mut label_offsets = Vec::with_capacity(num_labels + 1);
        let mut acc = 0usize;
        label_offsets.push(0);
        for &c in &counts {
            acc += c;
            label_offsets.push(acc);
        }
        let mut vertices_by_label = vec![VertexId::new(0); n];
        let mut cursor = label_offsets[..num_labels].to_vec();
        for (i, l) in labels.iter().enumerate() {
            vertices_by_label[cursor[l.index()]] = VertexId::from_index(i);
            cursor[l.index()] += 1;
        }

        let max_degree = (0..n)
            .map(|v| (offsets[v + 1] - offsets[v]) as u32)
            .max()
            .unwrap_or(0);

        Graph {
            labels,
            offsets,
            neighbors,
            edge_count,
            label_offsets,
            vertices_by_label,
            max_degree,
        }
    }

    /// The raw CSR arrays `(labels, offsets, neighbors)` — the flat
    /// sections the binary snapshot format (`crate::snapshot`) serialises.
    pub(crate) fn csr_parts(&self) -> (&[Label], &[usize], &[VertexId]) {
        (&self.labels, &self.offsets, &self.neighbors)
    }

    /// Number of vertices, `|V(G)|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges, `|E(G)|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of distinct label slots (max label index + 1).
    #[inline]
    pub fn label_count(&self) -> usize {
        self.label_offsets.len().saturating_sub(1)
    }

    /// The label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v.index()]
    }

    /// All vertex labels, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// The degree `d_G(v)`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as u32
    }

    /// The maximum degree `D_G`.
    #[inline]
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// The average degree `2|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.labels.len() as f64
        }
    }

    /// Tests whether the undirected edge `(u, v)` exists.
    ///
    /// Binary-searches the smaller of the two adjacency lists: `O(log d)`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (probe, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(probe).binary_search(&target).is_ok()
    }

    /// All vertices carrying label `l`, sorted by id.
    ///
    /// Returns an empty slice for labels absent from the graph.
    #[inline]
    pub fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        if l.index() + 1 >= self.label_offsets.len() {
            return &[];
        }
        &self.vertices_by_label[self.label_offsets[l.index()]..self.label_offsets[l.index() + 1]]
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.labels.len()).map(VertexId::from_index)
    }

    /// Iterates over each undirected edge once, as `(min, max)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Counts `v`'s neighbours carrying each label, appending `(label, count)`
    /// pairs (sorted by label) into `out`.
    ///
    /// Used to build the NLF (neighbour label frequency) filter. Reuses the
    /// caller's buffer to avoid per-vertex allocation.
    pub fn neighbor_label_counts(&self, v: VertexId, out: &mut Vec<(Label, u32)>) {
        out.clear();
        for &n in self.neighbors(v) {
            let l = self.label(n);
            match out.iter_mut().find(|(ol, _)| *ol == l) {
                Some((_, c)) => *c += 1,
                None => out.push((l, 1)),
            }
        }
        out.sort_unstable_by_key(|&(l, _)| l);
    }

    /// Bytes of the three stored CSR sections (labels, offsets, neighbors)
    /// living in owned heap storage. A graph loaded through
    /// [`crate::snapshot::load_snapshot_mapped`] returns 0 here — the
    /// sections are views into the mapping — which is the no-copy witness
    /// the snapshot tests and figures assert on. The derived label index is
    /// excluded: it is always recomputed into owned storage.
    pub fn owned_csr_bytes(&self) -> usize {
        self.labels.owned_bytes() + self.offsets.owned_bytes() + self.neighbors.owned_bytes()
    }

    /// Estimated heap footprint in bytes (labels + CSR arrays + label index).
    pub fn memory_bytes(&self) -> usize {
        self.labels.len() * std::mem::size_of::<Label>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
            + self.label_offsets.len() * std::mem::size_of::<usize>()
            + self.vertices_by_label.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 0-2 triangle; 2-3 tail. Labels: 0,0,1,2.
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Label::new(0));
        let v1 = b.add_vertex(Label::new(0));
        let v2 = b.add_vertex(Label::new(1));
        let v3 = b.add_vertex(Label::new(2));
        b.add_edge(v0, v1).unwrap();
        b.add_edge(v1, v2).unwrap();
        b.add_edge(v0, v2).unwrap();
        b.add_edge(v2, v3).unwrap();
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_tail();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.label_count(), 3);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle_plus_tail();
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
            assert!(g.has_edge(VertexId::new(u), VertexId::new(v)));
            assert!(g.has_edge(VertexId::new(v), VertexId::new(u)));
        }
        assert!(!g.has_edge(VertexId::new(0), VertexId::new(3)));
        assert!(!g.has_edge(VertexId::new(1), VertexId::new(3)));
    }

    #[test]
    fn label_index_groups_vertices() {
        let g = triangle_plus_tail();
        assert_eq!(
            g.vertices_with_label(Label::new(0)),
            &[VertexId::new(0), VertexId::new(1)]
        );
        assert_eq!(g.vertices_with_label(Label::new(1)), &[VertexId::new(2)]);
        assert_eq!(g.vertices_with_label(Label::new(2)), &[VertexId::new(3)]);
        assert!(g.vertices_with_label(Label::new(9)).is_empty());
    }

    #[test]
    fn edges_iterator_visits_each_edge_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        assert!(edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn neighbor_label_counts_sorted() {
        let g = triangle_plus_tail();
        let mut buf = Vec::new();
        g.neighbor_label_counts(VertexId::new(2), &mut buf);
        assert_eq!(buf, vec![(Label::new(0), 2), (Label::new(2), 1)]);
    }

    #[test]
    fn memory_accounting_positive() {
        let g = triangle_plus_tail();
        assert!(g.memory_bytes() > 0);
    }
}
