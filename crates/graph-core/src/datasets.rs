//! The scaled-down dataset ladder mirroring the paper's `DG01`–`DG60`.
//!
//! The paper's datasets are LDBC SNB networks at scale factors 1/3/10/60
//! (Table III: 17.2M – 1.25B edges). This reproduction keeps the 1:3:10:60
//! ratio but shrinks the absolute size by ~100x so every experiment runs on
//! a laptop; see DESIGN.md §6 for the substitution rationale.

use crate::csr::Graph;
use crate::generators::{generate_ldbc, LdbcParams};

/// Identifiers of the benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetId {
    Dg01,
    Dg03,
    Dg10,
    Dg60,
}

impl DatasetId {
    /// All datasets, smallest first.
    pub const ALL: [DatasetId; 4] = [
        DatasetId::Dg01,
        DatasetId::Dg03,
        DatasetId::Dg10,
        DatasetId::Dg60,
    ];

    /// The paper's name for this dataset.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Dg01 => "DG01",
            DatasetId::Dg03 => "DG03",
            DatasetId::Dg10 => "DG10",
            DatasetId::Dg60 => "DG60",
        }
    }

    /// The LDBC scale factor `x` of `DGx` (relative size).
    pub fn scale_factor(self) -> f64 {
        match self {
            DatasetId::Dg01 => 1.0,
            DatasetId::Dg03 => 3.0,
            DatasetId::Dg10 => 10.0,
            DatasetId::Dg60 => 60.0,
        }
    }

    /// Deterministic generator seed; fixed so that every experiment across
    /// the repository sees the same graphs.
    pub fn seed(self) -> u64 {
        match self {
            DatasetId::Dg01 => 0x01,
            DatasetId::Dg03 => 0x03,
            DatasetId::Dg10 => 0x10,
            DatasetId::Dg60 => 0x60,
        }
    }

    /// Generates the dataset.
    ///
    /// `DG60` is ~1.8M vertices / ~11M edges; generation takes a few seconds.
    pub fn generate(self) -> Graph {
        let params = LdbcParams::with_scale_factor(self.scale_factor());
        generate_ldbc(&params, self.seed())
    }

    /// Parses a dataset name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "DG01" => Some(DatasetId::Dg01),
            "DG03" => Some(DatasetId::Dg03),
            "DG10" => Some(DatasetId::Dg10),
            "DG60" => Some(DatasetId::Dg60),
            _ => None,
        }
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_parse_roundtrip() {
        for d in DatasetId::ALL {
            assert_eq!(DatasetId::parse(d.name()), Some(d));
            assert_eq!(DatasetId::parse(&d.name().to_lowercase()), Some(d));
        }
        assert_eq!(DatasetId::parse("DG99"), None);
    }

    #[test]
    fn scale_factors_preserve_paper_ratios() {
        let sf: Vec<f64> = DatasetId::ALL.iter().map(|d| d.scale_factor()).collect();
        assert_eq!(sf, vec![1.0, 3.0, 10.0, 60.0]);
    }

    #[test]
    fn dg01_generates_at_mini_scale() {
        let g = DatasetId::Dg01.generate();
        // DESIGN.md §6 ladder: ~30K vertices, >100K edges, 11 labels.
        assert!(g.vertex_count() > 20_000 && g.vertex_count() < 60_000);
        assert!(g.edge_count() > 80_000);
        assert_eq!(g.label_count(), 11);
    }
}
