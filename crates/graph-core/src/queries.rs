//! The benchmark queries `q0`–`q8` (paper Fig. 6).
//!
//! The paper takes its queries from the LDBC-SNB complex tasks as adapted by
//! Lai et al. (PVLDB 12(10)), keeping node types as labels and removing
//! multi-hop edges. Fig. 6 is not machine-readable from the paper text, so
//! the nine queries are *reconstructed* here to match every structural
//! property the evaluation section relies on:
//!
//! * `q0`: 4-vertex **path** (TagClass–Tag–Post–Person) — pure tree.
//! * `q1`: 4-vertex **cycle** (Person knows Person; each authored one end of
//!   a Comment-replyOf-Post pair).
//! * `q2`: 5-vertex cycle-plus-tail (q1 plus the Post's Tag).
//! * `q3`: 6-vertex near-tree (one non-tree edge) — the paper notes `q3` has
//!   `N/M ≈ 2`, i.e. expansion tasks dominate edge-validation tasks, which
//!   holds exactly for tree-heavy queries like this one.
//! * `q4`: 5-vertex cycle — two persons who know each other, located in two
//!   cities of the same country.
//! * `q5`: 5-vertex dense — a path of three persons co-located in one city,
//!   city in a country.
//! * `q6`: 5-vertex dense — person triangle co-located in one city, city in
//!   a country.
//! * `q7`: 6-vertex — person triangle with two members located in two cities
//!   of the same country (embedding count explodes with scale, mirroring the
//!   paper's note on `q7`'s rapid growth from DG03 to DG10, Fig. 9).
//! * `q8`: 6-vertex densest — four-person clique, one member located in a
//!   city of a country (`M > N`, where the paper reports the largest
//!   task-parallelism gains).

use crate::generators::ldbc::labels as L;
use crate::query::QueryGraph;

/// Number of benchmark queries.
pub const QUERY_COUNT: usize = 9;

/// Returns benchmark query `qi` for `i ∈ 0..9`.
///
/// # Panics
/// Panics if `i >= 9`.
pub fn benchmark_query(i: usize) -> QueryGraph {
    let q = match i {
        // TagClass - Tag - Post - Person (path).
        0 => QueryGraph::new(
            vec![L::TAG_CLASS, L::TAG, L::POST, L::PERSON],
            &[(0, 1), (1, 2), (2, 3)],
        ),
        // Person-Person knows; Post by p0, Comment by p1, Comment reply-of Post.
        1 => QueryGraph::new(
            vec![L::PERSON, L::PERSON, L::POST, L::COMMENT],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        ),
        // q1 + the post's tag.
        2 => QueryGraph::new(
            vec![L::PERSON, L::PERSON, L::POST, L::COMMENT, L::TAG],
            &[(0, 1), (0, 2), (1, 3), (2, 3), (2, 4)],
        ),
        // Near-tree: person p0 wrote post; post has comment and tag;
        // tag has class; p0 knows p1; non-tree edge: p1 wrote the comment.
        3 => QueryGraph::new(
            vec![
                L::PERSON,
                L::POST,
                L::COMMENT,
                L::TAG,
                L::TAG_CLASS,
                L::PERSON,
            ],
            &[(0, 1), (1, 2), (1, 3), (3, 4), (0, 5), (2, 5)],
        ),
        // Two knowing persons in two cities of one country (5-cycle).
        4 => QueryGraph::new(
            vec![L::PERSON, L::PERSON, L::CITY, L::CITY, L::COUNTRY],
            &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)],
        ),
        // Person path co-located in one city; city in country.
        5 => QueryGraph::new(
            vec![L::PERSON, L::PERSON, L::PERSON, L::CITY, L::COUNTRY],
            &[(0, 1), (1, 2), (0, 3), (1, 3), (2, 3), (3, 4)],
        ),
        // Person triangle co-located in one city; city in country.
        6 => QueryGraph::new(
            vec![L::PERSON, L::PERSON, L::PERSON, L::CITY, L::COUNTRY],
            &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3), (3, 4)],
        ),
        // Person triangle, two members in two cities of one country.
        7 => QueryGraph::new(
            vec![
                L::PERSON,
                L::PERSON,
                L::PERSON,
                L::CITY,
                L::CITY,
                L::COUNTRY,
            ],
            &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (3, 5), (4, 5)],
        ),
        // Four-person clique; one member located in a city of a country.
        8 => QueryGraph::new(
            vec![
                L::PERSON,
                L::PERSON,
                L::PERSON,
                L::PERSON,
                L::CITY,
                L::COUNTRY,
            ],
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (0, 4),
                (4, 5),
            ],
        ),
        _ => panic!("benchmark query index {i} out of range (0..{QUERY_COUNT})"),
    };
    q.expect("benchmark queries are well-formed by construction")
}

/// All nine benchmark queries, indexed `q0..q8`.
pub fn all_benchmark_queries() -> Vec<QueryGraph> {
    (0..QUERY_COUNT).map(benchmark_query).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_tree::BfsTree;
    use crate::types::QueryVertexId;

    #[test]
    fn all_queries_build_and_are_connected() {
        for (i, q) in all_benchmark_queries().iter().enumerate() {
            assert!(q.is_connected(), "q{i} disconnected");
            assert!(q.vertex_count() >= 4 && q.vertex_count() <= 6, "q{i} size");
        }
    }

    #[test]
    fn q0_is_a_tree() {
        let q = benchmark_query(0);
        assert_eq!(q.edge_count(), q.vertex_count() - 1);
        let t = BfsTree::new(&q, QueryVertexId::new(0));
        assert_eq!(t.non_tree_edge_count(), 0);
    }

    #[test]
    fn q3_has_exactly_one_non_tree_edge() {
        let q = benchmark_query(3);
        assert_eq!(q.edge_count(), q.vertex_count());
        let t = BfsTree::new(&q, QueryVertexId::new(0));
        assert_eq!(t.non_tree_edge_count(), 1);
    }

    #[test]
    fn q8_has_most_edges_and_non_tree_edges() {
        let queries = all_benchmark_queries();
        let q8_edges = queries[8].edge_count();
        assert!(queries[..8].iter().all(|q| q.edge_count() < q8_edges));
        // The 4-clique leaves 3 non-tree edges — the M >> N regime where the
        // paper reports the largest task-parallelism gains.
        let t = BfsTree::new(&queries[8], QueryVertexId::new(0));
        assert_eq!(t.non_tree_edge_count(), 3);
    }

    #[test]
    fn q6_contains_triangle() {
        let q = benchmark_query(6);
        let u = QueryVertexId::new;
        assert!(q.has_edge(u(0), u(1)) && q.has_edge(u(1), u(2)) && q.has_edge(u(0), u(2)));
    }

    #[test]
    fn query_labels_are_schema_labels() {
        use crate::generators::ldbc::labels;
        for q in all_benchmark_queries() {
            for u in q.vertices() {
                assert!(q.label(u).index() < labels::COUNT);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        benchmark_query(9);
    }
}
