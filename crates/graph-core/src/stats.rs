//! Dataset statistics (paper Table III).

use crate::csr::Graph;

/// The per-dataset characteristics reported in Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub name: String,
    pub vertices: usize,
    pub edges: usize,
    pub avg_degree: f64,
    pub max_degree: u32,
    pub labels: usize,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(name: impl Into<String>, g: &Graph) -> Self {
        // Count only labels that actually occur.
        let labels = (0..g.label_count())
            .filter(|&l| !g.vertices_with_label(crate::types::Label::new(l as u16)).is_empty())
            .count();
        GraphStats {
            name: name.into(),
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            avg_degree: g.avg_degree(),
            max_degree: g.max_degree(),
            labels,
        }
    }

    /// Formats one row in the style of Table III.
    pub fn table_row(&self) -> String {
        format!(
            "{:<8} {:>10} {:>12} {:>8.2} {:>10} {:>8}",
            self.name,
            format_count(self.vertices),
            format_count(self.edges),
            self.avg_degree,
            format_count(self.max_degree as usize),
            self.labels
        )
    }

    /// The Table III header matching [`GraphStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<8} {:>10} {:>12} {:>8} {:>10} {:>8}",
            "Name", "|V_G|", "|E_G|", "d_G", "D_G", "#Labels"
        )
    }
}

/// Human-readable counts in the paper's style: `3.18M`, `1.25B`, `464,368`.
pub fn format_count(n: usize) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}B", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_labelled_graph;

    #[test]
    fn stats_match_graph_accessors() {
        let g = random_labelled_graph(60, 0.1, 4, 2);
        let s = GraphStats::compute("test", &g);
        assert_eq!(s.vertices, g.vertex_count());
        assert_eq!(s.edges, g.edge_count());
        assert_eq!(s.max_degree, g.max_degree());
        assert!(s.labels <= 4);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(format_count(999), "999");
        assert_eq!(format_count(31_800), "31.8K");
        assert_eq!(format_count(3_180_000), "3.18M");
        assert_eq!(format_count(1_250_000_000), "1.25B");
    }

    #[test]
    fn table_row_contains_name() {
        let g = random_labelled_graph(10, 0.2, 2, 1);
        let s = GraphStats::compute("DG01", &g);
        assert!(s.table_row().starts_with("DG01"));
        assert!(GraphStats::table_header().contains("|V_G|"));
    }
}
