//! Uniform edge sampling (paper Fig. 17).
//!
//! "We keep all vertices and sample 20%, 40%, 60%, and 80% edges of DG60
//! uniformly to further test the scalability of FAST."

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Returns a new graph with every vertex of `g` and each edge kept
/// independently with probability `fraction`.
///
/// # Panics
/// Panics if `fraction` is outside `[0, 1]`.
pub fn sample_edges(g: &Graph, fraction: f64, seed: u64) -> Graph {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction {fraction} outside [0, 1]"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(
        g.vertex_count(),
        (g.edge_count() as f64 * fraction) as usize + 1,
    );
    for v in g.vertices() {
        b.add_vertex(g.label(v));
    }
    for (u, v) in g.edges() {
        if rng.gen_bool(fraction) {
            b.add_edge(u, v).expect("endpoints exist by construction");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_labelled_graph;

    #[test]
    fn keeps_all_vertices() {
        let g = random_labelled_graph(100, 0.1, 3, 8);
        let s = sample_edges(&g, 0.5, 1);
        assert_eq!(s.vertex_count(), g.vertex_count());
        for v in g.vertices() {
            assert_eq!(g.label(v), s.label(v));
        }
    }

    #[test]
    fn fraction_zero_and_one_are_exact() {
        let g = random_labelled_graph(60, 0.2, 3, 8);
        assert_eq!(sample_edges(&g, 0.0, 1).edge_count(), 0);
        assert_eq!(sample_edges(&g, 1.0, 1).edge_count(), g.edge_count());
    }

    #[test]
    fn sampled_edges_are_subset() {
        let g = random_labelled_graph(60, 0.2, 3, 8);
        let s = sample_edges(&g, 0.4, 2);
        for (u, v) in s.edges() {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn expected_fraction_roughly_holds() {
        let g = random_labelled_graph(200, 0.2, 3, 8);
        let s = sample_edges(&g, 0.3, 3);
        let ratio = s.edge_count() as f64 / g.edge_count() as f64;
        assert!((ratio - 0.3).abs() < 0.08, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_fraction() {
        let g = random_labelled_graph(5, 0.5, 2, 8);
        sample_edges(&g, 1.5, 0);
    }
}
