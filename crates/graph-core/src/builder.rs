//! Incremental construction of [`Graph`]s.
//!
//! The builder accepts vertices and undirected edges in any order, tolerates
//! duplicate and self-loop insertions (both are rejected: the paper studies
//! simple graphs), and produces a compact CSR [`Graph`] with sorted adjacency
//! lists in a single finalisation pass.

use crate::csr::Graph;
use crate::types::{Label, VertexId};

/// Errors produced while building a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An edge references a vertex id that was never added.
    UnknownVertex(VertexId),
    /// A self loop `(v, v)` was inserted; the paper studies simple graphs.
    SelfLoop(VertexId),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownVertex(v) => write!(f, "edge references unknown vertex {v:?}"),
            BuildError::SelfLoop(v) => write!(f, "self loop on vertex {v:?} is not allowed"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Graph`].
///
/// # Example
/// ```
/// use graph_core::{GraphBuilder, Label, VertexId};
///
/// let mut b = GraphBuilder::new();
/// let a = b.add_vertex(Label::new(0));
/// let c = b.add_vertex(Label::new(1));
/// b.add_edge(a, c).unwrap();
/// let g = b.build();
/// assert_eq!(g.vertex_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// assert!(g.has_edge(a, c));
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    /// Undirected edges, stored once with `min(u,v) <= max(u,v)` order
    /// normalised at finalisation time.
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-reserved capacity for `vertices` vertices
    /// and `edges` undirected edges.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        GraphBuilder {
            labels: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a vertex with the given label, returning its id.
    ///
    /// Vertex ids are assigned densely in insertion order.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = VertexId::from_index(self.labels.len());
        self.labels.push(label);
        id
    }

    /// Adds `n` vertices sharing the same label; returns the id of the first.
    pub fn add_vertices(&mut self, n: usize, label: Label) -> VertexId {
        let first = VertexId::from_index(self.labels.len());
        self.labels.extend(std::iter::repeat_n(label, n));
        first
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edge insertions so far (duplicates not yet removed).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge.
    ///
    /// Duplicate insertions are deduplicated at [`GraphBuilder::build`] time.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), BuildError> {
        if u == v {
            return Err(BuildError::SelfLoop(u));
        }
        let n = self.labels.len();
        if u.index() >= n {
            return Err(BuildError::UnknownVertex(u));
        }
        if v.index() >= n {
            return Err(BuildError::UnknownVertex(v));
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(())
    }

    /// Finalises the builder into a CSR [`Graph`].
    ///
    /// Duplicate edges are removed; adjacency lists come out sorted so that
    /// [`Graph::has_edge`] can binary-search.
    pub fn build(mut self) -> Graph {
        // Deduplicate undirected edges.
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.labels.len();
        let mut degrees = vec![0u32; n];
        for &(u, v) in &self.edges {
            degrees[u.index()] += 1;
            degrees[v.index()] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d as usize;
            offsets.push(acc);
        }

        let mut neighbors = vec![VertexId::new(0); acc];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for &(u, v) in &self.edges {
            neighbors[cursor[u.index()]] = v;
            cursor[u.index()] += 1;
            neighbors[cursor[v.index()]] = u;
            cursor[v.index()] += 1;
        }
        // Sort each adjacency list; edges were globally sorted by (u, v) so
        // the u-side lists are already sorted, but the v-side entries are
        // interleaved. A per-list sort keeps the code simple and is O(E log d).
        for i in 0..n {
            neighbors[offsets[i]..offsets[i + 1]].sort_unstable();
        }

        Graph::from_csr_parts(self.labels, offsets, neighbors, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn vertices_only() {
        let mut b = GraphBuilder::new();
        b.add_vertex(l(0));
        b.add_vertex(l(1));
        let g = b.build();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(VertexId::new(0)), 0);
    }

    #[test]
    fn duplicate_edges_are_merged() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(l(0));
        let c = b.add_vertex(l(0));
        b.add_edge(a, c).unwrap();
        b.add_edge(c, a).unwrap();
        b.add_edge(a, c).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.degree(c), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(l(0));
        assert_eq!(b.add_edge(a, a), Err(BuildError::SelfLoop(a)));
    }

    #[test]
    fn unknown_vertex_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(l(0));
        let ghost = VertexId::new(99);
        assert_eq!(b.add_edge(a, ghost), Err(BuildError::UnknownVertex(ghost)));
        assert_eq!(b.add_edge(ghost, a), Err(BuildError::UnknownVertex(ghost)));
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| b.add_vertex(l(0))).collect();
        // Insert star edges in reverse order.
        for &v in vs[1..].iter().rev() {
            b.add_edge(vs[0], v).unwrap();
        }
        let g = b.build();
        let ns = g.neighbors(vs[0]);
        assert!(ns.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ns.len(), 4);
    }

    #[test]
    fn add_vertices_bulk() {
        let mut b = GraphBuilder::new();
        let first = b.add_vertices(10, l(3));
        assert_eq!(first, VertexId::new(0));
        assert_eq!(b.vertex_count(), 10);
        let g = b.build();
        assert!((0..10).all(|i| g.label(VertexId::new(i)) == l(3)));
    }
}
