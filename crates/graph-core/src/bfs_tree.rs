//! BFS spanning trees of query graphs.
//!
//! Following the paper (Section V-A), the query graph is first transformed
//! into a BFS spanning tree `t_q`. Edges of `q` that are in `t_q` are *tree
//! edges*; the rest are *non-tree edges*, and their endpoints are *non-tree
//! neighbours*. The CST inherits the parent/child structure of `t_q` and adds
//! adjacency lists for non-tree edges (Definition 2).

use crate::query::QueryGraph;
use crate::types::QueryVertexId;

/// A BFS spanning tree of a [`QueryGraph`].
#[derive(Debug, Clone)]
pub struct BfsTree {
    root: QueryVertexId,
    /// `parent[u]` is `u`'s tree parent; `None` for the root.
    parent: Vec<Option<QueryVertexId>>,
    /// Children of each vertex, in BFS discovery order.
    children: Vec<Vec<QueryVertexId>>,
    /// All query vertices in BFS discovery order (root first).
    bfs_order: Vec<QueryVertexId>,
    /// BFS depth of each vertex (root = 0).
    depth: Vec<u32>,
    /// For each vertex `u`, its non-tree neighbours: `(u, un) ∈ E(q)` but
    /// `(u, un) ∉ E(t_q)`, sorted ascending.
    non_tree_neighbors: Vec<Vec<QueryVertexId>>,
}

impl BfsTree {
    /// Builds the BFS tree of `q` rooted at `root`.
    ///
    /// Neighbours are visited in ascending vertex order, making the tree
    /// deterministic for a given root.
    pub fn new(q: &QueryGraph, root: QueryVertexId) -> Self {
        let n = q.vertex_count();
        assert!(root.index() < n, "root {root:?} out of range");

        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut depth = vec![0u32; n];
        let mut bfs_order = Vec::with_capacity(n);
        let mut visited = vec![false; n];

        let mut queue = std::collections::VecDeque::with_capacity(n);
        visited[root.index()] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            bfs_order.push(u);
            for v in q.neighbors(u) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    parent[v.index()] = Some(u);
                    depth[v.index()] = depth[u.index()] + 1;
                    children[u.index()].push(v);
                    queue.push_back(v);
                }
            }
        }
        debug_assert_eq!(bfs_order.len(), n, "query must be connected");

        // Non-tree neighbours: adjacent in q but not parent/child in t_q.
        let mut non_tree_neighbors = vec![Vec::new(); n];
        for &(a, b) in q.edges() {
            let tree_edge =
                parent[a.index()] == Some(b) || parent[b.index()] == Some(a);
            if !tree_edge {
                non_tree_neighbors[a.index()].push(b);
                non_tree_neighbors[b.index()].push(a);
            }
        }
        for list in &mut non_tree_neighbors {
            list.sort_unstable();
        }

        BfsTree {
            root,
            parent,
            children,
            bfs_order,
            depth,
            non_tree_neighbors,
        }
    }

    /// The tree root.
    #[inline]
    pub fn root(&self) -> QueryVertexId {
        self.root
    }

    /// `u`'s tree parent (`None` for the root).
    #[inline]
    pub fn parent(&self, u: QueryVertexId) -> Option<QueryVertexId> {
        self.parent[u.index()]
    }

    /// `u`'s tree children in BFS discovery order.
    #[inline]
    pub fn children(&self, u: QueryVertexId) -> &[QueryVertexId] {
        &self.children[u.index()]
    }

    /// Whether `u` is a leaf of the tree.
    #[inline]
    pub fn is_leaf(&self, u: QueryVertexId) -> bool {
        self.children[u.index()].is_empty()
    }

    /// BFS depth of `u` (root = 0).
    #[inline]
    pub fn depth(&self, u: QueryVertexId) -> u32 {
        self.depth[u.index()]
    }

    /// All vertices in BFS discovery order (top-down order of Algorithm 1).
    #[inline]
    pub fn bfs_order(&self) -> &[QueryVertexId] {
        &self.bfs_order
    }

    /// All vertices in reverse BFS order (bottom-up order of Algorithm 1).
    pub fn bottom_up_order(&self) -> impl Iterator<Item = QueryVertexId> + '_ {
        self.bfs_order.iter().rev().copied()
    }

    /// `u`'s non-tree neighbours (sorted ascending).
    #[inline]
    pub fn non_tree_neighbors(&self, u: QueryVertexId) -> &[QueryVertexId] {
        &self.non_tree_neighbors[u.index()]
    }

    /// Whether the tree edge `(parent(u), u)` exists — i.e. `u` is not root.
    #[inline]
    pub fn is_tree_edge(&self, a: QueryVertexId, b: QueryVertexId) -> bool {
        self.parent[a.index()] == Some(b) || self.parent[b.index()] == Some(a)
    }

    /// Number of non-tree edges in the query (each counted once).
    pub fn non_tree_edge_count(&self) -> usize {
        self.non_tree_neighbors.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Root-to-leaf paths of the tree, each as a vertex sequence starting at
    /// the root. Paths are enumerated in DFS order over children.
    ///
    /// These are the units the paper's path-based matching order (Section
    /// V-B) permutes.
    pub fn root_to_leaf_paths(&self) -> Vec<Vec<QueryVertexId>> {
        let mut paths = Vec::new();
        let mut stack = vec![(self.root, vec![self.root])];
        while let Some((u, path)) = stack.pop() {
            if self.is_leaf(u) {
                paths.push(path);
            } else {
                // Push children reversed so DFS emits them in natural order.
                for &c in self.children(u).iter().rev() {
                    let mut p = path.clone();
                    p.push(c);
                    stack.push((c, p));
                }
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Label;

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn u(x: usize) -> QueryVertexId {
        QueryVertexId::from_index(x)
    }

    /// Fig. 1(a): u0(A)-u1(B), u0-u2(C), u1-u2, u2-u3(D); BFS from u0.
    fn fig1_tree() -> (QueryGraph, BfsTree) {
        let q = QueryGraph::new(
            vec![l(0), l(1), l(2), l(3)],
            &[(0, 1), (0, 2), (1, 2), (2, 3)],
        )
        .unwrap();
        let t = BfsTree::new(&q, u(0));
        (q, t)
    }

    #[test]
    fn fig1_tree_structure() {
        // Matches the paper's Fig. 3(a): u1, u2 children of u0; u3 child of u2;
        // (u1, u2) is the non-tree edge.
        let (_, t) = fig1_tree();
        assert_eq!(t.root(), u(0));
        assert_eq!(t.parent(u(1)), Some(u(0)));
        assert_eq!(t.parent(u(2)), Some(u(0)));
        assert_eq!(t.parent(u(3)), Some(u(2)));
        assert_eq!(t.children(u(0)), &[u(1), u(2)]);
        assert!(t.is_leaf(u(1)));
        assert!(t.is_leaf(u(3)));
        assert_eq!(t.non_tree_neighbors(u(1)), &[u(2)]);
        assert_eq!(t.non_tree_neighbors(u(2)), &[u(1)]);
        assert_eq!(t.non_tree_edge_count(), 1);
    }

    #[test]
    fn bfs_order_starts_at_root_and_respects_parents() {
        let (_, t) = fig1_tree();
        let order = t.bfs_order();
        assert_eq!(order[0], u(0));
        let pos = |x: QueryVertexId| order.iter().position(|&y| y == x).unwrap();
        for &v in order {
            if let Some(p) = t.parent(v) {
                assert!(pos(p) < pos(v), "parent must precede child in BFS order");
            }
        }
    }

    #[test]
    fn depths() {
        let (_, t) = fig1_tree();
        assert_eq!(t.depth(u(0)), 0);
        assert_eq!(t.depth(u(1)), 1);
        assert_eq!(t.depth(u(2)), 1);
        assert_eq!(t.depth(u(3)), 2);
    }

    #[test]
    fn root_to_leaf_paths_cover_all_leaves() {
        let (_, t) = fig1_tree();
        let paths = t.root_to_leaf_paths();
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&vec![u(0), u(1)]));
        assert!(paths.contains(&vec![u(0), u(2), u(3)]));
    }

    #[test]
    fn tree_edge_classification() {
        let (_, t) = fig1_tree();
        assert!(t.is_tree_edge(u(0), u(1)));
        assert!(t.is_tree_edge(u(2), u(0)));
        assert!(!t.is_tree_edge(u(1), u(2)));
    }

    #[test]
    fn different_root_changes_tree() {
        let (q, _) = fig1_tree();
        let t = BfsTree::new(&q, u(3));
        assert_eq!(t.root(), u(3));
        assert_eq!(t.parent(u(2)), Some(u(3)));
        // u0 and u1 both hang off u2; edge (u0, u1) becomes non-tree.
        assert_eq!(t.parent(u(0)), Some(u(2)));
        assert_eq!(t.parent(u(1)), Some(u(2)));
        assert_eq!(t.non_tree_neighbors(u(0)), &[u(1)]);
    }

    #[test]
    fn cycle_has_expected_non_tree_edges() {
        // 5-cycle: BFS tree from 0 leaves exactly one non-tree edge.
        let q = QueryGraph::new(
            vec![l(0); 5],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        )
        .unwrap();
        let t = BfsTree::new(&q, u(0));
        assert_eq!(t.non_tree_edge_count(), 1);
    }
}
