//! # graph-core
//!
//! Labelled-graph substrate for the FAST reproduction (ICDE 2021,
//! "FAST: FPGA-based Subgraph Matching on Massive Graphs").
//!
//! Provides everything the matching stack is built on:
//!
//! * [`Graph`] — CSR data graphs with label indexes and `O(log d)` edge tests;
//! * [`QueryGraph`] — bitmask-adjacency query graphs (≤ 32 vertices);
//! * [`BfsTree`] — BFS spanning trees with tree/non-tree edge classification
//!   (the skeleton of the CST, paper Section V-A);
//! * [`MatchingOrder`] and the order heuristics of Fig. 15 (path-based,
//!   CFL-, DAF-, CECI-style, random connected);
//! * the LDBC-SNB-like [`generators`] and the scaled [`datasets`] ladder
//!   (`DG01`–`DG60`, Table III);
//! * the nine benchmark [`queries`] `q0`–`q8` (Fig. 6);
//! * text [`io`] in the standard benchmark format, [`stats`], and uniform
//!   edge [`sample`]-ing (Fig. 17).

pub mod bfs_tree;
pub mod builder;
pub mod csr;
pub mod datasets;
pub mod generators;
pub mod io;
pub mod order;
pub mod queries;
pub mod query;
pub mod sample;
pub mod snapshot;
pub mod stats;
pub mod types;

pub use bfs_tree::BfsTree;
pub use builder::{BuildError, GraphBuilder};
pub use csr::Graph;
pub use datasets::DatasetId;
pub use order::{
    all_connected_orders, ceci_style_order, cfl_style_order, daf_style_order, path_based_order,
    random_connected_order, select_root, MatchingOrder, OrderError,
};
pub use queries::{all_benchmark_queries, benchmark_query, QUERY_COUNT};
pub use query::{QueryError, QueryGraph, MAX_QUERY_VERTICES};
pub use sample::sample_edges;
pub use snapshot::{
    graph_fingerprint, load_snapshot, load_snapshot_mapped, save_snapshot, MappedSnapshot,
    SnapshotError, SnapshotVerify,
};
pub use stats::{format_count, GraphStats};
pub use types::{Label, QueryVertexId, VertexId};
