//! Versioned binary CSR snapshots: load a data graph without re-parsing.
//!
//! The text format (`crate::io`) is the interchange format; this module is
//! the *restart* format. A serving process hosting many tenant graphs pays
//! a cold-start tax re-reading and re-validating text on every boot — the
//! snapshot stores the already-validated CSR arrays as flat little-endian
//! sections behind a checksummed header, so a load is three bulk reads
//! plus an integrity check (no tokenising, no sorting, no deduplication).
//!
//! # Layout (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"FASTCSR\x01"
//! 8       4     version (u32 LE) = 1
//! 12      4     reserved = 0
//! 16      8     vertex count n        (u64 LE)
//! 24      8     undirected edge count (u64 LE)
//! 32      8     neighbors length = 2m (u64 LE)
//! 40      8     FNV-1a checksum over the three payload sections (u64 LE)
//! 48      —     labels    n × u16 LE          (padded to 8-byte boundary)
//! …       —     offsets   (n+1) × u64 LE
//! …       —     neighbors 2m × u32 LE         (padded to 8-byte boundary)
//! ```
//!
//! Every section starts 8-byte aligned, so a mapped reader can view the
//! sections in place. Two load paths share the same validation:
//!
//! * [`load_snapshot`] — portable copying reader through a buffered
//!   stream (works everywhere, always verifies the checksum);
//! * [`load_snapshot_mapped`] — zero-copy: the file is `mmap`ed privately
//!   read-only and the [`Graph`] borrows its label/offset/neighbour
//!   sections straight from the page cache
//!   ([`Graph::owned_csr_bytes`]` == 0`), so tenant restore cost is
//!   page-cache-bound instead of proportional to array bytes. The
//!   checksum pass is a read-only scan (no copy) and can be deferred
//!   ([`SnapshotVerify::Lazy`]) to overlap restore with first use;
//!   structural CSR invariants are *always* validated at load so a
//!   corrupt snapshot can never index out of bounds. On targets without
//!   the mapping fast path (non-unix, big-endian, 32-bit) it degrades to
//!   the copying reader.
//!
//! Validation on load: magic/version, checksum, monotone offsets
//! terminating at `2m`, and neighbour ids `< n` — a truncated or
//! bit-flipped snapshot is a typed [`SnapshotError`], never a malformed
//! [`Graph`].

use crate::csr::Graph;
use crate::types::{Label, VertexId};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::OnceLock;

/// Magic prefix: format name + layout version byte.
const MAGIC: [u8; 8] = *b"FASTCSR\x01";
/// Layout version this module reads and writes.
const VERSION: u32 = 1;
/// Section alignment: every payload section starts on this boundary.
const ALIGN: usize = 8;
/// Fixed header length; all three payload sections follow contiguously.
const HEADER_LEN: usize = 48;

/// Errors from snapshot save/load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a snapshot, wrong version, or failed validation — the message
    /// names the offending field.
    Format(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Format(msg) => write!(f, "bad snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Streaming FNV-1a (64-bit): cheap, stable across platforms, and already
/// the fingerprint primitive the plan cache uses.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

fn pad_len(len: usize) -> usize {
    (ALIGN - len % ALIGN) % ALIGN
}

/// Serialises the three CSR sections (labels, offsets, neighbors) as flat
/// little-endian byte vectors, each padded to the section alignment.
fn encode_sections(g: &Graph) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let (labels, offsets, neighbors) = g.csr_parts();
    let mut lab = Vec::with_capacity(labels.len() * 2 + ALIGN);
    for l in labels {
        lab.extend_from_slice(&l.raw().to_le_bytes());
    }
    lab.resize(lab.len() + pad_len(lab.len()), 0);
    let mut off = Vec::with_capacity(offsets.len() * 8);
    for &o in offsets {
        off.extend_from_slice(&(o as u64).to_le_bytes());
    }
    let mut nbr = Vec::with_capacity(neighbors.len() * 4 + ALIGN);
    for v in neighbors {
        nbr.extend_from_slice(&(v.index() as u32).to_le_bytes());
    }
    nbr.resize(nbr.len() + pad_len(nbr.len()), 0);
    (lab, off, nbr)
}

/// Writes `g` as a version-1 snapshot to `w`.
pub fn write_snapshot(g: &Graph, w: &mut dyn Write) -> Result<(), SnapshotError> {
    let (lab, off, nbr) = encode_sections(g);
    let mut fnv = Fnv::new();
    fnv.update(&lab);
    fnv.update(&off);
    fnv.update(&nbr);

    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&(g.vertex_count() as u64).to_le_bytes())?;
    w.write_all(&(g.edge_count() as u64).to_le_bytes())?;
    let (_, _, neighbors) = g.csr_parts();
    w.write_all(&(neighbors.len() as u64).to_le_bytes())?;
    w.write_all(&fnv.0.to_le_bytes())?;
    w.write_all(&lab)?;
    w.write_all(&off)?;
    w.write_all(&nbr)?;
    Ok(())
}

fn read_exact_or(r: &mut dyn Read, buf: &mut [u8], what: &str) -> Result<(), SnapshotError> {
    r.read_exact(buf)
        .map_err(|_| SnapshotError::Format(format!("truncated reading {what}")))
}

fn read_u64(r: &mut dyn Read, what: &str) -> Result<u64, SnapshotError> {
    let mut b = [0u8; 8];
    read_exact_or(r, &mut b, what)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a snapshot from `r`, validating header, checksum, and CSR
/// invariants before assembling the [`Graph`].
pub fn read_snapshot(r: &mut dyn Read) -> Result<Graph, SnapshotError> {
    let mut magic = [0u8; 8];
    read_exact_or(r, &mut magic, "magic")?;
    if magic != MAGIC {
        return Err(SnapshotError::Format("magic mismatch (not a FAST CSR snapshot)".into()));
    }
    let mut v4 = [0u8; 4];
    read_exact_or(r, &mut v4, "version")?;
    let version = u32::from_le_bytes(v4);
    if version != VERSION {
        return Err(SnapshotError::Format(format!(
            "unsupported snapshot version {version} (expected {VERSION})"
        )));
    }
    read_exact_or(r, &mut v4, "reserved")?;
    let n = read_u64(r, "vertex count")? as usize;
    let m = read_u64(r, "edge count")? as usize;
    let nbr_len = read_u64(r, "neighbors length")? as usize;
    let checksum = read_u64(r, "checksum")?;
    if nbr_len != 2 * m {
        return Err(SnapshotError::Format(format!(
            "neighbors length {nbr_len} does not match 2·edges {}",
            2 * m
        )));
    }

    let lab_bytes = n * 2 + pad_len(n * 2);
    let off_bytes = (n + 1) * 8;
    let nbr_bytes = nbr_len * 4 + pad_len(nbr_len * 4);
    let mut lab = vec![0u8; lab_bytes];
    let mut off = vec![0u8; off_bytes];
    let mut nbr = vec![0u8; nbr_bytes];
    read_exact_or(r, &mut lab, "labels section")?;
    read_exact_or(r, &mut off, "offsets section")?;
    read_exact_or(r, &mut nbr, "neighbors section")?;

    let mut fnv = Fnv::new();
    fnv.update(&lab);
    fnv.update(&off);
    fnv.update(&nbr);
    if fnv.0 != checksum {
        return Err(SnapshotError::Format(format!(
            "checksum mismatch (stored {checksum:#018x}, computed {:#018x})",
            fnv.0
        )));
    }

    let labels: Vec<Label> = lab[..n * 2]
        .chunks_exact(2)
        .map(|c| Label::new(u16::from_le_bytes([c[0], c[1]])))
        .collect();
    let offsets: Vec<usize> = off
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")) as usize)
        .collect();
    let neighbors: Vec<VertexId> = nbr[..nbr_len * 4]
        .chunks_exact(4)
        .map(|c| VertexId::new(u32::from_le_bytes(c.try_into().expect("4-byte chunk"))))
        .collect();

    // CSR invariants: monotone offsets spanning exactly the neighbour
    // array, and every neighbour id in range.
    if offsets.first() != Some(&0) || offsets.last() != Some(&nbr_len) {
        return Err(SnapshotError::Format("offsets do not span the neighbors section".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Format("offsets are not monotone".into()));
    }
    if neighbors.iter().any(|v| v.index() >= n) {
        return Err(SnapshotError::Format("neighbour id out of range".into()));
    }
    Ok(Graph::from_csr_parts(labels, offsets, neighbors, m))
}

/// Saves `g` to `path` **atomically**: the snapshot is written to a
/// sibling temp file, flushed and fsynced, then renamed over `path`. A
/// crash (or error) mid-write leaves either the old snapshot or nothing —
/// never a torn file — and the failed temp file is cleaned up. Readers
/// concurrently loading `path` see the old or the new snapshot, whole.
pub fn save_snapshot(g: &Graph, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    // Unique per process so two writers never stomp each other's temp; the
    // final rename still serialises on the filesystem.
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let write = (|| {
        let file = File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        write_snapshot(g, &mut w)?;
        w.flush()?;
        // Durability before visibility: the bytes must be on disk before
        // the rename can expose them under the real name.
        w.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if write.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    write
}

/// Loads a graph previously written by [`save_snapshot`].
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Graph, SnapshotError> {
    read_snapshot(&mut BufReader::new(File::open(path)?))
}

/// When [`load_snapshot_mapped`] verifies the payload checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotVerify {
    /// Checksum the payload during load — a read-only pass over the
    /// mapping (still no copy) — and fail fast on mismatch.
    Eager,
    /// Defer the checksum to [`MappedSnapshot::verify`], letting restore
    /// return as soon as the structure is validated. Structural CSR
    /// invariants (offset monotonicity/span, neighbour ranges) are always
    /// checked at load, so an unverified graph can never index out of
    /// bounds — a deferred mismatch only means payload *values* may be
    /// corrupt.
    Lazy,
}

/// Memoized checksum verdict: `None` = payload matches, `Some(msg)` = the
/// mismatch message.
type VerifyThunk = Box<dyn Fn() -> Option<String> + Send + Sync>;

/// A snapshot loaded by [`load_snapshot_mapped`]: the [`Graph`] (borrowing
/// its CSR sections from the mapping where the platform supports it) plus
/// the deferred-verification handle.
pub struct MappedSnapshot {
    graph: Graph,
    verdict: OnceLock<Option<String>>,
    thunk: VerifyThunk,
}

impl std::fmt::Debug for MappedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedSnapshot")
            .field("vertices", &self.graph.vertex_count())
            .field("edges", &self.graph.edge_count())
            .field("verdict", &self.verdict.get())
            .finish()
    }
}

impl MappedSnapshot {
    /// A snapshot whose checksum was already verified during load (the
    /// eager and portable-fallback paths).
    fn verified(graph: Graph) -> Self {
        let verdict = OnceLock::new();
        let _ = verdict.set(None);
        MappedSnapshot {
            graph,
            verdict,
            thunk: Box::new(|| None),
        }
    }

    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    fn deferred(graph: Graph, thunk: VerifyThunk) -> Self {
        MappedSnapshot {
            graph,
            verdict: OnceLock::new(),
            thunk,
        }
    }

    /// The loaded graph. Usable before [`Self::verify`] — structure is
    /// validated at load — but an unverified lazy snapshot may carry
    /// corrupt payload values.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the handle, keeping the graph (the mapping stays alive
    /// inside the graph's sections). Skipping [`Self::verify`] forfeits
    /// corruption detection on a lazily-loaded snapshot.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Runs (or recalls) the checksum verification. Idempotent: the scan
    /// happens at most once and the verdict is memoized.
    pub fn verify(&self) -> Result<(), SnapshotError> {
        match self.verdict.get_or_init(|| (self.thunk)()) {
            None => Ok(()),
            Some(msg) => Err(SnapshotError::Format(msg.clone())),
        }
    }
}

#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
mod mapping {
    //! A minimal private read-only `mmap` of a whole file, bound directly
    //! (no libc crate: the workspace builds offline). Confined to
    //! 64-bit little-endian unix by the parent `cfg`, where `off_t` is
    //! `i64` and the on-disk little-endian sections can be viewed in
    //! place.

    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// A page-aligned private read-only mapping of `len` bytes of a file,
    /// unmapped on drop.
    pub(super) struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // Safety: the mapping is read-only and never written through; the
    // kernel keeps the pages valid until `munmap` in `Drop`.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps the first `len` (> 0) bytes of `file`.
        pub(super) fn of_file(file: &File, len: usize) -> std::io::Result<Mapping> {
            debug_assert!(len > 0, "mmap of zero bytes is invalid");
            // Safety: mapping `len` bytes of an open fd, read-only and
            // private; the result is checked against MAP_FAILED below.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        /// The mapped bytes.
        pub(super) fn bytes(&self) -> &[u8] {
            // Safety: `ptr` is valid for `len` read-only bytes until drop.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // Safety: exactly the pointer/length pair `mmap` returned.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Loads a snapshot zero-copy: the file is mapped read-only and the
/// returned [`Graph`] borrows its label/offset/neighbour sections from the
/// mapping ([`Graph::owned_csr_bytes`] is 0). Structure is always
/// validated; the checksum pass runs per `verify` (see [`SnapshotVerify`]).
#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
pub fn load_snapshot_mapped(
    path: impl AsRef<Path>,
    verify: SnapshotVerify,
) -> Result<MappedSnapshot, SnapshotError> {
    use crate::csr::Section;
    use std::any::Any;
    use std::sync::Arc;

    let truncated = |what: &str| SnapshotError::Format(format!("truncated reading {what}"));
    let file = File::open(path)?;
    let file_len = usize::try_from(file.metadata()?.len())
        .map_err(|_| SnapshotError::Format("snapshot exceeds the address space".into()))?;
    if file_len < HEADER_LEN {
        return Err(truncated("header"));
    }
    let map = Arc::new(mapping::Mapping::of_file(&file, file_len)?);
    let bytes = map.bytes();

    if bytes[..8] != MAGIC {
        return Err(SnapshotError::Format(
            "magic mismatch (not a FAST CSR snapshot)".into(),
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte field"));
    if version != VERSION {
        return Err(SnapshotError::Format(format!(
            "unsupported snapshot version {version} (expected {VERSION})"
        )));
    }
    let field = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte field"));
    let n = field(16) as usize;
    let m = field(24) as usize;
    let nbr_len = field(32) as usize;
    let stored = field(40);
    if m.checked_mul(2) != Some(nbr_len) {
        return Err(SnapshotError::Format(format!(
            "neighbors length {nbr_len} does not match 2·edges {}",
            2 * m as u64
        )));
    }

    // Section extents, overflow-checked: a bogus header must become a typed
    // error, not a wrapped offset.
    let sizes = (|| {
        let lab = n.checked_mul(2)?;
        let lab = lab.checked_add(pad_len(lab))?;
        let off = n.checked_add(1)?.checked_mul(8)?;
        let nbr = nbr_len.checked_mul(4)?;
        let nbr = nbr.checked_add(pad_len(nbr))?;
        let payload = lab.checked_add(off)?.checked_add(nbr)?;
        HEADER_LEN.checked_add(payload).map(|end| (lab, off, end))
    })();
    let Some((lab_bytes, off_bytes, payload_end)) = sizes else {
        return Err(SnapshotError::Format("section sizes overflow".into()));
    };
    if payload_end > file_len {
        return Err(truncated("payload sections"));
    }

    let lab_start = HEADER_LEN;
    let off_start = lab_start + lab_bytes;
    let nbr_start = off_start + off_bytes;
    // Safety: every range is inside the mapping (bounds-checked above) and
    // 8-aligned — the mapping base is page-aligned, the header is 48 bytes,
    // and every section length is a multiple of ALIGN. `Label`/`VertexId`
    // are `repr(transparent)` over `u16`/`u32`, and on this cfg (64-bit
    // little-endian) `usize` has the layout of the on-disk `u64`.
    let base = bytes.as_ptr();
    let labels_ptr = unsafe { base.add(lab_start) } as *const Label;
    let offsets_ptr = unsafe { base.add(off_start) } as *const usize;
    let neighbors_ptr = unsafe { base.add(nbr_start) } as *const VertexId;
    debug_assert_eq!(offsets_ptr.align_offset(ALIGN), 0);
    let offsets_view: &[usize] = unsafe { std::slice::from_raw_parts(offsets_ptr, n + 1) };
    let neighbors_view: &[VertexId] = unsafe { std::slice::from_raw_parts(neighbors_ptr, nbr_len) };

    if verify == SnapshotVerify::Eager {
        let mut fnv = Fnv::new();
        fnv.update(&bytes[HEADER_LEN..payload_end]);
        if fnv.0 != stored {
            return Err(SnapshotError::Format(format!(
                "checksum mismatch (stored {stored:#018x}, computed {:#018x})",
                fnv.0
            )));
        }
    }

    // Structural invariants are non-negotiable even for a lazy load: the
    // graph indexes through these arrays.
    if offsets_view.first() != Some(&0) || offsets_view.last() != Some(&nbr_len) {
        return Err(SnapshotError::Format(
            "offsets do not span the neighbors section".into(),
        ));
    }
    if offsets_view.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Format("offsets are not monotone".into()));
    }
    if neighbors_view.iter().any(|v| v.index() >= n) {
        return Err(SnapshotError::Format("neighbour id out of range".into()));
    }

    let keep: Arc<dyn Any + Send + Sync> = Arc::clone(&map) as Arc<dyn Any + Send + Sync>;
    let graph = Graph::from_csr_sections(
        Section::mapped(Arc::clone(&keep), labels_ptr, n),
        Section::mapped(Arc::clone(&keep), offsets_ptr, n + 1),
        Section::mapped(keep, neighbors_ptr, nbr_len),
        m,
    );
    Ok(match verify {
        SnapshotVerify::Eager => MappedSnapshot::verified(graph),
        SnapshotVerify::Lazy => MappedSnapshot::deferred(
            graph,
            Box::new(move || {
                let mut fnv = Fnv::new();
                fnv.update(&map.bytes()[HEADER_LEN..payload_end]);
                (fnv.0 != stored).then(|| {
                    format!(
                        "checksum mismatch (stored {stored:#018x}, computed {:#018x})",
                        fnv.0
                    )
                })
            }),
        ),
    })
}

/// Portable fallback for targets without the mapping fast path: loads via
/// the copying reader (which always verifies the checksum up front).
#[cfg(not(all(unix, target_endian = "little", target_pointer_width = "64")))]
pub fn load_snapshot_mapped(
    path: impl AsRef<Path>,
    _verify: SnapshotVerify,
) -> Result<MappedSnapshot, SnapshotError> {
    Ok(MappedSnapshot::verified(load_snapshot(path)?))
}

/// A structural fingerprint of `g`: FNV-1a over the exact byte sections a
/// snapshot stores. Two graphs fingerprint equal iff their CSR arrays are
/// identical — the round-trip witness the CI snapshot step checks.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let (lab, off, nbr) = encode_sections(g);
    let mut fnv = Fnv::new();
    fnv.update(&lab);
    fnv.update(&off);
    fnv.update(&nbr);
    fnv.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_labelled_graph;

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        write_snapshot(g, &mut buf).unwrap();
        read_snapshot(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_structure_and_fingerprint() {
        let g = random_labelled_graph(80, 0.15, 4, 7);
        let back = roundtrip(&g);
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.label_count(), g.label_count());
        for v in 0..g.vertex_count() {
            let v = VertexId::from_index(v);
            assert_eq!(back.label(v), g.label(v));
            assert_eq!(back.neighbors(v), g.neighbors(v));
        }
        assert_eq!(graph_fingerprint(&back), graph_fingerprint(&g));
    }

    #[test]
    fn fingerprint_separates_different_graphs() {
        let a = random_labelled_graph(50, 0.2, 3, 1);
        let b = random_labelled_graph(50, 0.2, 3, 2);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::from_csr_parts(Vec::new(), vec![0], Vec::new(), 0);
        let back = roundtrip(&g);
        assert_eq!(back.vertex_count(), 0);
        assert_eq!(back.edge_count(), 0);
    }

    #[test]
    fn corruption_is_detected() {
        let g = random_labelled_graph(40, 0.2, 2, 3);
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();

        // Flip one payload byte: checksum must catch it.
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let err = read_snapshot(&mut flipped.as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::Format(ref m) if m.contains("checksum")), "{err}");

        // Truncate: typed error, not a panic.
        let err = read_snapshot(&mut buf[..buf.len() / 2].to_vec().as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::Format(ref m) if m.contains("truncated")), "{err}");

        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        let err = read_snapshot(&mut bad.as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::Format(ref m) if m.contains("magic")), "{err}");
    }

    #[test]
    fn save_is_atomic_over_an_existing_snapshot() {
        let old = random_labelled_graph(60, 0.2, 3, 5);
        let new = random_labelled_graph(60, 0.2, 3, 6);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("fast-snap-atomic-{}.bin", std::process::id()));
        save_snapshot(&old, &path).unwrap();

        // A failed save must leave the previous snapshot intact and clean
        // up its temp file. Simulate the failure by making the temp path
        // uncreatable: a directory already squats on it.
        let tmp = {
            let mut t = path.as_os_str().to_owned();
            t.push(format!(".tmp.{}", std::process::id()));
            std::path::PathBuf::from(t)
        };
        std::fs::create_dir(&tmp).unwrap();
        let err = save_snapshot(&new, &path).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err}");
        std::fs::remove_dir(&tmp).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(
            graph_fingerprint(&back),
            graph_fingerprint(&old),
            "a failed save must not tear the existing snapshot"
        );

        // A successful save replaces it whole and leaves no temp litter.
        save_snapshot(&new, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(graph_fingerprint(&back), graph_fingerprint(&new));
        assert!(!tmp.exists(), "temp file renamed away, not left behind");

        // Torn-write witness: a prefix of a snapshot (what a non-atomic
        // writer could leave after a crash) is rejected as truncated by
        // the loader — the rename protocol exists so this is never seen.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(matches!(err, SnapshotError::Format(ref m) if m.contains("truncated")), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_load_is_zero_copy_and_fingerprint_identical() {
        let g = random_labelled_graph(80, 0.15, 4, 7);
        let path = std::env::temp_dir().join(format!("fast-snap-mapped-{}.bin", std::process::id()));
        save_snapshot(&g, &path).unwrap();

        let snap = load_snapshot_mapped(&path, SnapshotVerify::Eager).unwrap();
        snap.verify().expect("eager load is already verified");
        let back = snap.graph();
        assert_eq!(graph_fingerprint(back), graph_fingerprint(&g));
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for v in 0..g.vertex_count() {
            let v = VertexId::from_index(v);
            assert_eq!(back.label(v), g.label(v));
            assert_eq!(back.neighbors(v), g.neighbors(v));
        }

        // The no-copy witness: a built graph owns its CSR arrays, a mapped
        // one borrows every stored section from the mapping — clones
        // included (an Arc bump, not an array copy).
        assert!(g.owned_csr_bytes() > 0);
        #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
        {
            assert_eq!(back.owned_csr_bytes(), 0, "mapped load must not copy CSR sections");
            assert_eq!(back.clone().owned_csr_bytes(), 0);
        }

        // The graph outlives the handle (the mapping rides inside it).
        let owned_out = snap.into_graph();
        std::fs::remove_file(&path).ok();
        assert_eq!(graph_fingerprint(&owned_out), graph_fingerprint(&g));
    }

    #[test]
    fn mapped_empty_graph_roundtrips() {
        let g = Graph::from_csr_parts(Vec::new(), vec![0], Vec::new(), 0);
        let path = std::env::temp_dir().join(format!("fast-snap-mapped-empty-{}.bin", std::process::id()));
        save_snapshot(&g, &path).unwrap();
        let snap = load_snapshot_mapped(&path, SnapshotVerify::Lazy).unwrap();
        assert_eq!(snap.graph().vertex_count(), 0);
        snap.verify().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_load_detects_truncation_and_magic() {
        let g = random_labelled_graph(40, 0.2, 2, 3);
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        let path = std::env::temp_dir().join(format!("fast-snap-mapped-bad-{}.bin", std::process::id()));

        std::fs::write(&path, &buf[..buf.len() / 2]).unwrap();
        let err = load_snapshot_mapped(&path, SnapshotVerify::Eager).unwrap_err();
        assert!(matches!(err, SnapshotError::Format(ref m) if m.contains("truncated")), "{err}");

        let mut bad = buf.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        let err = load_snapshot_mapped(&path, SnapshotVerify::Lazy).unwrap_err();
        assert!(matches!(err, SnapshotError::Format(ref m) if m.contains("magic")), "{err}");

        std::fs::remove_file(&path).ok();
        let err = load_snapshot_mapped(&path, SnapshotVerify::Eager).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err}");
    }

    /// Lazy verification semantics only exist where the mapping fast path
    /// does; the fallback loader verifies eagerly regardless of the flag.
    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    #[test]
    fn mapped_lazy_defers_checksum_but_catches_corruption() {
        let g = random_labelled_graph(40, 0.2, 2, 3);
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        // Flip a *label* byte: structurally valid (any u16 is a label), so
        // only the checksum can catch it.
        buf[HEADER_LEN] ^= 0x01;
        let path = std::env::temp_dir().join(format!("fast-snap-mapped-lazy-{}.bin", std::process::id()));
        std::fs::write(&path, &buf).unwrap();

        let err = load_snapshot_mapped(&path, SnapshotVerify::Eager).unwrap_err();
        assert!(matches!(err, SnapshotError::Format(ref m) if m.contains("checksum")), "{err}");

        let snap = load_snapshot_mapped(&path, SnapshotVerify::Lazy).expect("lazy load defers the checksum");
        assert_eq!(snap.graph().vertex_count(), g.vertex_count());
        let err = snap.verify().unwrap_err();
        assert!(matches!(err, SnapshotError::Format(ref m) if m.contains("checksum")), "{err}");
        // Memoized: the second call recalls the verdict.
        assert!(snap.verify().is_err());
        std::fs::remove_file(&path).ok();
    }

    /// Structural invariants hold even when the checksum pass is deferred:
    /// a snapshot with a *valid* checksum but corrupt offsets is rejected
    /// at load.
    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    #[test]
    fn mapped_lazy_still_rejects_structural_corruption() {
        let g = random_labelled_graph(30, 0.2, 2, 9);
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        let n = g.vertex_count();
        let off_start = HEADER_LEN + n * 2 + pad_len(n * 2);
        // offsets[0] must be 0; make it 1 and re-seal the checksum so only
        // the structural check can object.
        buf[off_start] = 1;
        let mut fnv = Fnv::new();
        fnv.update(&buf[HEADER_LEN..]);
        buf[40..48].copy_from_slice(&fnv.0.to_le_bytes());
        let path = std::env::temp_dir().join(format!("fast-snap-mapped-struct-{}.bin", std::process::id()));
        std::fs::write(&path, &buf).unwrap();
        let err = load_snapshot_mapped(&path, SnapshotVerify::Lazy).unwrap_err();
        assert!(matches!(err, SnapshotError::Format(ref m) if m.contains("offsets")), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_and_load_files() {
        let g = random_labelled_graph(60, 0.2, 3, 4);
        let path = std::env::temp_dir().join(format!(
            "fast-snap-test-{}.bin",
            std::process::id()
        ));
        save_snapshot(&g, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(graph_fingerprint(&back), graph_fingerprint(&g));
        std::fs::remove_file(&path).ok();
        let err = load_snapshot(&path).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err}");
    }
}
