//! Synthetic data-graph generators.
//!
//! The paper evaluates on LDBC-SNB social networks (Table III). Without the
//! LDBC toolchain, [`ldbc`] generates a schema-faithful synthetic social
//! network with the same 11 labels, power-law activity/popularity skew, and a
//! scale-factor ladder preserving the paper's 1 : 3 : 10 : 60 dataset ratios.
//! [`random`] provides labelled Erdős–Rényi and power-law graphs for tests
//! and property-based fuzzing.

pub mod ldbc;
pub mod random;

pub use ldbc::{generate_ldbc, label_name, labels, LdbcParams};
pub use random::{random_labelled_graph, random_power_law_graph};
