//! Random labelled graphs for tests and property-based fuzzing.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::types::{Label, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Labelled Erdős–Rényi graph: `n` vertices, each of the `n*(n-1)/2`
/// possible edges present with probability `p`, labels uniform in
/// `0..num_labels`.
pub fn random_labelled_graph(n: usize, p: f64, num_labels: u16, seed: u64) -> Graph {
    assert!(num_labels > 0, "need at least one label");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, ((n * n) as f64 * p / 2.0) as usize);
    for _ in 0..n {
        b.add_vertex(Label::new(rng.gen_range(0..num_labels)));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(VertexId::from_index(i), VertexId::from_index(j))
                    .unwrap();
            }
        }
    }
    b.build()
}

/// Labelled power-law graph via preferential attachment: each new vertex
/// attaches `m` edges to earlier vertices chosen degree-proportionally.
pub fn random_power_law_graph(n: usize, m: usize, num_labels: u16, seed: u64) -> Graph {
    assert!(num_labels > 0, "need at least one label");
    assert!(m >= 1, "attachment count must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m);
    for _ in 0..n {
        b.add_vertex(Label::new(rng.gen_range(0..num_labels)));
    }
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    let seedlings = n.min(m + 1);
    for i in 0..seedlings {
        for j in 0..i {
            b.add_edge(VertexId::from_index(i), VertexId::from_index(j))
                .unwrap();
            endpoints.push(i as u32);
            endpoints.push(j as u32);
        }
    }
    for i in seedlings..n {
        let mut added = 0;
        let mut guard = 0;
        while added < m && guard < 10 * m {
            guard += 1;
            let t = if endpoints.is_empty() {
                rng.gen_range(0..i) as u32
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if t as usize != i {
                b.add_edge(VertexId::from_index(i), VertexId::new(t)).unwrap();
                endpoints.push(i as u32);
                endpoints.push(t);
                added += 1;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_graph_shape() {
        let g = random_labelled_graph(50, 0.2, 4, 1);
        assert_eq!(g.vertex_count(), 50);
        assert!(g.edge_count() > 0);
        assert!(g.label_count() <= 4);
    }

    #[test]
    fn er_graph_deterministic() {
        let g1 = random_labelled_graph(30, 0.3, 3, 9);
        let g2 = random_labelled_graph(30, 0.3, 3, 9);
        assert_eq!(g1.edge_count(), g2.edge_count());
        for v in g1.vertices() {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn power_law_graph_has_skew() {
        let g = random_power_law_graph(500, 3, 2, 4);
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
    }

    #[test]
    fn zero_probability_gives_no_edges() {
        let g = random_labelled_graph(10, 0.0, 2, 0);
        assert_eq!(g.edge_count(), 0);
    }
}
