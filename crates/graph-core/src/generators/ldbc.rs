//! LDBC-SNB-like social-network generator.
//!
//! Reproduces the *shape* of the paper's datasets (Table III): 11 vertex
//! labels, hub-dominated degree distribution (cities, popular tags, prolific
//! creators), and message volume that dwarfs the person count — while staying
//! laptop-scale. The scale factor plays the role of the paper's `DGx` suffix;
//! see [`crate::datasets`] for the ladder used in the experiments.
//!
//! Schema (11 labels, matching LDBC SNB's node types):
//!
//! | label | entity | connected to |
//! |-------|--------|--------------|
//! | 0 | Person | Person (knows), City, Forum, University, Company |
//! | 1 | City | Country |
//! | 2 | Country | Continent |
//! | 3 | Continent | |
//! | 4 | Forum | Person (moderator/member), Post (container), Tag |
//! | 5 | Post | Person (creator), Tag |
//! | 6 | Comment | Person (creator), Post/Comment (replyOf), Tag |
//! | 7 | Tag | TagClass |
//! | 8 | TagClass | TagClass (subclass) |
//! | 9 | University | City |
//! | 10 | Company | Country |

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::types::{Label, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The 11 LDBC SNB vertex labels.
pub mod labels {
    use crate::types::Label;

    pub const PERSON: Label = Label::new(0);
    pub const CITY: Label = Label::new(1);
    pub const COUNTRY: Label = Label::new(2);
    pub const CONTINENT: Label = Label::new(3);
    pub const FORUM: Label = Label::new(4);
    pub const POST: Label = Label::new(5);
    pub const COMMENT: Label = Label::new(6);
    pub const TAG: Label = Label::new(7);
    pub const TAG_CLASS: Label = Label::new(8);
    pub const UNIVERSITY: Label = Label::new(9);
    pub const COMPANY: Label = Label::new(10);

    /// Number of labels in the schema (Table III reports 11).
    pub const COUNT: usize = 11;
}

/// Human-readable name of a schema label.
pub fn label_name(l: Label) -> &'static str {
    match l.raw() {
        0 => "Person",
        1 => "City",
        2 => "Country",
        3 => "Continent",
        4 => "Forum",
        5 => "Post",
        6 => "Comment",
        7 => "Tag",
        8 => "TagClass",
        9 => "University",
        10 => "Company",
        _ => "Unknown",
    }
}

/// Tunable knobs of the generator.
///
/// Defaults reproduce LDBC-SNB proportions at mini scale: `scale_factor = 1.0`
/// corresponds to the repository's scaled-down `DG01`.
#[derive(Debug, Clone)]
pub struct LdbcParams {
    /// Multiplies the per-entity counts; the `x` of `DGx` (relative scale).
    pub scale_factor: f64,
    /// Persons at scale factor 1.
    pub persons_base: usize,
    /// Posts per person (LDBC SF1 has ~1M posts for ~9K persons ≈ 110; we use
    /// a smaller multiplier to keep the mini scale balanced).
    pub posts_per_person: f64,
    /// Comments per person.
    pub comments_per_person: f64,
    /// Average `knows` degree between persons.
    pub avg_knows_degree: f64,
    /// Forums per person.
    pub forums_per_person: f64,
    /// Average forum membership.
    pub avg_forum_members: f64,
    /// Average tags per post.
    pub avg_tags_per_post: f64,
    /// Probability a comment carries a tag.
    pub comment_tag_prob: f64,
    /// Fixed dictionary sizes (like LDBC's place/tag dictionaries, these do
    /// not grow with the scale factor).
    pub cities: usize,
    pub countries: usize,
    pub continents: usize,
    pub tags: usize,
    pub tag_classes: usize,
    pub universities: usize,
    pub companies: usize,
    /// Zipf skew of popularity distributions (cities, tags, reply targets).
    pub zipf_exponent: f64,
}

impl Default for LdbcParams {
    fn default() -> Self {
        LdbcParams {
            scale_factor: 1.0,
            persons_base: 900,
            posts_per_person: 11.0,
            comments_per_person: 24.0,
            avg_knows_degree: 16.0,
            forums_per_person: 0.5,
            avg_forum_members: 30.0,
            avg_tags_per_post: 2.5,
            comment_tag_prob: 0.6,
            cities: 150,
            countries: 30,
            continents: 6,
            tags: 400,
            tag_classes: 20,
            universities: 50,
            companies: 80,
            zipf_exponent: 0.9,
        }
    }
}

impl LdbcParams {
    /// Parameters for a given scale factor with all other knobs at default.
    pub fn with_scale_factor(sf: f64) -> Self {
        LdbcParams {
            scale_factor: sf,
            ..Default::default()
        }
    }

    fn persons(&self) -> usize {
        ((self.persons_base as f64) * self.scale_factor).round().max(2.0) as usize
    }
}

/// Draws from a Zipf-like distribution over `0..n` with exponent `s`,
/// using a precomputed cumulative weight table.
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < x)
    }
}

/// Generates a deterministic LDBC-like social network.
///
/// Two calls with equal `params` and `seed` produce identical graphs.
pub fn generate_ldbc(params: &LdbcParams, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let persons = params.persons();
    let posts = ((persons as f64) * params.posts_per_person).round() as usize;
    let comments = ((persons as f64) * params.comments_per_person).round() as usize;
    let forums = ((persons as f64) * params.forums_per_person).round().max(1.0) as usize;

    let approx_edges = (persons as f64 * params.avg_knows_degree / 2.0) as usize
        + persons * 3
        + posts * (2 + params.avg_tags_per_post as usize)
        + comments * 3
        + forums * (params.avg_forum_members as usize + 2);
    let total_vertices = persons
        + params.cities
        + params.countries
        + params.continents
        + forums
        + posts
        + comments
        + params.tags
        + params.tag_classes
        + params.universities
        + params.companies;
    let mut b = GraphBuilder::with_capacity(total_vertices, approx_edges);

    // --- Vertices (contiguous id ranges per label). ---
    let person0 = b.add_vertices(persons, labels::PERSON);
    let city0 = b.add_vertices(params.cities, labels::CITY);
    let country0 = b.add_vertices(params.countries, labels::COUNTRY);
    let continent0 = b.add_vertices(params.continents, labels::CONTINENT);
    let forum0 = b.add_vertices(forums, labels::FORUM);
    let post0 = b.add_vertices(posts, labels::POST);
    let comment0 = b.add_vertices(comments, labels::COMMENT);
    let tag0 = b.add_vertices(params.tags, labels::TAG);
    let tagclass0 = b.add_vertices(params.tag_classes, labels::TAG_CLASS);
    let univ0 = b.add_vertices(params.universities, labels::UNIVERSITY);
    let company0 = b.add_vertices(params.companies, labels::COMPANY);

    let vid = |base: VertexId, i: usize| VertexId::new(base.raw() + i as u32);

    // --- Place hierarchy: city → country → continent. ---
    for c in 0..params.cities {
        let country = c % params.countries;
        b.add_edge(vid(city0, c), vid(country0, country)).unwrap();
    }
    for c in 0..params.countries {
        b.add_edge(vid(country0, c), vid(continent0, c % params.continents))
            .unwrap();
    }

    // --- Tag hierarchy: tag → tagclass; tagclass subclass chain. ---
    let tagclass_zipf = ZipfSampler::new(params.tag_classes, params.zipf_exponent);
    for t in 0..params.tags {
        let tc = tagclass_zipf.sample(&mut rng);
        b.add_edge(vid(tag0, t), vid(tagclass0, tc)).unwrap();
    }
    for tc in 1..params.tag_classes {
        // Shallow forest: subclass of a random earlier class.
        let sup = rng.gen_range(0..tc);
        b.add_edge(vid(tagclass0, tc), vid(tagclass0, sup)).unwrap();
    }

    // --- Universities / companies attach to places. ---
    for u in 0..params.universities {
        b.add_edge(vid(univ0, u), vid(city0, u % params.cities)).unwrap();
    }
    for c in 0..params.companies {
        b.add_edge(vid(company0, c), vid(country0, c % params.countries))
            .unwrap();
    }

    // --- Persons: location (Zipf over cities), study, work. ---
    let city_zipf = ZipfSampler::new(params.cities, params.zipf_exponent);
    let mut person_city = Vec::with_capacity(persons);
    for p in 0..persons {
        let city = city_zipf.sample(&mut rng);
        person_city.push(city);
        b.add_edge(vid(person0, p), vid(city0, city)).unwrap();
        if rng.gen_bool(0.8) {
            let u = rng.gen_range(0..params.universities);
            b.add_edge(vid(person0, p), vid(univ0, u)).unwrap();
        }
        if rng.gen_bool(0.9) {
            let c = rng.gen_range(0..params.companies);
            b.add_edge(vid(person0, p), vid(company0, c)).unwrap();
        }
    }

    // --- knows graph: preferential attachment (Barabási–Albert style),
    //     biased toward same-city persons, giving the social hub structure
    //     real LDBC data exhibits. ---
    let m = (params.avg_knows_degree / 2.0).round().max(1.0) as usize;
    // Endpoint multiset for degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(persons * m * 2);
    for p in 0..persons.min(m + 1) {
        for q in 0..p {
            b.add_edge(vid(person0, p), vid(person0, q)).unwrap();
            endpoints.push(p as u32);
            endpoints.push(q as u32);
        }
    }
    for p in (m + 1)..persons {
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < m && guard < 10 * m {
            guard += 1;
            let q = if rng.gen_bool(0.2) {
                // Same-city bias: pick a random earlier person from this city
                // if one exists (linear probe over a few random draws).
                let mut probe = rng.gen_range(0..p);
                let mut tries = 0;
                while person_city[probe] != person_city[p] && tries < 8 {
                    probe = rng.gen_range(0..p);
                    tries += 1;
                }
                probe as u32
            } else if endpoints.is_empty() {
                rng.gen_range(0..p) as u32
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if q as usize != p {
                b.add_edge(vid(person0, p), VertexId::new(person0.raw() + q))
                    .unwrap();
                endpoints.push(p as u32);
                endpoints.push(q);
                added += 1;
            }
        }
    }

    // --- Activity skew: prolific creators follow a Zipf over persons. ---
    let person_zipf = ZipfSampler::new(persons, params.zipf_exponent);
    let tag_zipf = ZipfSampler::new(params.tags, params.zipf_exponent);

    // --- Forums: moderator + members (friends-biased). ---
    for f in 0..forums {
        let moderator = person_zipf.sample(&mut rng);
        b.add_edge(vid(forum0, f), vid(person0, moderator)).unwrap();
        let member_count = 1 + rng.gen_range(0..(2.0 * params.avg_forum_members) as usize + 1);
        for _ in 0..member_count {
            let p = person_zipf.sample(&mut rng);
            b.add_edge(vid(forum0, f), vid(person0, p)).unwrap();
        }
        if rng.gen_bool(0.7) {
            let t = tag_zipf.sample(&mut rng);
            b.add_edge(vid(forum0, f), vid(tag0, t)).unwrap();
        }
    }

    // --- Posts: creator, container forum, tags. ---
    for po in 0..posts {
        let creator = person_zipf.sample(&mut rng);
        b.add_edge(vid(post0, po), vid(person0, creator)).unwrap();
        let f = rng.gen_range(0..forums);
        b.add_edge(vid(post0, po), vid(forum0, f)).unwrap();
        let ntags = sample_count(&mut rng, params.avg_tags_per_post);
        for _ in 0..ntags {
            let t = tag_zipf.sample(&mut rng);
            b.add_edge(vid(post0, po), vid(tag0, t)).unwrap();
        }
    }

    // --- Comments: creator, replyOf (post or earlier comment, Zipf-biased
    //     toward popular posts), optional tag. ---
    let post_zipf = ZipfSampler::new(posts.max(1), params.zipf_exponent);
    for co in 0..comments {
        let creator = person_zipf.sample(&mut rng);
        b.add_edge(vid(comment0, co), vid(person0, creator)).unwrap();
        // 70% reply to a post, 30% to an earlier comment (thread depth).
        if co == 0 || rng.gen_bool(0.7) {
            if posts > 0 {
                let p = post_zipf.sample(&mut rng);
                b.add_edge(vid(comment0, co), vid(post0, p)).unwrap();
            }
        } else {
            let parent = rng.gen_range(0..co);
            b.add_edge(vid(comment0, co), vid(comment0, parent)).unwrap();
        }
        if rng.gen_bool(params.comment_tag_prob) {
            let t = tag_zipf.sample(&mut rng);
            b.add_edge(vid(comment0, co), vid(tag0, t)).unwrap();
        }
    }

    b.build()
}

/// Samples a small non-negative count with the given mean (geometric-ish mix
/// keeping the tail short).
fn sample_count<R: Rng>(rng: &mut R, mean: f64) -> usize {
    let base = mean.floor() as usize;
    let frac = mean - base as f64;
    base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> LdbcParams {
        LdbcParams {
            scale_factor: 0.1,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = tiny_params();
        let g1 = generate_ldbc(&p, 42);
        let g2 = generate_ldbc(&p, 42);
        assert_eq!(g1.vertex_count(), g2.vertex_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        // Spot-check some adjacency lists.
        for v in [0u32, 10, 100].map(VertexId::new) {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = tiny_params();
        let g1 = generate_ldbc(&p, 1);
        let g2 = generate_ldbc(&p, 2);
        // Same vertex counts (structure is deterministic in params) but the
        // wiring should differ.
        assert_eq!(g1.vertex_count(), g2.vertex_count());
        let differs = g1.vertices().any(|v| g1.neighbors(v) != g2.neighbors(v));
        assert!(differs);
    }

    #[test]
    fn has_all_eleven_labels() {
        let g = generate_ldbc(&tiny_params(), 7);
        assert_eq!(g.label_count(), labels::COUNT);
        for l in 0..labels::COUNT {
            assert!(
                !g.vertices_with_label(Label::new(l as u16)).is_empty(),
                "label {l} missing"
            );
        }
    }

    #[test]
    fn scale_factor_scales_persons_and_messages() {
        let small = generate_ldbc(&LdbcParams::with_scale_factor(0.1), 3);
        let large = generate_ldbc(&LdbcParams::with_scale_factor(0.3), 3);
        let persons = |g: &Graph| g.vertices_with_label(labels::PERSON).len();
        let comments = |g: &Graph| g.vertices_with_label(labels::COMMENT).len();
        assert!(persons(&large) > 2 * persons(&small));
        assert!(comments(&large) > 2 * comments(&small));
        // Dictionary entities stay fixed, like LDBC's.
        assert_eq!(
            small.vertices_with_label(labels::CITY).len(),
            large.vertices_with_label(labels::CITY).len()
        );
    }

    #[test]
    fn degree_distribution_has_hubs() {
        let g = generate_ldbc(&LdbcParams::with_scale_factor(0.5), 11);
        // Hub-dominated: the max degree should far exceed the average, as in
        // Table III (e.g. DG01: avg 10.8 vs max 464K).
        assert!(
            (g.max_degree() as f64) > 20.0 * g.avg_degree(),
            "max {} vs avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn zipf_sampler_is_skewed() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] && counts[0] > counts[99]);
        assert!(counts[0] > 500, "rank-0 mass too small: {}", counts[0]);
    }

    #[test]
    fn sample_count_mean_is_close() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_count(&mut rng, 1.7)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.7).abs() < 0.05, "mean {mean}");
    }
}
