//! Snapshot study (`snapshot` figure target): what the binary CSR snapshot
//! buys at tenant-load time. For each dataset on the ladder, the graph is
//! generated once (the "build" a restart would otherwise repeat), saved,
//! loaded back, and fingerprint-checked; the table compares generator wall
//! to snapshot load wall and reports the on-disk size.

use graph_core::{graph_fingerprint, load_snapshot, save_snapshot, DatasetId};
use std::time::{Duration, Instant};

/// One dataset's round-trip measurements.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: DatasetId,
    pub vertices: usize,
    pub edges: usize,
    /// Wall time of the generator build (what the snapshot path skips).
    pub build: Duration,
    pub save: Duration,
    pub load: Duration,
    /// Snapshot size on disk.
    pub bytes: u64,
    /// Whether the loaded graph fingerprints identical to the original.
    pub roundtrip_ok: bool,
}

/// Measures the snapshot round-trip on each dataset in `ladder`.
pub fn run(ladder: &[DatasetId]) -> Vec<Row> {
    ladder
        .iter()
        .map(|&dataset| {
            // Generate fresh (never from the shared cache): the row
            // compares generation wall to snapshot-load wall.
            let t0 = Instant::now();
            let g = dataset.generate();
            let build = t0.elapsed();
            let path = std::env::temp_dir().join(format!(
                "fast-sm-snapshot-{dataset}-{}.bin",
                std::process::id()
            ));
            let t0 = Instant::now();
            save_snapshot(&g, &path).expect("snapshot write");
            let save = t0.elapsed();
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let t0 = Instant::now();
            let loaded = load_snapshot(&path).expect("snapshot read");
            let load = t0.elapsed();
            std::fs::remove_file(&path).ok();
            let roundtrip_ok = graph_fingerprint(&loaded) == graph_fingerprint(&g);
            assert!(roundtrip_ok, "{dataset}: snapshot round-trip changed the graph");
            Row {
                dataset,
                vertices: g.vertex_count(),
                edges: g.edge_count(),
                build,
                save,
                load,
                bytes,
                roundtrip_ok,
            }
        })
        .collect()
}

/// Renders the round-trip table.
pub fn render(rows: &[Row]) -> String {
    let header: Vec<String> = [
        "dataset", "|V|", "|E|", "build", "save", "load", "size", "speedup", "roundtrip",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let speedup = if r.load.as_secs_f64() > 0.0 {
                format!("{:.1}x", r.build.as_secs_f64() / r.load.as_secs_f64())
            } else {
                "-".to_string()
            };
            vec![
                r.dataset.to_string(),
                graph_core::format_count(r.vertices),
                graph_core::format_count(r.edges),
                format!("{:.1?}", r.build),
                format!("{:.1?}", r.save),
                format!("{:.1?}", r.load),
                format!("{:.1} MiB", r.bytes as f64 / (1024.0 * 1024.0)),
                speedup,
                if r.roundtrip_ok { "ok" } else { "MISMATCH" }.to_string(),
            ]
        })
        .collect();
    format!(
        "Binary CSR snapshot round-trip (tenant load path: load replaces build on restart)\n{}",
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The snapshot acceptance bar: loading preserves the graph
    /// bit-for-bit and is cheaper than regenerating it.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug: generates DG01 twice; covered by the release-mode CI step"
    )]
    fn roundtrip_is_faithful_and_faster_than_build() {
        let rows = run(&[DatasetId::Dg01]);
        let r = &rows[0];
        assert!(r.roundtrip_ok, "fingerprint mismatch after round-trip");
        assert!(r.bytes > 0);
        assert!(
            r.load < r.build,
            "loading ({:?}) should beat regenerating ({:?})",
            r.load,
            r.build
        );
    }
}
