//! Snapshot study (`snapshot` figure target): what the binary CSR snapshot
//! buys at tenant-load time. For each dataset on the ladder, the graph is
//! generated once (the "build" a restart would otherwise repeat), saved,
//! loaded back, and fingerprint-checked; the table compares generator wall
//! to snapshot load wall — for both the copying reader and the zero-copy
//! `mmap` path (eager and lazy checksum) — and reports the on-disk size
//! plus how many CSR bytes the mapped load actually copied (0 on the
//! mapping fast path).

use graph_core::{
    graph_fingerprint, load_snapshot, load_snapshot_mapped, save_snapshot, DatasetId,
    SnapshotVerify,
};
use std::time::{Duration, Instant};

/// One dataset's round-trip measurements.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: DatasetId,
    pub vertices: usize,
    pub edges: usize,
    /// Wall time of the generator build (what the snapshot path skips).
    pub build: Duration,
    pub save: Duration,
    /// Copying-reader load wall.
    pub load: Duration,
    /// Zero-copy load wall with the checksum verified during load.
    pub mmap_eager: Duration,
    /// Zero-copy load wall with the checksum deferred (restore returns as
    /// soon as the structure validates; `verify` runs afterwards).
    pub mmap_lazy: Duration,
    /// CSR bytes the mapped load copied — 0 on the mapping fast path, the
    /// full section size on the portable fallback.
    pub mmap_owned_bytes: usize,
    /// Snapshot size on disk.
    pub bytes: u64,
    /// Whether the loaded graph fingerprints identical to the original.
    pub roundtrip_ok: bool,
}

/// Measures the snapshot round-trip on each dataset in `ladder`.
pub fn run(ladder: &[DatasetId]) -> Vec<Row> {
    ladder
        .iter()
        .map(|&dataset| {
            // Generate fresh (never from the shared cache): the row
            // compares generation wall to snapshot-load wall.
            let t0 = Instant::now();
            let g = dataset.generate();
            let build = t0.elapsed();
            let path = std::env::temp_dir().join(format!(
                "fast-sm-snapshot-{dataset}-{}.bin",
                std::process::id()
            ));
            let t0 = Instant::now();
            save_snapshot(&g, &path).expect("snapshot write");
            let save = t0.elapsed();
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let t0 = Instant::now();
            let loaded = load_snapshot(&path).expect("snapshot read");
            let load = t0.elapsed();
            let fingerprint = graph_fingerprint(&g);
            // The mmap ladder: eager verifies during load; lazy returns
            // first and pays the checksum pass afterwards (both walls
            // include a fingerprint touch of every mapped section, so the
            // page-fault cost of actually *reading* the graph is charged
            // to the load, not hidden).
            let t0 = Instant::now();
            let eager = load_snapshot_mapped(&path, SnapshotVerify::Eager)
                .expect("mapped eager read")
                .into_graph();
            assert_eq!(
                graph_fingerprint(&eager),
                fingerprint,
                "{dataset}: eager mapped load changed the graph"
            );
            let mmap_eager = t0.elapsed();
            let mmap_owned_bytes = eager.owned_csr_bytes();
            let t0 = Instant::now();
            let lazy = load_snapshot_mapped(&path, SnapshotVerify::Lazy)
                .expect("mapped lazy read");
            lazy.verify().expect("deferred checksum");
            let lazy = lazy.into_graph();
            assert_eq!(
                graph_fingerprint(&lazy),
                fingerprint,
                "{dataset}: lazy mapped load changed the graph"
            );
            let mmap_lazy = t0.elapsed();
            std::fs::remove_file(&path).ok();
            let roundtrip_ok = graph_fingerprint(&loaded) == fingerprint;
            assert!(roundtrip_ok, "{dataset}: snapshot round-trip changed the graph");
            Row {
                dataset,
                vertices: g.vertex_count(),
                edges: g.edge_count(),
                build,
                save,
                load,
                mmap_eager,
                mmap_lazy,
                mmap_owned_bytes,
                bytes,
                roundtrip_ok,
            }
        })
        .collect()
}

/// Renders the round-trip table.
pub fn render(rows: &[Row]) -> String {
    let header: Vec<String> = [
        "dataset", "|V|", "|E|", "build", "save", "load", "mmap eager", "mmap lazy",
        "copied", "size", "speedup", "roundtrip",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let speedup = if r.load.as_secs_f64() > 0.0 {
                format!("{:.1}x", r.build.as_secs_f64() / r.load.as_secs_f64())
            } else {
                "-".to_string()
            };
            vec![
                r.dataset.to_string(),
                graph_core::format_count(r.vertices),
                graph_core::format_count(r.edges),
                format!("{:.1?}", r.build),
                format!("{:.1?}", r.save),
                format!("{:.1?}", r.load),
                format!("{:.1?}", r.mmap_eager),
                format!("{:.1?}", r.mmap_lazy),
                if r.mmap_owned_bytes == 0 {
                    "0 (zero-copy)".to_string()
                } else {
                    format!("{:.1} MiB", r.mmap_owned_bytes as f64 / (1024.0 * 1024.0))
                },
                format!("{:.1} MiB", r.bytes as f64 / (1024.0 * 1024.0)),
                speedup,
                if r.roundtrip_ok { "ok" } else { "MISMATCH" }.to_string(),
            ]
        })
        .collect();
    format!(
        "Binary CSR snapshot round-trip (tenant load path: load replaces build on restart; \
         mmap columns are the zero-copy loader with eager vs deferred checksum, \
         'copied' is the CSR bytes the mapped graph owns — 0 means it borrows the mapping)\n{}",
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The snapshot acceptance bar: loading preserves the graph
    /// bit-for-bit and is cheaper than regenerating it.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug: generates DG01 twice; covered by the release-mode CI step"
    )]
    fn roundtrip_is_faithful_and_faster_than_build() {
        let rows = run(&[DatasetId::Dg01]);
        let r = &rows[0];
        assert!(r.roundtrip_ok, "fingerprint mismatch after round-trip");
        assert!(r.bytes > 0);
        assert!(
            r.load < r.build,
            "loading ({:?}) should beat regenerating ({:?})",
            r.load,
            r.build
        );
        assert!(
            r.mmap_eager < r.build,
            "mapped loading ({:?}) should beat regenerating ({:?})",
            r.mmap_eager,
            r.build
        );
        #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
        assert_eq!(
            r.mmap_owned_bytes, 0,
            "the mapping fast path must not copy CSR sections"
        );
    }
}
