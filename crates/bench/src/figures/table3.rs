//! Table III: characteristics of datasets.

use crate::harness::DatasetCache;
use graph_core::{DatasetId, GraphStats};

/// Computes the Table III rows for all datasets.
pub fn run(cache: &mut DatasetCache) -> Vec<GraphStats> {
    DatasetId::ALL
        .iter()
        .map(|&d| GraphStats::compute(d.name(), cache.get(d)))
        .collect()
}

/// Renders the table in the paper's format.
pub fn render(rows: &[GraphStats]) -> String {
    let mut out = String::from("Table III: characteristics of datasets (scaled ladder)\n");
    out.push_str(&GraphStats::table_header());
    out.push('\n');
    for r in rows {
        out.push_str(&r.table_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_monotone_and_eleven_labels() {
        let mut cache = DatasetCache::new();
        // Only the two smallest to keep the test fast.
        let a = GraphStats::compute("DG01", cache.get(DatasetId::Dg01));
        let b = GraphStats::compute("DG03", cache.get(DatasetId::Dg03));
        assert!(b.vertices > 2 * a.vertices);
        assert!(b.edges > 2 * a.edges);
        assert_eq!(a.labels, 11);
        assert_eq!(b.labels, 11);
    }
}
