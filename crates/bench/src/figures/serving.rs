//! Serving study (`serving` figure target): throughput–latency curves of
//! the `serve` subsystem, cold cache vs warm cache.
//!
//! A seeded closed-loop load generator drives a [`FastService`] over a
//! repeated query mix: each client submits, waits for completion, sleeps an
//! exponential think time (Poisson-like arrivals at the service), and
//! repeats. Sweeping the client count traces the throughput–latency curve;
//! running each level twice — both cache tiers disabled ("cold": every
//! session pays the probe/boundary search *and* the CST build) vs warm
//! caches ("warm": repeats replay the cached shard CSTs through tier 2) —
//! isolates what caching buys at the service level. Per-query embedding
//! counts are captured per mode and must be bit-identical (a cached
//! artifact replays the exact decomposition a cold run computes); the
//! release-mode test enforces that plus the acceptance bar: warm tier-2
//! hit rate ≥ 90%, warm build time exactly 0, warm sustained QPS strictly
//! above cold.

use crate::harness::DatasetCache;
use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::{benchmark_query, DatasetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{FastService, ServeConfig, ServeReport};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// The repeated query mix: the hub-dominated planner-heavy queries (q1,
/// q2) alongside flat ones (q0, q4) — the regime where plan caching must
/// help without hurting.
pub const QUERY_MIX: [usize; 4] = [0, 1, 2, 4];

/// Closed-loop load parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// RNG seed (query mix sampling and think times).
    pub seed: u64,
    /// Mean exponential think time between a client's completion and its
    /// next submission.
    pub think_mean: Duration,
}

/// One serving mode's outcome at one concurrency level.
#[derive(Debug, Clone)]
pub struct ModeOutcome {
    /// Full service report (QPS, percentiles, cache stats, devices).
    pub report: ServeReport,
    /// Embeddings per query-mix member — the bit-identity witness.
    pub embeddings: BTreeMap<usize, u64>,
}

/// One concurrency level: cold vs warm.
#[derive(Debug, Clone)]
pub struct Row {
    pub clients: usize,
    pub cold: ModeOutcome,
    pub warm: ModeOutcome,
}

fn exp_sample(rng: &mut StdRng, mean: Duration) -> Duration {
    if mean.is_zero() {
        return Duration::ZERO;
    }
    let u: f64 = rng.gen_range(0.0f64..1.0);
    mean.mul_f64(-(1.0 - u).ln())
}

/// Drives `load` against `service`, returning the per-query embedding
/// counts the clients observed. Panics if any client sees two different
/// counts for the same query — per-query results must not depend on
/// concurrent interleaving.
pub fn drive(service: &FastService, load: &LoadConfig) -> BTreeMap<usize, u64> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..load.clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(
                        load.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut seen: BTreeMap<usize, u64> = BTreeMap::new();
                    for _ in 0..load.requests_per_client {
                        let qi = QUERY_MIX[rng.gen_range(0..QUERY_MIX.len())];
                        let report = service
                            .submit(benchmark_query(qi))
                            .wait()
                            .expect("session completes");
                        if let Some(prev) = seen.insert(qi, report.embeddings) {
                            assert_eq!(
                                prev, report.embeddings,
                                "q{qi}: count changed between repeats"
                            );
                        }
                        let think = exp_sample(&mut rng, load.think_mean);
                        if !think.is_zero() {
                            std::thread::sleep(think);
                        }
                    }
                    seen
                })
            })
            .collect();
        let mut merged: BTreeMap<usize, u64> = BTreeMap::new();
        for h in handles {
            for (qi, e) in h.join().expect("client thread") {
                if let Some(prev) = merged.insert(qi, e) {
                    assert_eq!(prev, e, "q{qi}: clients disagree on the count");
                }
            }
        }
        merged
    })
}

/// The serving configuration of the study: FAST-SEP semantics on the
/// experiment-scaled device, auto shard planning (the planner the cache
/// amortises), 4 emulated devices, one worker per client.
fn serve_config(clients: usize, cache_capacity: usize) -> ServeConfig {
    let mut fast = FastConfig {
        spec: crate::harness::experiment_spec(),
        ..FastConfig::for_variant(Variant::Sep)
    };
    fast.shard_planner = ShardPlanner::Auto;
    ServeConfig {
        fast,
        devices: 4,
        extra_devices: Vec::new(),
        workers: clients.clamp(1, 8),
        cache_capacity,
        plan_cache_bytes: None,
        // Cold mode disables both tiers; warm keeps the default budget so
        // repeats are tier-2 hits (pure dispatch + kernel).
        cst_cache_bytes: if cache_capacity == 0 {
            0
        } else {
            ServeConfig::default().cst_cache_bytes
        },
        max_in_flight: (2 * clients).max(1),
        ..ServeConfig::default()
    }
}

fn run_mode(g: &Arc<graph_core::Graph>, load: &LoadConfig, cache_capacity: usize) -> ModeOutcome {
    let service = FastService::new(Arc::clone(g), serve_config(load.clients, cache_capacity));
    let embeddings = drive(&service, load);
    let report = service.shutdown();
    ModeOutcome { report, embeddings }
}

/// Runs the cold-vs-warm sweep on `dataset` over `client_levels`.
pub fn run(
    cache: &mut DatasetCache,
    dataset: DatasetId,
    client_levels: &[usize],
    requests_per_client: usize,
) -> Vec<Row> {
    // One shared copy for every service in the sweep.
    let g = Arc::new(cache.get(dataset).clone());
    client_levels
        .iter()
        .map(|&clients| {
            let load = LoadConfig {
                clients,
                requests_per_client,
                seed: 0xFA57,
                think_mean: Duration::from_micros(200),
            };
            let cold = run_mode(&g, &load, 0);
            let warm = run_mode(&g, &load, 64);
            assert_eq!(
                cold.embeddings, warm.embeddings,
                "cached plans changed a result at {clients} clients"
            );
            Row {
                clients,
                cold,
                warm,
            }
        })
        .collect()
}

/// Renders the throughput–latency table.
pub fn render(dataset: DatasetId, rows: &[Row]) -> String {
    let header: Vec<String> = [
        "clients",
        "cold QPS",
        "cold p50",
        "cold p99",
        "cold devq p50/p99",
        "warm QPS",
        "warm p50",
        "warm p99",
        "warm devq p50/p99",
        "cst hit rate",
        "build miss",
        "build hit",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let ms = |sec: f64| format!("{:.1}ms", sec * 1e3);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.clients.to_string(),
                format!("{:.1}", r.cold.report.qps),
                ms(r.cold.report.latency_p50),
                ms(r.cold.report.latency_p99),
                format!(
                    "{}/{}",
                    ms(r.cold.report.device_queue_p50),
                    ms(r.cold.report.device_queue_p99)
                ),
                format!("{:.1}", r.warm.report.qps),
                ms(r.warm.report.latency_p50),
                ms(r.warm.report.latency_p99),
                format!(
                    "{}/{}",
                    ms(r.warm.report.device_queue_p50),
                    ms(r.warm.report.device_queue_p99)
                ),
                format!("{:.0}%", r.warm.report.cst_cache.hit_rate() * 100.0),
                ms(r.warm.report.build_miss_mean_sec),
                ms(r.warm.report.build_hit_mean_sec),
            ]
        })
        .collect();
    format!(
        "Serving throughput-latency on {dataset} (closed loop over q{:?}, cold = both cache tiers off, \
         warm = LRU 64 plans + default tier-2 byte budget; \
         latency percentiles fold in the modelled device queueing delay, broken out in the devq columns)\n{}",
        QUERY_MIX,
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serving acceptance bar: on a repeated query mix the warm tier-2
    /// cache hits ≥ 90%, hit-path build time collapses to exactly 0,
    /// sustained QPS is strictly above cold at the same offered load, and
    /// every cached result is bit-identical to the cold run's.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug: full serving sweep; covered by the release-mode CI test step"
    )]
    fn warm_cache_beats_cold_with_identical_results() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg01, &[4], 30);
        let r = &rows[0];
        // Bit-identity is asserted inside `run`; re-check visibly here.
        assert_eq!(r.cold.embeddings, r.warm.embeddings);
        assert!(!r.warm.embeddings.is_empty());
        let hit_rate = r.warm.report.cst_cache.hit_rate();
        assert!(hit_rate >= 0.9, "tier-2 hit rate {hit_rate}");
        assert_eq!(
            r.warm.report.build_hit_mean_sec, 0.0,
            "a tier-2 hit replays the artifact — it must build nothing",
        );
        assert!(
            r.warm.report.build_miss_mean_sec > 0.0,
            "cold sessions must pay a measurable build",
        );
        assert!(
            r.warm.report.cst_resident_bytes > 0
                && r.warm.report.cst_resident_bytes
                    <= ServeConfig::default().cst_cache_bytes,
            "resident {} bytes must stay under the budget",
            r.warm.report.cst_resident_bytes
        );
        assert!(
            r.warm.report.qps > r.cold.report.qps,
            "warm {:.2} QPS vs cold {:.2} QPS",
            r.warm.report.qps,
            r.cold.report.qps
        );
        assert_eq!(r.cold.report.completed, 120);
        assert_eq!(r.warm.report.completed, 120);
        assert_eq!(r.cold.report.cache.hits, 0, "capacity 0 must never hit");
        assert_eq!(r.cold.report.cst_cache.hits, 0, "budget 0 must never hit");
    }
}
