//! Fig. 9: the number and total size of partitioned CST.
//!
//! Per query and dataset: the number of CST partitions and the ratio
//! `S_CST / S_G` (total partition bytes over data-graph bytes). The paper
//! observes #CST growing with the dataset while `S_CST/S_G` stays below 60%
//! and roughly stable — except q7, whose embedding explosion from DG03 to
//! DG10 inflates it.

use crate::harness::{experiment_config, DatasetCache};
use fast::{run_fast, Variant};
use graph_core::{benchmark_query, DatasetId};

/// One (query, dataset) measurement.
#[derive(Debug, Clone)]
pub struct Row {
    pub query: usize,
    pub dataset: DatasetId,
    pub partitions: usize,
    pub cst_bytes: usize,
    pub graph_bytes: usize,
}

impl Row {
    /// `S_CST / S_G`.
    pub fn size_ratio(&self) -> f64 {
        self.cst_bytes as f64 / self.graph_bytes as f64
    }
}

/// The queries the paper plots in Fig. 9.
pub const QUERIES: [usize; 6] = [0, 1, 2, 4, 7, 8];

/// Runs the measurement for the given datasets.
pub fn run(cache: &mut DatasetCache, datasets: &[DatasetId]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &d in datasets {
        let g = cache.get(d);
        let graph_bytes = g.memory_bytes();
        for &qi in &QUERIES {
            let q = benchmark_query(qi);
            let report = run_fast(&q, g, &experiment_config(Variant::Sep))
                .expect("benchmark query fits the kernel");
            rows.push(Row {
                query: qi,
                dataset: d,
                partitions: report.fpga_partitions + report.cpu_partitions,
                cst_bytes: report.cst_bytes_total,
                graph_bytes,
            });
        }
    }
    rows
}

/// Renders the figure.
pub fn render(rows: &[Row]) -> String {
    let header = vec![
        "query".to_string(),
        "dataset".to_string(),
        "#CST".to_string(),
        "S_CST/S_G".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("q{}", r.query),
                r.dataset.to_string(),
                r.partitions.to_string(),
                format!("{:.1}%", r.size_ratio() * 100.0),
            ]
        })
        .collect();
    format!(
        "Fig. 9: number and total size of partitioned CST\n{}",
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug: full figure run; covered by the release-mode CI test step")]
    fn partitions_grow_with_dataset() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, &[DatasetId::Dg01, DatasetId::Dg03]);
        let total =
            |d: DatasetId| -> usize { rows.iter().filter(|r| r.dataset == d).map(|r| r.partitions).sum() };
        assert!(total(DatasetId::Dg03) >= total(DatasetId::Dg01));
        for r in &rows {
            assert!(r.partitions >= 1);
            assert!(r.size_ratio() < 2.0, "q{} ratio {}", r.query, r.size_ratio());
        }
    }
}
