//! Tier-2 shard-CST cache study (`cstcache` figure target): the warm-path
//! sweep over three byte budgets — 0 (tier 2 off), tight (half the working
//! set, forcing eviction/rejection churn), and generous (the default,
//! everything resident) — reporting QPS and latency against resident
//! bytes.
//!
//! The figure is **self-asserting**: inside every run it checks that warm
//! sessions under the generous budget are tier-2 hits with *exactly zero*
//! build time and zero top-down entries (pure dispatch + kernel), that
//! every session's embedding count is fingerprint-equal to the cold pass,
//! and that resident bytes never exceed the configured budget. A failed
//! claim aborts the figure, so a green `cstcache` run *is* the warm-path
//! correctness certificate.

use crate::harness::DatasetCache;
use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::{benchmark_query, DatasetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{FastService, QueryReport, ServeConfig, ServeReport};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The repeated query mix (shared with the single-tenant serving study).
pub const QUERY_MIX: [usize; 4] = [0, 1, 2, 4];

/// One byte-budget arm of the sweep.
#[derive(Debug, Clone)]
pub struct Row {
    /// Human label of the budget arm.
    pub label: &'static str,
    /// Configured tier-2 byte budget.
    pub budget: usize,
    /// Full service report of the warm phase (plus the cold pass).
    pub report: ServeReport,
    /// Embeddings per query-mix member — the bit-identity witness.
    pub embeddings: BTreeMap<usize, u64>,
}

fn serve_config(clients: usize, cst_budget: usize) -> ServeConfig {
    let mut fast = FastConfig {
        spec: crate::harness::experiment_spec(),
        ..FastConfig::for_variant(Variant::Sep)
    };
    fast.shard_planner = ShardPlanner::Auto;
    ServeConfig {
        fast,
        devices: 4,
        extra_devices: Vec::new(),
        workers: clients.clamp(1, 8),
        cache_capacity: 64,
        plan_cache_bytes: None,
        cst_cache_bytes: cst_budget,
        max_in_flight: (2 * clients).max(1),
        ..ServeConfig::default()
    }
}

/// Runs one budget arm: a sequential cold pass over the distinct query mix
/// (builds + fingerprints), then `clients` closed-loop clients × `requests`
/// warm submissions. Panics if any self-assertion fails.
fn run_budget(
    g: &Arc<graph_core::Graph>,
    label: &'static str,
    budget: usize,
    clients: usize,
    requests_per_client: usize,
) -> Row {
    let service = FastService::new(Arc::clone(g), serve_config(clients, budget));

    // Cold pass: every distinct query once, sequentially — populates the
    // caches and records the reference fingerprint.
    let mut fingerprint: BTreeMap<usize, u64> = BTreeMap::new();
    for &qi in &QUERY_MIX {
        let report = service
            .submit(benchmark_query(qi))
            .wait()
            .expect("cold session");
        assert!(
            !report.cst_cache_hit,
            "{label}: q{qi} cold pass cannot hit an empty tier 2"
        );
        fingerprint.insert(qi, report.embeddings);
    }

    // Warm phase: concurrent closed-loop clients over the mix. Every
    // report is checked against the fingerprint; tier-2 hits are checked
    // to be pure dispatch + kernel.
    let warm_reports: Vec<QueryReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let service = &service;
                let fingerprint = &fingerprint;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(
                        0xC57_CACE ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut reports = Vec::with_capacity(requests_per_client);
                    for _ in 0..requests_per_client {
                        let qi = QUERY_MIX[rng.gen_range(0..QUERY_MIX.len())];
                        let report = service
                            .submit(benchmark_query(qi))
                            .wait()
                            .expect("warm session");
                        assert_eq!(
                            fingerprint[&qi], report.embeddings,
                            "{label}: q{qi} warm count diverged from the cold fingerprint"
                        );
                        reports.push(report);
                    }
                    reports
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    for r in &warm_reports {
        if budget == 0 {
            assert!(!r.cst_cache_hit, "{label}: tier 2 is disabled, yet it hit");
        }
        if r.cst_cache_hit {
            // The timing claim of the whole tier: a warm serve is pure
            // dispatch + kernel. Exactly zero, not approximately.
            assert_eq!(
                r.build_time,
                std::time::Duration::ZERO,
                "{label}: tier-2 hit reported build wall"
            );
            assert_eq!(
                r.topdown_entries, 0,
                "{label}: tier-2 hit reported a top-down scan"
            );
            assert_eq!(r.seeded_shards, 0, "{label}: tier-2 hit seeded a rebuild");
        }
    }

    let report = service.shutdown();
    assert!(
        report.cst_resident_bytes <= budget,
        "{label}: resident {} bytes exceed the {} byte budget",
        report.cst_resident_bytes,
        budget
    );
    assert_eq!(report.build_hit_mean_sec, 0.0, "{label}: hit-path build mean");
    if budget > 0 && report.cst_cache.hits > 0 {
        assert!(report.cst_resident_bytes > 0, "{label}: hits imply residency");
    }
    Row {
        label,
        budget,
        report,
        embeddings: fingerprint,
    }
}

/// Runs the byte-budget sweep on `dataset`: generous (default budget),
/// tight (half the generous working set), and 0 (tier 2 off). Every arm's
/// fingerprint must agree — the cache can bound memory, never change an
/// answer.
pub fn run(
    cache: &mut DatasetCache,
    dataset: DatasetId,
    clients: usize,
    requests_per_client: usize,
) -> Vec<Row> {
    let g = Arc::new(cache.get(dataset).clone());
    // Generous first: its resident bytes calibrate the tight budget to
    // half the full working set, guaranteeing eviction or rejection churn.
    let generous = run_budget(
        &g,
        "generous",
        ServeConfig::default().cst_cache_bytes,
        clients,
        requests_per_client,
    );
    let working_set = generous.report.cst_resident_bytes;
    assert!(working_set > 0, "generous arm must retain the working set");
    let tight = run_budget(&g, "tight", (working_set / 2).max(1), clients, requests_per_client);
    assert!(
        tight.report.cst_cache.evictions + tight.report.cst_cache.rejected > 0,
        "a budget of half the working set must evict or reject"
    );
    let off = run_budget(&g, "off", 0, clients, requests_per_client);
    assert_eq!(off.report.cst_cache.hits, 0, "budget 0 must never hit");

    let rows = vec![off, tight, generous];
    for w in rows.windows(2) {
        assert_eq!(
            w[0].embeddings, w[1].embeddings,
            "{} vs {}: the byte budget changed a count",
            w[0].label, w[1].label
        );
    }
    rows
}

/// Renders the budget sweep table.
pub fn render(dataset: DatasetId, rows: &[Row]) -> String {
    let header: Vec<String> = [
        "budget",
        "bytes",
        "resident",
        "cst hit rate",
        "evict",
        "reject",
        "QPS",
        "p50",
        "p99",
        "build miss",
        "build hit",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let ms = |sec: f64| format!("{:.1}ms", sec * 1e3);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.budget.to_string(),
                r.report.cst_resident_bytes.to_string(),
                format!("{:.0}%", r.report.cst_cache.hit_rate() * 100.0),
                r.report.cst_cache.evictions.to_string(),
                r.report.cst_cache.rejected.to_string(),
                format!("{:.1}", r.report.qps),
                ms(r.report.latency_p50),
                ms(r.report.latency_p99),
                ms(r.report.build_miss_mean_sec),
                ms(r.report.build_hit_mean_sec),
            ]
        })
        .collect();
    format!(
        "Tier-2 shard-CST cache on {dataset} (closed loop over q{:?}; budgets 0 / half the \
         working set / default; every arm fingerprint-checked against its cold pass, tier-2 \
         hits asserted to build nothing)\n{}",
        QUERY_MIX,
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tier-2 acceptance bar (release-mode; the `cstcache` CI figure
    /// run re-asserts it at scale): tier-2-warm sessions report zero build
    /// time and zero top-down entries with counts fingerprint-equal to
    /// cold, resident bytes stay under every budget, and the generous arm
    /// actually hits.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug: full budget sweep; covered by the release-mode CI figure step"
    )]
    fn warm_serves_are_pure_dispatch_and_kernel() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg01, 2, 10);
        assert_eq!(rows.len(), 3);
        // Per-session claims (zero build, zero top-down, fingerprint
        // equality, residency ≤ budget) are asserted inside `run`;
        // re-check the aggregate view visibly here.
        let generous = rows.iter().find(|r| r.label == "generous").unwrap();
        assert!(generous.report.cst_cache.hits > 0, "warm phase must hit");
        assert_eq!(generous.report.build_hit_mean_sec, 0.0);
        assert!(generous.report.build_miss_mean_sec > 0.0);
        assert!(generous.report.cst_resident_bytes <= generous.budget);
        let off = rows.iter().find(|r| r.label == "off").unwrap();
        assert_eq!(off.report.cst_cache.hits, 0);
        assert_eq!(off.report.cst_resident_bytes, 0);
        assert_eq!(off.embeddings, generous.embeddings);
    }
}
