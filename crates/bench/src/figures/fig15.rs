//! Fig. 15: the impact of matching orders.
//!
//! The paper runs FAST under CFL's, DAF's, CECI's, and random connected
//! orders, reporting BEST / AVG / WORST alongside the named heuristics.
//! Even FAST-WORST beats the CPU baselines (by 9.6-36.3x), showing the
//! co-design is robust to order choice. We sample random connected orders
//! (the full order space is factorial) and aggregate over the queries.

use crate::harness::{experiment_config, DatasetCache};
use fast::{run_fast_with_order, Variant};
use graph_core::{
    benchmark_query, ceci_style_order, cfl_style_order, daf_style_order,
    random_connected_order, select_root, BfsTree, DatasetId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Aggregated elapsed time per order policy.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: DatasetId,
    pub policy: String,
    pub avg_sec: f64,
}

/// Number of random orders sampled per query.
pub const RANDOM_ORDERS: usize = 6;

/// Queries aggregated over (skipping q1, whose worst orders explode at the
/// larger datasets; documented in EXPERIMENTS.md).
pub const QUERIES: [usize; 6] = [0, 2, 4, 5, 6, 8];

/// Runs the order sweep on the given datasets.
pub fn run(cache: &mut DatasetCache, datasets: &[DatasetId]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &d in datasets {
        let g = cache.get(d);
        let config = experiment_config(Variant::Sep);
        // Per policy, accumulate elapsed over queries.
        let mut named_totals: Vec<(String, f64)> = vec![
            ("FAST-CFL".to_string(), 0.0),
            ("FAST-DAF".to_string(), 0.0),
            ("FAST-CECI".to_string(), 0.0),
        ];
        let mut best_total = 0.0f64;
        let mut avg_total = 0.0f64;
        let mut worst_total = 0.0f64;

        for &qi in &QUERIES {
            let q = benchmark_query(qi);
            let root = select_root(&q, g);
            let tree = BfsTree::new(&q, root);
            let mut rng = StdRng::seed_from_u64(1000 + qi as u64);

            let named = [
                cfl_style_order(&q, &tree),
                daf_style_order(&q, g, root),
                ceci_style_order(&q, &tree),
            ];
            let mut all_times = Vec::new();
            for (i, order) in named.iter().enumerate() {
                let t = run_fast_with_order(&q, g, &config, order)
                    .unwrap()
                    .modeled_total_sec();
                named_totals[i].1 += t;
                all_times.push(t);
            }
            for _ in 0..RANDOM_ORDERS {
                let order = random_connected_order(&q, root, &mut rng);
                let t = run_fast_with_order(&q, g, &config, &order)
                    .unwrap()
                    .modeled_total_sec();
                all_times.push(t);
            }
            best_total += all_times.iter().cloned().fold(f64::INFINITY, f64::min);
            worst_total += all_times.iter().cloned().fold(0.0, f64::max);
            avg_total += all_times.iter().sum::<f64>() / all_times.len() as f64;
        }

        rows.push(Row {
            dataset: d,
            policy: "FAST-BEST".into(),
            avg_sec: best_total / QUERIES.len() as f64,
        });
        for (name, total) in named_totals {
            rows.push(Row {
                dataset: d,
                policy: name,
                avg_sec: total / QUERIES.len() as f64,
            });
        }
        rows.push(Row {
            dataset: d,
            policy: "FAST-AVG".into(),
            avg_sec: avg_total / QUERIES.len() as f64,
        });
        rows.push(Row {
            dataset: d,
            policy: "FAST-WORST".into(),
            avg_sec: worst_total / QUERIES.len() as f64,
        });
    }
    rows
}

/// Renders the figure.
pub fn render(rows: &[Row]) -> String {
    let header = vec![
        "policy".to_string(),
        "dataset".to_string(),
        "avg elapsed".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.dataset.to_string(),
                crate::harness::fmt_time(r.avg_sec),
            ]
        })
        .collect();
    format!(
        "Fig. 15: elapsed time of FAST with different matching orders\n{}",
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug: full figure run; covered by the release-mode CI test step")]
    fn best_le_avg_le_worst() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, &[DatasetId::Dg01]);
        let at = |p: &str| rows.iter().find(|r| r.policy == p).unwrap().avg_sec;
        assert!(at("FAST-BEST") <= at("FAST-AVG") + 1e-9);
        assert!(at("FAST-AVG") <= at("FAST-WORST") + 1e-9);
        // Named heuristics sit between BEST and WORST.
        for p in ["FAST-CFL", "FAST-DAF", "FAST-CECI"] {
            assert!(at(p) >= at("FAST-BEST") - 1e-9, "{p}");
            assert!(at(p) <= at("FAST-WORST") + 1e-9, "{p}");
        }
    }
}
