//! Fault-tolerance chaos study (`chaos` figure target): the same warm
//! serving workload run on four fleets — clean, fault-wrapped with a
//! zero-rate schedule (injection overhead), a moderate seeded fault mix
//! (transients + stalls + silent corruption), and a heavy mix including a
//! device that dies permanently mid-run.
//!
//! The figure is **self-asserting**: every arm's per-query embedding
//! counts must be fingerprint-equal to the clean arm (faults may cost
//! retries, never answers), no session may fail, retry accounting must
//! reconcile exactly against the per-device failure counters, and the
//! zero-rate wrapped arm must stay within **2%** of the clean arm's
//! throughput on the best of `OVERHEAD_REPEATS` *interleaved*
//! clean/wrapped pairs — the fault path is free when nothing faults.
//! (Interleaving means ambient load from parallel test binaries or CI
//! neighbours hits both arms alike instead of landing on one block.)
//! A failed claim aborts the figure, so a green `chaos` run *is* the
//! fault-tolerance correctness certificate.

use crate::harness::DatasetCache;
use fast::{FastConfig, FaultPlan, ShardPlanner, Variant};
use graph_core::{benchmark_query, DatasetId};
use serve::{DeviceKind, FastService, FaultPolicy, ServeConfig, ServeReport};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// The repeated query mix (shared with the serving studies).
pub const QUERY_MIX: [usize; 4] = [0, 1, 2, 4];

/// Interleaved clean/wrapped pairs the overhead claim measures.
pub const OVERHEAD_REPEATS: usize = 3;

/// Allowed fault-free slowdown of the wrapped zero-rate arm: on the best
/// interleaved pair its throughput must be ≥ `1 - OVERHEAD_BUDGET` of the
/// clean arm's.
pub const OVERHEAD_BUDGET: f64 = 0.02;

/// One fleet arm of the sweep.
#[derive(Debug, Clone)]
pub struct Row {
    /// Human label of the arm.
    pub label: &'static str,
    /// Full service report (best-of-N by QPS for the overhead arms).
    pub report: ServeReport,
    /// Embeddings per query-mix member — the bit-identity witness.
    pub embeddings: BTreeMap<usize, u64>,
}

fn fpga(fast: &FastConfig) -> DeviceKind {
    DeviceKind::Fpga(fast.spec.clone())
}

fn wrap(inner: DeviceKind, plan: FaultPlan) -> DeviceKind {
    DeviceKind::Faulty {
        inner: Box::new(inner),
        plan,
    }
}

fn serve_config(clients: usize, extra: Vec<DeviceKind>, cross_check: bool) -> ServeConfig {
    let mut fast = FastConfig {
        spec: crate::harness::experiment_spec(),
        ..FastConfig::for_variant(Variant::Sep)
    };
    fast.shard_planner = ShardPlanner::Auto;
    ServeConfig {
        fast,
        devices: 0,
        extra_devices: extra,
        workers: clients.clamp(1, 8),
        cache_capacity: 64,
        plan_cache_bytes: None,
        cst_cache_bytes: ServeConfig::default().cst_cache_bytes,
        max_in_flight: (2 * clients).max(1),
        fault: FaultPolicy {
            max_attempts: 16,
            backoff: Duration::ZERO,
            cross_check,
            cpu_fallback: true,
            ..FaultPolicy::default()
        },
        ..ServeConfig::default()
    }
}

/// Runs one arm once: a sequential cold pass over the distinct mix
/// (fingerprints), then `clients` closed-loop clients × `requests` warm
/// submissions round-robin over the mix. Panics if any session fails or
/// any count diverges from the cold fingerprint.
fn run_once(
    g: &Arc<graph_core::Graph>,
    label: &'static str,
    extra: Vec<DeviceKind>,
    cross_check: bool,
    clients: usize,
    requests_per_client: usize,
) -> (ServeReport, BTreeMap<usize, u64>) {
    let service = FastService::new(Arc::clone(g), serve_config(clients, extra, cross_check));
    let mut fingerprint: BTreeMap<usize, u64> = BTreeMap::new();
    for &qi in &QUERY_MIX {
        let report = service
            .submit(benchmark_query(qi))
            .wait()
            .expect("cold session");
        fingerprint.insert(qi, report.embeddings);
    }
    std::thread::scope(|scope| {
        for c in 0..clients {
            let service = &service;
            let fingerprint = &fingerprint;
            scope.spawn(move || {
                for r in 0..requests_per_client {
                    let qi = QUERY_MIX[(c + r) % QUERY_MIX.len()];
                    let report = service
                        .submit(benchmark_query(qi))
                        .wait()
                        .expect("warm session survives the fault schedule");
                    assert_eq!(
                        fingerprint[&qi], report.embeddings,
                        "{label}: q{qi} count diverged under faults"
                    );
                }
            });
        }
    });
    let report = service.shutdown();
    assert_eq!(report.failed, 0, "{label}: no session may fail");
    assert_eq!(
        report.completed,
        (QUERY_MIX.len() + clients * requests_per_client) as u64,
        "{label}: every session completes"
    );
    let device_failures: u64 = report.devices.iter().map(|d| d.failures).sum();
    assert_eq!(
        report.retries, device_failures,
        "{label}: every device failure is retried exactly once"
    );
    let device_corruptions: u64 = report.devices.iter().map(|d| d.corruptions).sum();
    assert_eq!(
        report.corruption_catches, device_corruptions,
        "{label}: every caught corruption is charged to a device"
    );
    assert!(report.is_finite(), "{label}: report stays finite");
    (report, fingerprint)
}

/// Best-of-`repeats` by QPS (the fingerprint is identical across repeats).
fn run_best(
    g: &Arc<graph_core::Graph>,
    label: &'static str,
    extra: &[DeviceKind],
    cross_check: bool,
    clients: usize,
    requests_per_client: usize,
    repeats: usize,
) -> Row {
    let mut best: Option<(ServeReport, BTreeMap<usize, u64>)> = None;
    for _ in 0..repeats.max(1) {
        let run = run_once(g, label, extra.to_vec(), cross_check, clients, requests_per_client);
        if best.as_ref().is_none_or(|(b, _)| run.0.qps > b.qps) {
            best = Some(run);
        }
    }
    let (report, embeddings) = best.expect("at least one repeat");
    Row {
        label,
        report,
        embeddings,
    }
}

/// Runs the four-arm chaos sweep on `dataset` and asserts the headline
/// claims: bit-identity across every arm, exactly-once retry accounting
/// (inside each run), a quarantine + an eviction under the heavy schedule,
/// and < [`OVERHEAD_BUDGET`] fault-free overhead for the injection wrapper.
pub fn run(
    cache: &mut DatasetCache,
    dataset: DatasetId,
    clients: usize,
    requests_per_client: usize,
) -> Vec<Row> {
    let g = Arc::new(cache.get(dataset).clone());
    let fast = FastConfig {
        spec: crate::harness::experiment_spec(),
        ..FastConfig::for_variant(Variant::Sep)
    };
    let zero = FaultPlan::default();
    let clean_fleet = vec![fpga(&fast), fpga(&fast), fpga(&fast)];
    let wrapped_fleet: Vec<DeviceKind> = clean_fleet
        .iter()
        .cloned()
        .map(|d| wrap(d, zero.clone()))
        .collect();
    // Moderate chaos: transients + stalls fleet-wide, silent corruption on
    // one device (the cross-check needs an honest second opinion), one
    // clean card as the guaranteed-healthy survivor.
    let moderate_fleet = vec![
        wrap(
            fpga(&fast),
            FaultPlan {
                seed: 0xC4A05,
                transient_rate: 0.2,
                stall_rate: 0.05,
                corrupt_rate: 0.15,
                ..FaultPlan::default()
            },
        ),
        wrap(fpga(&fast), FaultPlan::transient(0xC4A06, 0.2)),
        fpga(&fast),
    ];
    // Heavy chaos: one card dies permanently almost immediately, one fails
    // half its calls and lies on a quarter of the rest.
    let heavy_fleet = vec![
        wrap(fpga(&fast), FaultPlan::dies_at(0xC4A07, 3)),
        wrap(
            fpga(&fast),
            FaultPlan {
                seed: 0xC4A08,
                transient_rate: 0.5,
                corrupt_rate: 0.25,
                ..FaultPlan::default()
            },
        ),
        fpga(&fast),
    ];

    // The overhead arms run as interleaved clean/wrapped pairs: each pair
    // is temporally adjacent, so ambient load (parallel test binaries, CI
    // neighbours) degrades both sides of a pair alike and the per-pair QPS
    // ratio isolates the injector's own cost. Back-to-back blocks would
    // let one contention spike land entirely on one arm and fail the
    // claim spuriously.
    let mut raw: Option<(ServeReport, BTreeMap<usize, u64>)> = None;
    let mut wrapped: Option<(ServeReport, BTreeMap<usize, u64>)> = None;
    let mut best_ratio = f64::NEG_INFINITY;
    for _ in 0..OVERHEAD_REPEATS {
        let c = run_once(&g, "clean", clean_fleet.clone(), false, clients, requests_per_client);
        let w = run_once(
            &g, "wrapped-0", wrapped_fleet.clone(), false, clients, requests_per_client,
        );
        best_ratio = best_ratio.max(w.0.qps / c.0.qps);
        if raw.as_ref().is_none_or(|(b, _)| c.0.qps > b.qps) {
            raw = Some(c);
        }
        if wrapped.as_ref().is_none_or(|(b, _)| w.0.qps > b.qps) {
            wrapped = Some(w);
        }
    }
    let raw = {
        let (report, embeddings) = raw.expect("at least one pair");
        Row { label: "clean", report, embeddings }
    };
    let wrapped = {
        let (report, embeddings) = wrapped.expect("at least one pair");
        Row { label: "wrapped-0", report, embeddings }
    };
    let moderate = run_best(&g, "moderate", &moderate_fleet, true, clients, requests_per_client, 1);
    let heavy = run_best(&g, "heavy", &heavy_fleet, true, clients, requests_per_client, 1);

    // The overhead claim: a zero-rate schedule costs < 2% throughput on
    // the best interleaved pair.
    assert!(
        best_ratio >= 1.0 - OVERHEAD_BUDGET,
        "fault-free injection overhead exceeds {:.0}% on every interleaved pair: \
         best wrapped/clean QPS ratio {:.3} (best clean {:.1} QPS, best wrapped {:.1} QPS)",
        OVERHEAD_BUDGET * 100.0,
        best_ratio,
        raw.report.qps,
        wrapped.report.qps
    );
    assert_eq!(
        raw.report.retries + wrapped.report.retries,
        0,
        "nothing faults in the overhead arms"
    );
    // The fault arms actually faulted — and still answered bit-exact.
    assert!(moderate.report.retries > 0, "moderate chaos must retry");
    assert!(
        heavy.report.retries > 0 && heavy.report.failovers > 0,
        "heavy chaos must retry and fail over"
    );
    assert!(
        heavy
            .report
            .devices
            .iter()
            .any(|d| d.health == serve::HealthState::Evicted),
        "the permanently dying card must be evicted"
    );

    let rows = vec![raw, wrapped, moderate, heavy];
    for w in rows.windows(2) {
        assert_eq!(
            w[0].embeddings, w[1].embeddings,
            "{} vs {}: the fault schedule changed a count",
            w[0].label, w[1].label
        );
    }
    rows
}

/// Renders the chaos sweep table.
pub fn render(dataset: DatasetId, rows: &[Row]) -> String {
    let header: Vec<String> = [
        "fleet",
        "QPS",
        "p99",
        "retries",
        "failovers",
        "quarantines",
        "catches",
        "degraded",
        "evicted",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.1}", r.report.qps),
                format!("{:.1}ms", r.report.latency_p99 * 1e3),
                r.report.retries.to_string(),
                r.report.failovers.to_string(),
                r.report.quarantines.to_string(),
                r.report.corruption_catches.to_string(),
                format!("{:.3}s", r.report.degraded_sec),
                r.report
                    .devices
                    .iter()
                    .filter(|d| d.health == serve::HealthState::Evicted)
                    .count()
                    .to_string(),
            ]
        })
        .collect();
    format!(
        "Fault-tolerant serving on {dataset} (closed loop over q{:?}; every arm \
         fingerprint-checked against the clean fleet, retries reconciled against device \
         failures, wrapped zero-fault arm asserted within {:.0}% of clean throughput on \
         the best interleaved pair)\n{}",
        QUERY_MIX,
        OVERHEAD_BUDGET * 100.0,
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fault-tolerance acceptance bar (release-mode; the `chaos` CI
    /// figure step re-asserts it at scale): all four arms bit-identical,
    /// zero failed sessions, exact retry accounting, an eviction under
    /// heavy chaos, and < 2% fault-free injection overhead.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug: four serving arms; covered by the release-mode CI chaos step"
    )]
    fn chaos_arms_are_bit_identical_and_cheap_when_idle() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg01, 2, 8);
        assert_eq!(rows.len(), 4);
        // Bit-identity, accounting, eviction, and the overhead bound are
        // asserted inside `run`; re-check the headline aggregates here.
        let heavy = rows.iter().find(|r| r.label == "heavy").unwrap();
        assert_eq!(heavy.report.failed, 0);
        assert!(heavy.report.retries > 0);
        let clean = rows.iter().find(|r| r.label == "clean").unwrap();
        assert_eq!(clean.report.retries, 0);
        assert_eq!(clean.embeddings, heavy.embeddings);
    }
}
