//! Fig. 14: FAST against the state of the art.
//!
//! The paper runs GSI, GpSM (GPU), CFL, DAF, CECI (CPU), CECI-8 (8 threads)
//! and FAST on q0-q8 over DG01/DG03/DG10, reporting elapsed seconds with
//! `INF` (timeout) and `OOM` markers. FAST wins everywhere (24.6x average,
//! up to 462x vs DAF and 150x vs CECI), and the CPU-baseline gap grows with
//! the dataset.

use crate::harness::{baseline_limits, experiment_config, gpu_device, DatasetCache};
use fast::{run_fast, Variant};
use graph_core::{benchmark_query, DatasetId};
use join_baselines::{run_join_baseline, JoinBaseline};
use matching::{run_baseline, run_baseline_parallel, Baseline};

/// One (algorithm, query) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    pub algorithm: String,
    pub query: usize,
    pub seconds: f64,
    pub marker: &'static str,
    pub embeddings: u64,
}

/// One dataset's table.
#[derive(Debug, Clone)]
pub struct Table {
    pub dataset: DatasetId,
    pub cells: Vec<Cell>,
}

/// The algorithm roster, in the paper's order.
pub fn algorithms() -> Vec<String> {
    vec![
        "FAST".into(),
        "GSI".into(),
        "GpSM".into(),
        "DAF".into(),
        "CFL".into(),
        "CECI".into(),
        "CECI-8".into(),
    ]
}

/// Runs the comparison on one dataset over the given queries.
pub fn run(cache: &mut DatasetCache, dataset: DatasetId, queries: &[usize]) -> Table {
    let g = cache.get(dataset);
    let limits = baseline_limits();
    let device = gpu_device();
    let mut cells = Vec::new();

    for &qi in queries {
        let q = benchmark_query(qi);

        // FAST (the final FAST-SHARE configuration).
        let fast_report = run_fast(&q, g, &experiment_config(Variant::Share)).unwrap();
        cells.push(Cell {
            algorithm: "FAST".into(),
            query: qi,
            seconds: fast_report.modeled_total_sec(),
            marker: "ok",
            embeddings: fast_report.embeddings,
        });

        // GPU-style joins.
        for jb in JoinBaseline::ALL {
            let r = run_join_baseline(jb, &q, g, &device, &limits);
            cells.push(Cell {
                algorithm: jb.name().into(),
                query: qi,
                seconds: r.modeled_total_sec(),
                marker: r.outcome.table_marker(),
                embeddings: r.embeddings,
            });
        }

        // CPU baselines.
        for b in Baseline::ALL {
            let r = run_baseline(b, &q, g, &limits);
            cells.push(Cell {
                algorithm: b.name().into(),
                query: qi,
                seconds: r.modeled_total_sec(),
                marker: r.outcome.table_marker(),
                embeddings: r.embeddings,
            });
        }

        // CECI-8 (DAF-8 OOMs beyond DG01 in the paper; we run it on demand
        // in the scalability experiment instead).
        let r = run_baseline_parallel(Baseline::Ceci, &q, g, &limits, 8);
        cells.push(Cell {
            algorithm: "CECI-8".into(),
            query: qi,
            seconds: r.modeled_total_sec(),
            marker: r.outcome.table_marker(),
            embeddings: r.embeddings,
        });
    }
    Table { dataset, cells }
}

impl Table {
    /// The cell for (algorithm, query), if present.
    pub fn cell(&self, algorithm: &str, query: usize) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.algorithm == algorithm && c.query == query)
    }

    /// FAST's speedup over `algorithm` on `query` (None when either side
    /// did not complete).
    pub fn speedup_over(&self, algorithm: &str, query: usize) -> Option<f64> {
        let fast = self.cell("FAST", query)?;
        let other = self.cell(algorithm, query)?;
        if other.marker != "ok" {
            return None;
        }
        Some(other.seconds / fast.seconds)
    }
}

/// Renders one dataset's table plus speedup summary.
pub fn render(table: &Table, queries: &[usize]) -> String {
    let mut header = vec!["algorithm".to_string()];
    header.extend(queries.iter().map(|q| format!("q{q}")));
    let mut body = Vec::new();
    for alg in algorithms() {
        let mut row = vec![alg.clone()];
        for &qi in queries {
            let cell = table.cell(&alg, qi);
            row.push(match cell {
                Some(c) if c.marker == "ok" => crate::harness::fmt_time(c.seconds),
                Some(c) => c.marker.to_string(),
                None => "-".to_string(),
            });
        }
        body.push(row);
    }
    let mut out = format!(
        "Fig. 14 ({}): elapsed time, FAST vs baselines\n{}",
        table.dataset,
        crate::harness::render_table(&header, &body)
    );
    for alg in algorithms().iter().skip(1) {
        let speedups: Vec<f64> = queries
            .iter()
            .filter_map(|&qi| table.speedup_over(alg, qi))
            .collect();
        if !speedups.is_empty() {
            let max = speedups.iter().cloned().fold(0.0, f64::max);
            out.push_str(&format!(
                "FAST vs {alg}: geomean {}, max {}\n",
                crate::harness::fmt_speedup(crate::harness::geomean(&speedups)),
                crate::harness::fmt_speedup(max)
            ));
        }
    }
    out
}

/// Checks that every completed algorithm agrees on the embedding count for
/// each query (the cross-algorithm correctness invariant).
pub fn counts_agree(table: &Table, queries: &[usize]) -> Result<(), String> {
    for &qi in queries {
        let counts: Vec<(String, u64)> = table
            .cells
            .iter()
            .filter(|c| c.query == qi && c.marker == "ok")
            .map(|c| (c.algorithm.clone(), c.embeddings))
            .collect();
        if let Some((first_alg, first)) = counts.first() {
            for (alg, n) in &counts {
                if n != first {
                    return Err(format!(
                        "q{qi}: {alg} found {n} but {first_alg} found {first}"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dg01_small_queries_all_agree() {
        let mut cache = DatasetCache::new();
        // Subset of queries to keep the test fast.
        let queries = [0, 4, 7];
        let table = run(&mut cache, DatasetId::Dg01, &queries);
        counts_agree(&table, &queries).unwrap();
        // FAST completes everything.
        for &qi in &queries {
            assert_eq!(table.cell("FAST", qi).unwrap().marker, "ok");
        }
    }
}
