//! Shard-planner duplication study: regenerates the EXPERIMENTS.md §13
//! root-sharding duplication table for every planner.
//!
//! Contiguous equal-count root sharding duplicates interior candidates
//! reachable from several shards — 2.7–4.6× on the hub-dominated queries
//! (q1/q2/q3/q8) at 16 shards. The shard planner (`cst::planner`) attacks
//! exactly that: workload-balanced boundaries, overlap-aware hub-clustered
//! decompositions, and per-query auto shard-count selection. This figure
//! measures the *actual* duplication factor (total adjacency entries built
//! across shards over the sequential build's entries) per planner and
//! shard count, plus the auto planner's chosen shard count and its
//! estimated-vs-actual duplication.

use crate::harness::DatasetCache;
use cst::{
    build_cst_from_roots, build_cst_with_stats, plan_shards, CstOptions, PlannerConfig,
    RootProfile, ShardPlan, ShardPlanner,
};
use graph_core::{benchmark_query, select_root, BfsTree, DatasetId, Graph, QueryGraph, VertexId};

/// Fixed shard counts the fixed-count planners are evaluated at (the
/// pipeline default is 16; 8 matches the original §13 table).
pub const SHARD_COUNTS: [usize; 2] = [8, 16];

/// One query's duplication factors under every planner.
#[derive(Debug, Clone)]
pub struct Row {
    pub query: usize,
    /// Root candidate count (the sharding axis).
    pub roots: usize,
    /// Sequential build's adjacency entries (the denominator).
    pub seq_entries: usize,
    /// Actual duplication per [`SHARD_COUNTS`] entry: contiguous.
    pub contiguous: [f64; 2],
    /// Actual duplication per [`SHARD_COUNTS`] entry: workload-balanced.
    pub balanced: [f64; 2],
    /// Actual duplication per [`SHARD_COUNTS`] entry: overlap-aware.
    pub overlap: [f64; 2],
    /// Auto planner: chosen shard count (cap 16)…
    pub auto_shards: usize,
    /// …its actual duplication…
    pub auto_dup: f64,
    /// …and the planner's own 1-hop estimate that drove the choice.
    pub auto_est: f64,
}

/// Actual duplication factor of one plan: total adjacency entries over
/// every shard build (exactly the pipeline's per-shard
/// `build_cst_from_roots` calls), relative to the sequential build. Plans
/// come from [`plan_shards`] on one shared probe per query, so the figure
/// pays the probe once instead of once per (planner, shard-count) cell.
fn duplication(
    q: &QueryGraph,
    g: &Graph,
    tree: &BfsTree,
    roots: &[VertexId],
    plan: &ShardPlan,
    seq_entries: usize,
) -> f64 {
    let entries: usize = (0..plan.shard_count())
        .map(|s| {
            let chunk = plan.chunk_roots(roots, s);
            build_cst_from_roots(q, g, tree, CstOptions::default(), chunk)
                .1
                .adjacency_entries
        })
        .sum();
    entries as f64 / seq_entries.max(1) as f64
}

/// Runs the study on `dataset` over `queries`.
pub fn run(cache: &mut DatasetCache, dataset: DatasetId, queries: &[usize]) -> Vec<Row> {
    let g = cache.get(dataset);
    let config = PlannerConfig::default();
    let mut rows = Vec::new();
    for &qi in queries {
        let q = benchmark_query(qi);
        let root = select_root(&q, g);
        let tree = BfsTree::new(&q, root);
        let (_, seq_stats) = build_cst_with_stats(&q, g, &tree, CstOptions::default());
        let seq_entries = seq_stats.adjacency_entries;
        let roots = cst::root_candidates(&q, g, &tree, CstOptions::default());
        let profile = RootProfile::probe(&q, g, &tree, CstOptions::default(), &roots);
        let per = |planner: ShardPlanner| -> [f64; 2] {
            SHARD_COUNTS.map(|s| {
                let plan = plan_shards(planner, &profile, s, &config);
                duplication(&q, g, &tree, &roots, &plan, seq_entries)
            })
        };
        let auto_plan = plan_shards(ShardPlanner::Auto, &profile, 16, &config);
        rows.push(Row {
            query: qi,
            roots: roots.len(),
            seq_entries,
            contiguous: per(ShardPlanner::Contiguous),
            balanced: per(ShardPlanner::WorkloadBalanced),
            overlap: per(ShardPlanner::OverlapAware),
            auto_shards: auto_plan.shard_count(),
            auto_dup: duplication(&q, g, &tree, &roots, &auto_plan, seq_entries),
            auto_est: auto_plan.estimated_duplication,
        });
    }
    rows
}

/// Renders the duplication table.
pub fn render(dataset: DatasetId, rows: &[Row]) -> String {
    let header: Vec<String> = [
        "query",
        "roots",
        "contig d8",
        "contig d16",
        "balanced d8",
        "balanced d16",
        "overlap d8",
        "overlap d16",
        "auto S",
        "auto d",
        "auto est",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("q{}", r.query),
                r.roots.to_string(),
                format!("{:.2}", r.contiguous[0]),
                format!("{:.2}", r.contiguous[1]),
                format!("{:.2}", r.balanced[0]),
                format!("{:.2}", r.balanced[1]),
                format!("{:.2}", r.overlap[0]),
                format!("{:.2}", r.overlap[1]),
                r.auto_shards.to_string(),
                format!("{:.2}", r.auto_dup),
                format!("{:.2}", r.auto_est),
            ]
        })
        .collect();
    format!(
        "Shard-planner duplication factors on {dataset} (total shard adjacency entries / sequential build)\n{}",
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar of the planner work: on the hub-dominated
    /// queries, the auto planner's duplication must stay ≤ 1.8× (the
    /// contiguous planner pays 2.7–4.6× at 16 shards), without inflating
    /// the flat queries.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug: full figure run; covered by the release-mode CI test step"
    )]
    fn auto_planner_kills_hub_duplication() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg03, &[1, 2, 3, 8, 6]);
        for r in &rows {
            assert!(
                r.auto_dup <= 1.8,
                "q{}: auto duplication {:.2} (S={})",
                r.query,
                r.auto_dup,
                r.auto_shards
            );
            // The auto plan must never do worse than the blind contiguous
            // default at 16 shards.
            assert!(
                r.auto_dup <= r.contiguous[1] + 1e-9,
                "q{}: auto {:.2} vs contiguous-16 {:.2}",
                r.query,
                r.auto_dup,
                r.contiguous[1]
            );
        }
    }
}
