//! Mixed-tenant serving study (`tenants` figure target): two tenants with
//! a 1:3 quota split driving one service, swept over fleet composition
//! (FPGA-only, CPU-fallback-only, heterogeneous) × cache mode (cold/warm).
//!
//! Each tenant runs its own closed-loop client pool against its own graph
//! (the dataset graph for tenant A, an edge-sampled variant for tenant B,
//! so a cross-tenant cache collision would be visible as a wrong count).
//! The table reports service QPS and latency percentiles plus the
//! per-tenant slices; the release-mode test pins the acceptance bar:
//! per-tenant counts are bit-identical across all three fleets, and under
//! saturation the quota split steers completions toward the heavy tenant.

use crate::harness::DatasetCache;
use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::{benchmark_query, sample_edges, DatasetId, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{
    DeviceKind, FastService, ServeConfig, ServeReport, TenantConfig, TenantId, TenantSummary,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The repeated query mix (shared with the single-tenant serving study).
pub const QUERY_MIX: [usize; 4] = [0, 1, 2, 4];

/// Quota split: tenant B gets 3× tenant A's fair share.
pub const QUOTAS: (u32, u32) = (1, 3);

/// Fleet compositions the sweep compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fleet {
    /// Two emulated FPGA cards (the pre-heterogeneous pool).
    FpgaOnly,
    /// CPU fallback shares only — serving survives with zero cards.
    CpuOnly,
    /// Two cards plus a CPU fallback share.
    Heterogeneous,
}

impl std::fmt::Display for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Fleet::FpgaOnly => "fpga-only",
            Fleet::CpuOnly => "cpu-only",
            Fleet::Heterogeneous => "hetero",
        })
    }
}

/// One (fleet, cache mode) cell of the sweep.
#[derive(Debug, Clone)]
pub struct Row {
    pub fleet: Fleet,
    pub warm: bool,
    pub report: ServeReport,
    /// Embeddings per (tenant index, query) — the bit-identity witness.
    pub embeddings: BTreeMap<(usize, usize), u64>,
}

fn serve_config(fleet: Fleet, cache_capacity: usize, clients: usize) -> ServeConfig {
    let mut fast = FastConfig {
        spec: crate::harness::experiment_spec(),
        ..FastConfig::for_variant(Variant::Sep)
    };
    fast.shard_planner = ShardPlanner::Auto;
    let (devices, extra_devices) = match fleet {
        Fleet::FpgaOnly => (2, Vec::new()),
        Fleet::CpuOnly => (
            0,
            vec![DeviceKind::Cpu { threads: 2 }, DeviceKind::Cpu { threads: 2 }],
        ),
        Fleet::Heterogeneous => (2, vec![DeviceKind::Cpu { threads: 2 }]),
    };
    ServeConfig {
        fast,
        devices,
        extra_devices,
        workers: clients.clamp(1, 8),
        cache_capacity,
        plan_cache_bytes: None,
        // Cold cells disable both tiers; warm cells keep the default
        // tier-2 byte budget so repeats replay the cached shard CSTs.
        cst_cache_bytes: if cache_capacity == 0 {
            0
        } else {
            ServeConfig::default().cst_cache_bytes
        },
        max_in_flight: (2 * clients).max(1),
        ..ServeConfig::default()
    }
}

/// Drives both tenants' closed-loop clients and returns the per-tenant
/// per-query counts each client observed.
fn drive(
    service: &FastService,
    tenants: &[TenantId; 2],
    clients_per_tenant: usize,
    requests_per_client: usize,
) -> BTreeMap<(usize, usize), u64> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2 * clients_per_tenant)
            .map(|c| {
                let tenant_idx = c % 2;
                let tenant = tenants[tenant_idx];
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(
                        0xFA572_u64 ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut seen: BTreeMap<(usize, usize), u64> = BTreeMap::new();
                    for _ in 0..requests_per_client {
                        let qi = QUERY_MIX[rng.gen_range(0..QUERY_MIX.len())];
                        let report = service
                            .submit_for(tenant, benchmark_query(qi))
                            .expect("registered tenant")
                            .wait()
                            .expect("session completes");
                        if let Some(prev) = seen.insert((tenant_idx, qi), report.embeddings) {
                            assert_eq!(
                                prev, report.embeddings,
                                "tenant {tenant} q{qi}: count changed between repeats"
                            );
                        }
                    }
                    seen
                })
            })
            .collect();
        let mut merged: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for h in handles {
            for (key, e) in h.join().expect("client thread") {
                if let Some(prev) = merged.insert(key, e) {
                    assert_eq!(prev, e, "{key:?}: clients disagree on the count");
                }
            }
        }
        merged
    })
}

fn run_cell(
    graphs: &(Arc<Graph>, Arc<Graph>),
    fleet: Fleet,
    warm: bool,
    clients_per_tenant: usize,
    requests_per_client: usize,
) -> Row {
    let capacity = if warm { 64 } else { 0 };
    let service = FastService::new(
        Arc::clone(&graphs.0),
        serve_config(fleet, capacity, 2 * clients_per_tenant),
    );
    let b = service
        .add_tenant(
            Arc::clone(&graphs.1),
            TenantConfig {
                quota: QUOTAS.1,
                ..TenantConfig::default()
            },
        )
        .expect("tenant B");
    let embeddings = drive(
        &service,
        &[TenantId::DEFAULT, b],
        clients_per_tenant,
        requests_per_client,
    );
    let report = service.shutdown();
    Row {
        fleet,
        warm,
        report,
        embeddings,
    }
}

/// Runs the fleet × cache sweep on `dataset`.
pub fn run(
    cache: &mut DatasetCache,
    dataset: DatasetId,
    clients_per_tenant: usize,
    requests_per_client: usize,
) -> Vec<Row> {
    let a = Arc::new(cache.get(dataset).clone());
    // Tenant B: the same dataset with 70% of the edges — structurally
    // similar load, but any cross-tenant plan/graph leak changes a count.
    let b = Arc::new(sample_edges(&a, 0.7, 0xB0B));
    let graphs = (a, b);
    let mut rows = Vec::new();
    for fleet in [Fleet::FpgaOnly, Fleet::CpuOnly, Fleet::Heterogeneous] {
        for warm in [false, true] {
            rows.push(run_cell(
                &graphs,
                fleet,
                warm,
                clients_per_tenant,
                requests_per_client,
            ));
        }
    }
    // Bit-identity across every cell: fleet composition and cache mode
    // must never change a tenant's answer.
    for w in rows.windows(2) {
        assert_eq!(
            w[0].embeddings, w[1].embeddings,
            "{}/{} vs {}/{}: fleet or cache mode changed a per-tenant count",
            w[0].fleet,
            if w[0].warm { "warm" } else { "cold" },
            w[1].fleet,
            if w[1].warm { "warm" } else { "cold" },
        );
    }
    rows
}

fn tenant_cell(t: &TenantSummary) -> String {
    format!("{:.1} qps/{}c", t.qps, t.completed)
}

/// Renders the sweep table.
pub fn render(dataset: DatasetId, rows: &[Row]) -> String {
    let header: Vec<String> = [
        "fleet",
        "cache",
        "QPS",
        "p50",
        "p99",
        "cst hit rate",
        "t0 (quota 1)",
        "t1 (quota 3)",
        "devices busy",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let ms = |sec: f64| format!("{:.1}ms", sec * 1e3);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let busy: Vec<String> = r
                .report
                .devices
                .iter()
                .map(|d| format!("{}:{:.2}s", d.class, d.busy_sec))
                .collect();
            vec![
                r.fleet.to_string(),
                if r.warm { "warm" } else { "cold" }.to_string(),
                format!("{:.1}", r.report.qps),
                ms(r.report.latency_p50),
                ms(r.report.latency_p99),
                format!("{:.0}%", r.report.cst_cache.hit_rate() * 100.0),
                tenant_cell(&r.report.tenants[0]),
                tenant_cell(&r.report.tenants[1]),
                busy.join(" "),
            ]
        })
        .collect();
    format!(
        "Mixed-tenant serving on {dataset} (two tenants, quotas {}:{}; closed loop over q{:?}; \
         per-tenant counts asserted bit-identical across fleets and cache modes)\n{}",
        QUOTAS.0,
        QUOTAS.1,
        QUERY_MIX,
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance: every fleet serves both tenants with identical counts
    /// (asserted inside `run`), warm caches hit on repeats, and CPU-only
    /// fleets book zero kernel cycles.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug: full mixed-tenant sweep; covered by the release-mode CI step"
    )]
    fn fleets_agree_and_warm_caches_hit() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg01, 2, 10);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.report.failed, 0);
            assert_eq!(r.report.tenants.len(), 2);
            assert_eq!(r.report.tenants[1].quota, QUOTAS.1);
            if r.warm {
                assert!(
                    r.report.cst_cache.hit_rate() > 0.5,
                    "{}: warm tier-2 hit rate {:.2}",
                    r.fleet,
                    r.report.cst_cache.hit_rate()
                );
                assert_eq!(
                    r.report.build_hit_mean_sec, 0.0,
                    "{}: tier-2 hits must build nothing",
                    r.fleet
                );
            } else {
                assert_eq!(r.report.cache.hits, 0, "{}: cold must never hit", r.fleet);
                assert_eq!(
                    r.report.cst_cache.hits, 0,
                    "{}: cold tier 2 must never hit",
                    r.fleet
                );
            }
            let cycles: u64 = r.report.devices.iter().map(|d| d.cycles).sum();
            if r.fleet == Fleet::CpuOnly {
                assert_eq!(cycles, 0, "CPU fleets have no cycle notion");
            } else {
                assert!(cycles > 0, "{}: FPGA devices must book cycles", r.fleet);
            }
        }
    }
}
