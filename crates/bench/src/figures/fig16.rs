//! Fig. 16: scalability with the scale factor (DG01 → DG60).
//!
//! The paper runs all queries on all four datasets with FAST — the only
//! algorithm to complete DG60 — and shows elapsed time growing linearly
//! with the number of embeddings.

use crate::harness::{experiment_config, DatasetCache};
use fast::{run_fast, Variant};
use graph_core::{benchmark_query, DatasetId};

/// One (query, dataset) point.
#[derive(Debug, Clone)]
pub struct Row {
    pub query: usize,
    pub dataset: DatasetId,
    pub embeddings: u64,
    pub elapsed_sec: f64,
}

/// The queries plotted (paper: q0-q8 minus q4, which Fig. 16 omits).
pub const QUERIES: [usize; 8] = [0, 1, 2, 3, 5, 6, 7, 8];

/// Runs FAST across the dataset ladder.
pub fn run(cache: &mut DatasetCache, datasets: &[DatasetId], queries: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &d in datasets {
        let g = cache.get(d);
        for &qi in queries {
            let q = benchmark_query(qi);
            let report = run_fast(&q, g, &experiment_config(Variant::Share)).unwrap();
            rows.push(Row {
                query: qi,
                dataset: d,
                embeddings: report.embeddings,
                elapsed_sec: report.modeled_total_sec(),
            });
        }
    }
    rows
}

/// Renders the figure.
pub fn render(rows: &[Row]) -> String {
    let header = vec![
        "query".to_string(),
        "dataset".to_string(),
        "#embeddings".to_string(),
        "elapsed".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("q{}", r.query),
                r.dataset.to_string(),
                r.embeddings.to_string(),
                crate::harness::fmt_time(r.elapsed_sec),
            ]
        })
        .collect();
    format!(
        "Fig. 16: scalability of FAST varying the scale factor\n{}",
        crate::harness::render_table(&header, &body)
    )
}

/// Linear-growth check: fits elapsed ≈ a + b·embeddings per query and
/// returns the R² of the fit over the dataset ladder.
pub fn linearity_r2(rows: &[Row], query: usize) -> Option<f64> {
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.query == query && r.embeddings > 0)
        .map(|r| (r.embeddings as f64, r.elapsed_sec))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = pts.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = pts.iter().map(|p| (p.1 - (a + b * p.0)).powi(2)).sum();
    if ss_tot < 1e-18 {
        return None;
    }
    Some(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ladder_runs() {
        let mut cache = DatasetCache::new();
        let rows = run(
            &mut cache,
            &[DatasetId::Dg01, DatasetId::Dg03],
            &[0, 4, 7],
        );
        assert_eq!(rows.len(), 6);
        // Larger datasets find at least as many embeddings for these
        // monotone queries.
        for qi in [0, 7] {
            let small = rows
                .iter()
                .find(|r| r.query == qi && r.dataset == DatasetId::Dg01)
                .unwrap();
            let large = rows
                .iter()
                .find(|r| r.query == qi && r.dataset == DatasetId::Dg03)
                .unwrap();
            assert!(large.embeddings >= small.embeddings);
        }
    }
}
