//! Design-choice ablations beyond the paper's figures (DESIGN.md §4).
//!
//! * `N_o` sweep — Section VI-B's guidance: small `N_o` inflates the
//!   pipelined-fill term of Eq. (2); past the knee, returns diminish.
//! * CST pruning sweep — the Remark of Section V-A: stronger pruning (NLF +
//!   refinement) shrinks the search space but costs host time the FPGA
//!   spends idle; the sweep quantifies the trade-off.

use crate::harness::{experiment_config, DatasetCache};
use cst::CstOptions;
use fast::{run_fast, Variant};
use graph_core::{benchmark_query, DatasetId};

/// One `N_o` point.
#[derive(Debug, Clone)]
pub struct NoRow {
    pub no: u32,
    pub kernel_cycles: u64,
}

/// Sweeps `N_o` for FAST-BASIC on one query (Eq. (2)'s 1/N_o term).
pub fn sweep_no(cache: &mut DatasetCache, dataset: DatasetId, query: usize) -> Vec<NoRow> {
    let g = cache.get(dataset);
    let q = benchmark_query(query);
    [4u32, 16, 64, 256, 1024, 4096]
        .iter()
        .map(|&no| {
            let mut config = experiment_config(Variant::Basic);
            config.spec.no = no;
            let report = run_fast(&q, g, &config).unwrap();
            NoRow {
                no,
                kernel_cycles: report.kernel_cycles,
            }
        })
        .collect()
}

/// One CST-pruning point.
#[derive(Debug, Clone)]
pub struct PruneRow {
    pub label: &'static str,
    pub build_sec: f64,
    pub kernel_cycles: u64,
    pub total_sec: f64,
}

/// Sweeps CST construction strength (Section V-A Remark trade-off).
pub fn sweep_pruning(cache: &mut DatasetCache, dataset: DatasetId, query: usize) -> Vec<PruneRow> {
    let g = cache.get(dataset);
    let q = benchmark_query(query);
    let options = [
        ("minimal (label+degree)", CstOptions::minimal()),
        ("paper CST (1 refine)", CstOptions::default()),
        ("DAF-CS (3 refines)", CstOptions::daf_cs()),
    ];
    options
        .iter()
        .map(|(label, opts)| {
            let mut config = experiment_config(Variant::Sep);
            config.cst_options = *opts;
            let report = run_fast(&q, g, &config).unwrap();
            PruneRow {
                label,
                build_sec: report.build_time.as_secs_f64(),
                kernel_cycles: report.kernel_cycles,
                total_sec: report.modeled_total_sec(),
            }
        })
        .collect()
}

/// Renders both sweeps.
pub fn render(no_rows: &[NoRow], prune_rows: &[PruneRow]) -> String {
    let mut out = String::from("Ablation A: N_o sweep (FAST-BASIC kernel cycles)\n");
    out.push_str(&crate::harness::render_table(
        &["N_o".to_string(), "kernel cycles".to_string()],
        &no_rows
            .iter()
            .map(|r| vec![r.no.to_string(), r.kernel_cycles.to_string()])
            .collect::<Vec<_>>(),
    ));
    out.push_str("\nAblation B: CST pruning strength (Section V-A Remark)\n");
    out.push_str(&crate::harness::render_table(
        &[
            "construction".to_string(),
            "build".to_string(),
            "kernel cycles".to_string(),
            "total".to_string(),
        ],
        &prune_rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    crate::harness::fmt_time(r.build_sec),
                    r.kernel_cycles.to_string(),
                    crate::harness::fmt_time(r.total_sec),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug: full figure run; covered by the release-mode CI test step")]
    fn no_sweep_is_monotone_decreasing() {
        let mut cache = DatasetCache::new();
        let rows = sweep_no(&mut cache, DatasetId::Dg01, 2);
        for w in rows.windows(2) {
            assert!(
                w[0].kernel_cycles >= w[1].kernel_cycles,
                "N_o={} gave {} cycles but N_o={} gave {}",
                w[0].no,
                w[0].kernel_cycles,
                w[1].no,
                w[1].kernel_cycles
            );
        }
    }

    #[test]
    fn stronger_pruning_never_increases_kernel_cycles() {
        let mut cache = DatasetCache::new();
        let rows = sweep_pruning(&mut cache, DatasetId::Dg01, 6);
        assert!(rows[0].kernel_cycles >= rows[1].kernel_cycles);
        assert!(rows[1].kernel_cycles >= rows[2].kernel_cycles);
    }
}
