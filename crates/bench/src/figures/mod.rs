//! One module per table/figure of the paper's evaluation (DESIGN.md §4).

pub mod ablation;
pub mod chaos;
pub mod cst_cache;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11_12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod host_scaling;
pub mod multi_tenant;
pub mod obsfig;
pub mod serving;
pub mod sessions;
pub mod shard_planning;
pub mod snapshot;
pub mod table3;
