//! Host-pipeline scaling: the sharded multi-threaded CST build+partition.
//!
//! Beyond the paper: the Remark in Section V-A notes the FPGA idles while
//! the CPU builds and partitions the CST, and the `probe` time split shows
//! those phases dominating host time at DG10. This figure sweeps the
//! `host_threads` knob of the sharded pipeline (`cst::pipeline`,
//! `FastConfig::host_threads`) — under both the blind contiguous shard
//! planner and the workload-aware `Auto` planner (`cst::planner`) — and
//! reports the host preparation time.
//!
//! Two numbers per point, per the repo's measurement policy (DESIGN.md §6):
//!
//! * **modelled prepare** — the overlapped host model on the paper's
//!   8-core Xeon (`fill + max(build_par − fill, partition)`; see
//!   `fast::host` docs). This is the figure's scaling metric: its work
//!   terms are thread-count independent (the shard plan never depends on
//!   the thread count), so it isolates the parallelisation effect from
//!   machine noise and core count.
//! * **measured build wall** — the real wall clock of the build phase on
//!   *this* machine, reported for honesty: on a single-core CI container
//!   threads time-share and the wall cannot improve.
//!
//! Probing planners additionally run a **seeded vs cold** comparison
//! (`FastConfig::seed_from_probe` on vs off): seeded builds start from the
//! probe's memoised candidate space, so the plan column (the probe charged
//! as *overhead*, `FastReport::modeled_plan_overhead_sec`) collapses to 0
//! and the per-shard top-down scans disappear. The seeded-vs-cold bar is
//! asserted on the **deterministic** scan-work counter
//! (`FastReport::build_topdown_entries` — the probe cost is identical on
//! both sides, so comparing the builds' scan work compares total prepare
//! work), with the measured build CPU seconds reported alongside.
//!
//! Embedding counts are asserted identical to the sequential pipeline at
//! every thread count and planner (the pipeline's correctness bar), and
//! the `Auto` planner's modelled prepare is asserted ≤ the contiguous
//! planner's **per query** — the planner must not regress the flat
//! queries that already scale.

use crate::harness::{experiment_config, DatasetCache};
use fast::{FastReport, ShardPlanner, Variant};
use graph_core::{benchmark_query, DatasetId};
use std::collections::HashMap;

/// One (planner, thread-count) point, aggregated over the query set.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: DatasetId,
    pub planner: ShardPlanner,
    pub threads: usize,
    /// Shard counts over the query set: fixed (16) for contiguous rows,
    /// the planner's per-query choices for auto rows.
    pub shards: String,
    /// Total embeddings over the query set — identical across rows.
    pub embeddings: u64,
    /// Modelled overlapped host preparation seconds (build ∥ partition).
    pub modeled_prepare_sec: f64,
    /// Modelled shard-planning *overhead* seconds: the probe charged only
    /// when its candidate space was not consumed by seeded builds
    /// (`FastReport::modeled_plan_overhead_sec`) — ~0 for seeded rows.
    pub modeled_plan_sec: f64,
    /// Modelled end-to-end elapsed seconds.
    pub modeled_total_sec: f64,
    /// Measured wall seconds of the build phase on this machine.
    pub build_wall_sec: f64,
    /// Measured CPU seconds spent building (total work across shards),
    /// with seeding on (the default).
    pub build_cpu_sec: f64,
    /// Measured CPU build seconds with seeding **off** (cold top-down
    /// scans per shard); equals [`build_cpu_sec`](Self::build_cpu_sec) for
    /// the contiguous planner, which never probes.
    pub build_cpu_cold_sec: f64,
    /// Phase-1 scan work across shard builds with seeding on
    /// (deterministic; 0 when every shard was seeded).
    pub topdown_entries: usize,
    /// Phase-1 scan work with seeding off — what the probe's single pass
    /// replaces.
    pub cold_topdown_entries: usize,
}

/// Thread counts swept (the paper's host is an 8-core Xeon).
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Planners swept: the blind baseline and the workload-aware auto planner.
pub const PLANNERS: [ShardPlanner; 2] = [ShardPlanner::Contiguous, ShardPlanner::Auto];

/// Shard count for the contiguous parallel rows (the auto planner picks
/// per query, capped at the default 16). Fixed — never derived from the
/// thread count — so every parallel row partitions the identical shard
/// stream; see `cst::pipeline` on determinism.
pub const SHARDS: usize = 16;

/// Queries aggregated over: the root-shardable subset of the benchmark
/// queries. Under the blind contiguous planner, root sharding duplicates
/// interior candidates 2.7–4.6× on the hub-dominated queries (q1, q2, q3,
/// q8 — the same skew/overlap effect the paper's Fig. 14 commentary notes
/// for the root-sharded DAF-8/CECI-8 baselines), so this figure sticks to
/// the queries where sharding already pays; the `shardplan` figure covers
/// the full set per planner. EXPERIMENTS.md records both tables.
pub const QUERIES: [usize; 5] = [0, 4, 5, 6, 7];

/// The modelled host-preparation time of a report: the part of the
/// overlapped elapsed model that precedes the CPU matching share.
pub fn modeled_prepare_sec(r: &FastReport) -> f64 {
    r.modeled_fill_sec
        + (r.modeled_build_parallel_sec - r.modeled_fill_sec).max(r.modeled_partition_sec)
}

/// Runs the planner × thread sweep on `dataset` over `queries`.
///
/// # Panics
/// Panics if any (planner, thread count) changes the embedding count, if
/// the auto planner's modelled prepare exceeds the contiguous planner's on
/// any query at any thread count, or if a seeded run's prepare scan work
/// exceeds the cold run's on any query (the probe-seeded build bar: with
/// the probe identical on both sides, seeded builds must never scan more
/// than cold ones — and must not scan at all when every shard seeded).
pub fn run(cache: &mut DatasetCache, dataset: DatasetId, queries: &[usize]) -> Vec<Row> {
    let g = cache.get(dataset);
    let mut rows = Vec::new();
    // Per-query contiguous prepare, keyed by (threads, query) — the
    // no-regression bar for the auto rows.
    let mut contiguous_prepare: HashMap<(usize, usize), f64> = HashMap::new();
    for &planner in &PLANNERS {
        for &threads in &THREADS {
            let mut config = experiment_config(Variant::Sep);
            config.host_threads = threads;
            config.pipeline_shards = Some(SHARDS);
            config.shard_planner = planner;
            let mut embeddings = 0u64;
            let mut prepare = 0.0f64;
            let mut plan = 0.0f64;
            let mut total = 0.0f64;
            let mut build_wall = 0.0f64;
            let mut build_cpu = 0.0f64;
            let mut build_cpu_cold = 0.0f64;
            let mut topdown = 0usize;
            let mut cold_topdown = 0usize;
            let mut shards: Vec<usize> = Vec::new();
            for &qi in queries {
                let q = benchmark_query(qi);
                let report = fast::run_fast(&q, g, &config).unwrap();
                let q_prepare = modeled_prepare_sec(&report);
                match planner {
                    ShardPlanner::Contiguous => {
                        contiguous_prepare.insert((threads, qi), q_prepare);
                    }
                    _ => {
                        let bar = contiguous_prepare[&(threads, qi)];
                        assert!(
                            q_prepare <= bar + 1e-12,
                            "{planner} regressed q{qi} at {threads} threads: \
                             {q_prepare:.6}s > contiguous {bar:.6}s"
                        );
                    }
                }
                embeddings += report.embeddings;
                prepare += q_prepare;
                plan += report.modeled_plan_overhead_sec();
                total += report.modeled_total_sec();
                build_wall += report.build_time.as_secs_f64();
                build_cpu += report.build_cpu_time.as_secs_f64();
                topdown += report.build_topdown_entries;
                shards.push(report.pipeline_shards);
                if planner == ShardPlanner::Contiguous || threads == 1 {
                    // Seeding is a no-op without a probe (the contiguous
                    // planner never probes; threads == 1 takes the
                    // sequential, unplanned flow): the cold columns are the
                    // run itself — rerunning would recompute identical
                    // numbers.
                    build_cpu_cold += report.build_cpu_time.as_secs_f64();
                    cold_topdown += report.build_topdown_entries;
                } else {
                    // The seeded-vs-cold bar: rerun with seeding disabled.
                    let mut cold_config = config.clone();
                    cold_config.seed_from_probe = false;
                    let cold = fast::run_fast(&q, g, &cold_config).unwrap();
                    assert_eq!(
                        cold.embeddings, report.embeddings,
                        "{planner} q{qi}: seeding changed the count"
                    );
                    assert_eq!(cold.pipeline_shards, report.pipeline_shards);
                    assert!(
                        report.build_topdown_entries <= cold.build_topdown_entries,
                        "{planner} q{qi} at {threads} threads: seeded prepare scanned \
                         more than cold ({} > {})",
                        report.build_topdown_entries,
                        cold.build_topdown_entries,
                    );
                    if report.seeded_shards == report.pipeline_shards
                        && cold.build_topdown_entries > 0
                    {
                        assert_eq!(
                            report.build_topdown_entries, 0,
                            "{planner} q{qi}: fully seeded build still scanned"
                        );
                    }
                    build_cpu_cold += cold.build_cpu_time.as_secs_f64();
                    cold_topdown += cold.build_topdown_entries;
                }
            }
            if let Some(first) = rows.first() {
                let first: &Row = first;
                assert_eq!(
                    embeddings, first.embeddings,
                    "{planner}/{threads} threads changed the embedding count"
                );
            }
            shards.dedup();
            rows.push(Row {
                dataset,
                planner,
                threads,
                shards: shards
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join("/"),
                embeddings,
                modeled_prepare_sec: prepare,
                modeled_plan_sec: plan,
                modeled_total_sec: total,
                build_wall_sec: build_wall,
                build_cpu_sec: build_cpu,
                build_cpu_cold_sec: build_cpu_cold,
                topdown_entries: topdown,
                cold_topdown_entries: cold_topdown,
            });
        }
    }
    rows
}

/// Renders the figure.
pub fn render(dataset: DatasetId, rows: &[Row]) -> String {
    let base = rows
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.modeled_prepare_sec)
        .unwrap_or(0.0);
    let header: Vec<String> = [
        "planner",
        "threads",
        "shards",
        "modelled prepare",
        "speedup",
        "plan overhead",
        "modelled total",
        "build wall (this host)",
        "build cpu",
        "build cpu (cold)",
        "topdown scans",
        "topdown scans (cold)",
        "#embeddings",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.planner.to_string(),
                r.threads.to_string(),
                r.shards.clone(),
                crate::harness::fmt_time(r.modeled_prepare_sec),
                crate::harness::fmt_speedup(base / r.modeled_prepare_sec),
                crate::harness::fmt_time(r.modeled_plan_sec),
                crate::harness::fmt_time(r.modeled_total_sec),
                crate::harness::fmt_time(r.build_wall_sec),
                crate::harness::fmt_time(r.build_cpu_sec),
                crate::harness::fmt_time(r.build_cpu_cold_sec),
                r.topdown_entries.to_string(),
                r.cold_topdown_entries.to_string(),
                r.embeddings.to_string(),
            ]
        })
        .collect();
    format!(
        "Host-pipeline scaling on {dataset} (sharded CST build + partition, contiguous {} shards vs auto-planned; \
         auto builds are probe-seeded — 'cold' columns rerun them with seeding off)\n{}",
        SHARDS,
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The probe-seeded build acceptance bar on the hostscale target:
    /// auto-planned (probing) rows build from the probe's candidate space —
    /// zero top-down scan work where the cold reruns scan millions of
    /// entries — so the probe is absorbed (plan overhead 0) and per-query
    /// prepare work strictly drops (`run` itself asserts the per-query
    /// seeded ≤ cold bar). Measured build CPU gets a generous noise margin;
    /// the deterministic counters carry the hard claim.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug: full figure run; covered by the release-mode CI test step"
    )]
    fn seeded_prepare_beats_cold_prepare() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg03, &QUERIES);
        // threads == 1 runs the sequential (unplanned, unseeded) flow —
        // only the pipelined rows carry a probe to seed from.
        for r in rows
            .iter()
            .filter(|r| r.planner != ShardPlanner::Contiguous && r.threads > 1)
        {
            assert_eq!(
                r.topdown_entries, 0,
                "{} at {} threads: seeded builds must not scan top-down",
                r.planner, r.threads
            );
            assert!(
                r.cold_topdown_entries > 0,
                "{} at {} threads: cold builds scan top-down",
                r.planner, r.threads
            );
            assert_eq!(
                r.modeled_plan_sec, 0.0,
                "{} at {} threads: the probe is absorbed into seeded builds",
                r.planner, r.threads
            );
            assert!(
                r.build_cpu_sec <= r.build_cpu_cold_sec * 1.10,
                "{} at {} threads: seeded build CPU {:.4}s vs cold {:.4}s",
                r.planner, r.threads, r.build_cpu_sec, r.build_cpu_cold_sec
            );
        }
    }

    #[test]
    fn counts_identical_and_modeled_prepare_monotone() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg01, &[0, 6]);
        assert_eq!(rows.len(), PLANNERS.len() * THREADS.len());
        // `run` itself asserts count identity and the per-query
        // auto ≤ contiguous bar; monotone non-increasing modelled prepare
        // over threads (per planner) is the scaling claim.
        for planner_rows in rows.chunks(THREADS.len()) {
            for w in planner_rows.windows(2) {
                assert!(
                    w[1].modeled_prepare_sec <= w[0].modeled_prepare_sec + 1e-12,
                    "{} threads {}→{}: {} → {}",
                    w[0].planner,
                    w[0].threads,
                    w[1].threads,
                    w[0].modeled_prepare_sec,
                    w[1].modeled_prepare_sec
                );
            }
        }
    }
}
