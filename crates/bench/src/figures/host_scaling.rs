//! Host-pipeline scaling: the sharded multi-threaded CST build+partition.
//!
//! Beyond the paper: the Remark in Section V-A notes the FPGA idles while
//! the CPU builds and partitions the CST, and the `probe` time split shows
//! those phases dominating host time at DG10. This figure sweeps the
//! `host_threads` knob of the sharded pipeline (`cst::pipeline`,
//! `FastConfig::host_threads`) at a fixed thread-independent shard count
//! and reports the host preparation time.
//!
//! Two numbers per point, per the repo's measurement policy (DESIGN.md §6):
//!
//! * **modelled prepare** — the overlapped host model on the paper's
//!   8-core Xeon (`fill + max(build_par − fill, partition)`; see
//!   `fast::host` docs). This is the figure's scaling metric: its work
//!   terms are thread-count independent (fixed shards), so it isolates the
//!   parallelisation effect from machine noise and core count.
//! * **measured build wall** — the real wall clock of the build phase on
//!   *this* machine, reported for honesty: on a single-core CI container
//!   threads time-share and the wall cannot improve.
//!
//! Embedding counts are asserted identical to the sequential pipeline at
//! every thread count (the pipeline's correctness bar).

use crate::harness::{experiment_config, DatasetCache};
use fast::{FastReport, Variant};
use graph_core::{benchmark_query, DatasetId};

/// One (dataset, thread-count) point, aggregated over the query set.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: DatasetId,
    pub threads: usize,
    /// Shard count (fixed across thread counts; 1 for the sequential row).
    pub shards: usize,
    /// Total embeddings over the query set — identical across rows.
    pub embeddings: u64,
    /// Modelled overlapped host preparation seconds (build ∥ partition).
    pub modeled_prepare_sec: f64,
    /// Modelled end-to-end elapsed seconds.
    pub modeled_total_sec: f64,
    /// Measured wall seconds of the build phase on this machine.
    pub build_wall_sec: f64,
    /// Measured CPU seconds spent building (total work across shards).
    pub build_cpu_sec: f64,
}

/// Thread counts swept (the paper's host is an 8-core Xeon).
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Shard count for the parallel rows. Fixed — never derived from the
/// thread count — so every parallel row partitions the identical shard
/// stream; see `cst::pipeline` on determinism.
pub const SHARDS: usize = 16;

/// Queries aggregated over: the root-shardable subset of the benchmark
/// queries. Root sharding duplicates interior candidates reachable from
/// several shards; for hub-dominated queries (q1, q2, q3, q8) the
/// duplication factor reaches 2.7–4.6× at 16 shards — the same
/// skew/overlap effect the paper's Fig. 14 commentary notes for the
/// root-sharded DAF-8/CECI-8 baselines — while for these five the
/// per-shard bottom-up refinement prunes so much that total work *drops*
/// (duplication factors 0.2–1.3×). EXPERIMENTS.md records the full table.
pub const QUERIES: [usize; 5] = [0, 4, 5, 6, 7];

/// The modelled host-preparation time of a report: the part of the
/// overlapped elapsed model that precedes the CPU matching share.
pub fn modeled_prepare_sec(r: &FastReport) -> f64 {
    r.modeled_fill_sec
        + (r.modeled_build_parallel_sec - r.modeled_fill_sec).max(r.modeled_partition_sec)
}

/// Runs the thread sweep on `dataset` over `queries`.
///
/// # Panics
/// Panics if any thread count changes the embedding count — the pipeline's
/// correctness bar is bit-identical results for every `host_threads`.
pub fn run(cache: &mut DatasetCache, dataset: DatasetId, queries: &[usize]) -> Vec<Row> {
    let g = cache.get(dataset);
    let mut rows = Vec::new();
    for &threads in &THREADS {
        let mut config = experiment_config(Variant::Sep);
        config.host_threads = threads;
        config.pipeline_shards = Some(SHARDS);
        let mut embeddings = 0u64;
        let mut prepare = 0.0f64;
        let mut total = 0.0f64;
        let mut build_wall = 0.0f64;
        let mut build_cpu = 0.0f64;
        let mut shards = 1usize;
        for &qi in queries {
            let q = benchmark_query(qi);
            let report = fast::run_fast(&q, g, &config).unwrap();
            embeddings += report.embeddings;
            prepare += modeled_prepare_sec(&report);
            total += report.modeled_total_sec();
            build_wall += report.build_time.as_secs_f64();
            build_cpu += report.build_cpu_time.as_secs_f64();
            shards = report.pipeline_shards;
        }
        if let Some(first) = rows.first() {
            let first: &Row = first;
            assert_eq!(
                embeddings, first.embeddings,
                "threads={threads} changed the embedding count"
            );
        }
        rows.push(Row {
            dataset,
            threads,
            shards,
            embeddings,
            modeled_prepare_sec: prepare,
            modeled_total_sec: total,
            build_wall_sec: build_wall,
            build_cpu_sec: build_cpu,
        });
    }
    rows
}

/// Renders the figure.
pub fn render(dataset: DatasetId, rows: &[Row]) -> String {
    let base = rows
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.modeled_prepare_sec)
        .unwrap_or(0.0);
    let header = vec![
        "threads".to_string(),
        "shards".to_string(),
        "modelled prepare".to_string(),
        "speedup".to_string(),
        "modelled total".to_string(),
        "build wall (this host)".to_string(),
        "build cpu".to_string(),
        "#embeddings".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                r.shards.to_string(),
                crate::harness::fmt_time(r.modeled_prepare_sec),
                crate::harness::fmt_speedup(base / r.modeled_prepare_sec),
                crate::harness::fmt_time(r.modeled_total_sec),
                crate::harness::fmt_time(r.build_wall_sec),
                crate::harness::fmt_time(r.build_cpu_sec),
                r.embeddings.to_string(),
            ]
        })
        .collect();
    format!(
        "Host-pipeline scaling on {dataset} (sharded CST build + partition, {} shards)\n{}",
        SHARDS,
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_identical_and_modeled_prepare_monotone() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg01, &[0, 6]);
        assert_eq!(rows.len(), THREADS.len());
        // `run` itself asserts count identity; monotone non-increasing
        // modelled prepare time is the scaling claim.
        for w in rows.windows(2) {
            assert!(
                w[1].modeled_prepare_sec <= w[0].modeled_prepare_sec + 1e-12,
                "threads {}→{}: {} → {}",
                w[0].threads,
                w[1].threads,
                w[0].modeled_prepare_sec,
                w[1].modeled_prepare_sec
            );
        }
    }
}
