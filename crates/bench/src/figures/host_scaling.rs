//! Host-pipeline scaling: the sharded multi-threaded CST build+partition.
//!
//! Beyond the paper: the Remark in Section V-A notes the FPGA idles while
//! the CPU builds and partitions the CST, and the `probe` time split shows
//! those phases dominating host time at DG10. This figure sweeps the
//! `host_threads` knob of the sharded pipeline (`cst::pipeline`,
//! `FastConfig::host_threads`) — under both the blind contiguous shard
//! planner and the workload-aware `Auto` planner (`cst::planner`) — and
//! reports the host preparation time.
//!
//! Two numbers per point, per the repo's measurement policy (DESIGN.md §6):
//!
//! * **modelled prepare** — the overlapped host model on the paper's
//!   8-core Xeon (`fill + max(build_par − fill, partition)`; see
//!   `fast::host` docs). This is the figure's scaling metric: its work
//!   terms are thread-count independent (the shard plan never depends on
//!   the thread count), so it isolates the parallelisation effect from
//!   machine noise and core count.
//! * **measured build wall** — the real wall clock of the build phase on
//!   *this* machine, reported for honesty: on a single-core CI container
//!   threads time-share and the wall cannot improve.
//!
//! Embedding counts are asserted identical to the sequential pipeline at
//! every thread count and planner (the pipeline's correctness bar), and
//! the `Auto` planner's modelled prepare is asserted ≤ the contiguous
//! planner's **per query** — the planner must not regress the flat
//! queries that already scale.

use crate::harness::{experiment_config, DatasetCache};
use fast::{FastReport, ShardPlanner, Variant};
use graph_core::{benchmark_query, DatasetId};
use std::collections::HashMap;

/// One (planner, thread-count) point, aggregated over the query set.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: DatasetId,
    pub planner: ShardPlanner,
    pub threads: usize,
    /// Shard counts over the query set: fixed (16) for contiguous rows,
    /// the planner's per-query choices for auto rows.
    pub shards: String,
    /// Total embeddings over the query set — identical across rows.
    pub embeddings: u64,
    /// Modelled overlapped host preparation seconds (build ∥ partition).
    pub modeled_prepare_sec: f64,
    /// Modelled shard-planning seconds (probe; outside the prepare model).
    pub modeled_plan_sec: f64,
    /// Modelled end-to-end elapsed seconds.
    pub modeled_total_sec: f64,
    /// Measured wall seconds of the build phase on this machine.
    pub build_wall_sec: f64,
    /// Measured CPU seconds spent building (total work across shards).
    pub build_cpu_sec: f64,
}

/// Thread counts swept (the paper's host is an 8-core Xeon).
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Planners swept: the blind baseline and the workload-aware auto planner.
pub const PLANNERS: [ShardPlanner; 2] = [ShardPlanner::Contiguous, ShardPlanner::Auto];

/// Shard count for the contiguous parallel rows (the auto planner picks
/// per query, capped at the default 16). Fixed — never derived from the
/// thread count — so every parallel row partitions the identical shard
/// stream; see `cst::pipeline` on determinism.
pub const SHARDS: usize = 16;

/// Queries aggregated over: the root-shardable subset of the benchmark
/// queries. Under the blind contiguous planner, root sharding duplicates
/// interior candidates 2.7–4.6× on the hub-dominated queries (q1, q2, q3,
/// q8 — the same skew/overlap effect the paper's Fig. 14 commentary notes
/// for the root-sharded DAF-8/CECI-8 baselines), so this figure sticks to
/// the queries where sharding already pays; the `shardplan` figure covers
/// the full set per planner. EXPERIMENTS.md records both tables.
pub const QUERIES: [usize; 5] = [0, 4, 5, 6, 7];

/// The modelled host-preparation time of a report: the part of the
/// overlapped elapsed model that precedes the CPU matching share.
pub fn modeled_prepare_sec(r: &FastReport) -> f64 {
    r.modeled_fill_sec
        + (r.modeled_build_parallel_sec - r.modeled_fill_sec).max(r.modeled_partition_sec)
}

/// Runs the planner × thread sweep on `dataset` over `queries`.
///
/// # Panics
/// Panics if any (planner, thread count) changes the embedding count, or
/// if the auto planner's modelled prepare exceeds the contiguous
/// planner's on any query at any thread count.
pub fn run(cache: &mut DatasetCache, dataset: DatasetId, queries: &[usize]) -> Vec<Row> {
    let g = cache.get(dataset);
    let mut rows = Vec::new();
    // Per-query contiguous prepare, keyed by (threads, query) — the
    // no-regression bar for the auto rows.
    let mut contiguous_prepare: HashMap<(usize, usize), f64> = HashMap::new();
    for &planner in &PLANNERS {
        for &threads in &THREADS {
            let mut config = experiment_config(Variant::Sep);
            config.host_threads = threads;
            config.pipeline_shards = Some(SHARDS);
            config.shard_planner = planner;
            let mut embeddings = 0u64;
            let mut prepare = 0.0f64;
            let mut plan = 0.0f64;
            let mut total = 0.0f64;
            let mut build_wall = 0.0f64;
            let mut build_cpu = 0.0f64;
            let mut shards: Vec<usize> = Vec::new();
            for &qi in queries {
                let q = benchmark_query(qi);
                let report = fast::run_fast(&q, g, &config).unwrap();
                let q_prepare = modeled_prepare_sec(&report);
                match planner {
                    ShardPlanner::Contiguous => {
                        contiguous_prepare.insert((threads, qi), q_prepare);
                    }
                    _ => {
                        let bar = contiguous_prepare[&(threads, qi)];
                        assert!(
                            q_prepare <= bar + 1e-12,
                            "{planner} regressed q{qi} at {threads} threads: \
                             {q_prepare:.6}s > contiguous {bar:.6}s"
                        );
                    }
                }
                embeddings += report.embeddings;
                prepare += q_prepare;
                plan += report.modeled_plan_sec;
                total += report.modeled_total_sec();
                build_wall += report.build_time.as_secs_f64();
                build_cpu += report.build_cpu_time.as_secs_f64();
                shards.push(report.pipeline_shards);
            }
            if let Some(first) = rows.first() {
                let first: &Row = first;
                assert_eq!(
                    embeddings, first.embeddings,
                    "{planner}/{threads} threads changed the embedding count"
                );
            }
            shards.dedup();
            rows.push(Row {
                dataset,
                planner,
                threads,
                shards: shards
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join("/"),
                embeddings,
                modeled_prepare_sec: prepare,
                modeled_plan_sec: plan,
                modeled_total_sec: total,
                build_wall_sec: build_wall,
                build_cpu_sec: build_cpu,
            });
        }
    }
    rows
}

/// Renders the figure.
pub fn render(dataset: DatasetId, rows: &[Row]) -> String {
    let base = rows
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.modeled_prepare_sec)
        .unwrap_or(0.0);
    let header: Vec<String> = [
        "planner",
        "threads",
        "shards",
        "modelled prepare",
        "speedup",
        "plan",
        "modelled total",
        "build wall (this host)",
        "build cpu",
        "#embeddings",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.planner.to_string(),
                r.threads.to_string(),
                r.shards.clone(),
                crate::harness::fmt_time(r.modeled_prepare_sec),
                crate::harness::fmt_speedup(base / r.modeled_prepare_sec),
                crate::harness::fmt_time(r.modeled_plan_sec),
                crate::harness::fmt_time(r.modeled_total_sec),
                crate::harness::fmt_time(r.build_wall_sec),
                crate::harness::fmt_time(r.build_cpu_sec),
                r.embeddings.to_string(),
            ]
        })
        .collect();
    format!(
        "Host-pipeline scaling on {dataset} (sharded CST build + partition, contiguous {} shards vs auto-planned)\n{}",
        SHARDS,
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_identical_and_modeled_prepare_monotone() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg01, &[0, 6]);
        assert_eq!(rows.len(), PLANNERS.len() * THREADS.len());
        // `run` itself asserts count identity and the per-query
        // auto ≤ contiguous bar; monotone non-increasing modelled prepare
        // over threads (per planner) is the scaling claim.
        for planner_rows in rows.chunks(THREADS.len()) {
            for w in planner_rows.windows(2) {
                assert!(
                    w[1].modeled_prepare_sec <= w[0].modeled_prepare_sec + 1e-12,
                    "{} threads {}→{}: {} → {}",
                    w[0].planner,
                    w[0].threads,
                    w[1].threads,
                    w[0].modeled_prepare_sec,
                    w[1].modeled_prepare_sec
                );
            }
        }
    }
}
