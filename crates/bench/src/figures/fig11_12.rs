//! Fig. 11 and Fig. 12: the hardware-optimisation ladder.
//!
//! Fig. 11 compares FAST-BASIC with FAST-TASK (task parallelism, up to 50%
//! improvement, lower for queries whose `N/M` is high); Fig. 12 compares
//! FAST-TASK with FAST-SEP (separated task generators, 30-40%, best when
//! `N/M > 1`). Both run q2, q3, q5, q6, q7, q8 on DG10 in the paper.

use crate::harness::{experiment_config, DatasetCache};
use fast::{run_fast, Variant};
use graph_core::{benchmark_query, DatasetId};

/// One query's measurements across the three variants.
#[derive(Debug, Clone)]
pub struct Row {
    pub query: usize,
    pub basic_sec: f64,
    pub task_sec: f64,
    pub sep_sec: f64,
    /// `N / M` from the kernel counters (drives where the gains land).
    pub n_over_m: f64,
}

impl Row {
    /// Fig. 11's acceleration ratio: the improvement of TASK over BASIC.
    pub fn task_gain(&self) -> f64 {
        1.0 - self.task_sec / self.basic_sec
    }

    /// Fig. 12's acceleration ratio: the improvement of SEP over TASK.
    pub fn sep_gain(&self) -> f64 {
        1.0 - self.sep_sec / self.task_sec
    }
}

/// The queries the paper plots.
pub const QUERIES: [usize; 6] = [2, 3, 5, 6, 7, 8];

/// Runs the ladder on `dataset`.
pub fn run(cache: &mut DatasetCache, dataset: DatasetId) -> Vec<Row> {
    let g = cache.get(dataset);
    QUERIES
        .iter()
        .map(|&qi| {
            let q = benchmark_query(qi);
            let basic = run_fast(&q, g, &experiment_config(Variant::Basic)).unwrap();
            let task = run_fast(&q, g, &experiment_config(Variant::Task)).unwrap();
            let sep = run_fast(&q, g, &experiment_config(Variant::Sep)).unwrap();
            let n_over_m = if sep.counts.m == 0 {
                f64::INFINITY
            } else {
                sep.counts.n as f64 / sep.counts.m as f64
            };
            Row {
                query: qi,
                basic_sec: basic.kernel_time_sec,
                task_sec: task.kernel_time_sec,
                sep_sec: sep.kernel_time_sec,
                n_over_m,
            }
        })
        .collect()
}

/// Renders both figures from one run.
pub fn render(dataset: DatasetId, rows: &[Row]) -> String {
    let header = vec![
        "query".to_string(),
        "BASIC".to_string(),
        "TASK".to_string(),
        "SEP".to_string(),
        "N/M".to_string(),
        "Fig11 gain".to_string(),
        "Fig12 gain".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("q{}", r.query),
                crate::harness::fmt_time(r.basic_sec),
                crate::harness::fmt_time(r.task_sec),
                crate::harness::fmt_time(r.sep_sec),
                if r.n_over_m.is_finite() {
                    format!("{:.2}", r.n_over_m)
                } else {
                    "inf".to_string()
                },
                format!("{:.0}%", r.task_gain() * 100.0),
                format!("{:.0}%", r.sep_gain() * 100.0),
            ]
        })
        .collect();
    format!(
        "Fig. 11/12: task parallelism and generator separation on {dataset} (kernel time)\n{}",
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug: full figure run; covered by the release-mode CI test step")]
    fn gains_within_theory_bounds() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg01);
        for r in &rows {
            // Section VI-C: TASK ≤ 50%+ε over BASIC; Section VI-D: SEP ≤ 33%.
            assert!(
                r.task_gain() <= 0.52 && r.task_gain() >= 0.0,
                "q{}: task gain {}",
                r.query,
                r.task_gain()
            );
            assert!(
                r.sep_gain() <= 1.0 / 3.0 + 0.02 && r.sep_gain() >= 0.0,
                "q{}: sep gain {}",
                r.query,
                r.sep_gain()
            );
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug: full figure run; covered by the release-mode CI test step")]
    fn low_m_queries_gain_less_from_task_parallelism() {
        // The paper: q3's acceleration is much lower because its N/M is
        // high. Verify the correlation on our counts: the row with the
        // highest N/M must not have the highest task gain.
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg01);
        let max_nm = rows
            .iter()
            .max_by(|a, b| a.n_over_m.total_cmp(&b.n_over_m))
            .unwrap();
        let max_gain = rows
            .iter()
            .max_by(|a, b| a.task_gain().total_cmp(&b.task_gain()))
            .unwrap();
        assert_ne!(max_nm.query, max_gain.query);
    }
}
