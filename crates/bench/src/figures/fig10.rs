//! Fig. 10: partition time per embedding as the data graph grows.
//!
//! The paper reports the partition time normalised by the number of
//! embeddings staying near-flat (1.09-2.15 ns/embedding from DG01 to DG60),
//! demonstrating the partition mechanism scales with the workload.

use crate::harness::{experiment_config, DatasetCache};
use fast::{run_fast, Variant};
use graph_core::{benchmark_query, DatasetId};

/// One (query, dataset) point.
#[derive(Debug, Clone)]
pub struct Row {
    pub query: usize,
    pub dataset: DatasetId,
    pub embeddings: u64,
    pub partition_time_sec: f64,
}

impl Row {
    /// Seconds of partitioning per embedding.
    pub fn time_per_embedding(&self) -> f64 {
        if self.embeddings == 0 {
            f64::INFINITY
        } else {
            self.partition_time_sec / self.embeddings as f64
        }
    }
}

/// The queries the paper plots in Fig. 10.
pub const QUERIES: [usize; 6] = [0, 1, 2, 4, 7, 8];

/// Runs the measurement.
pub fn run(cache: &mut DatasetCache, datasets: &[DatasetId]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &d in datasets {
        let g = cache.get(d);
        for &qi in &QUERIES {
            let q = benchmark_query(qi);
            let report = run_fast(&q, g, &experiment_config(Variant::Sep))
                .expect("benchmark query fits the kernel");
            rows.push(Row {
                query: qi,
                dataset: d,
                embeddings: report.embeddings,
                partition_time_sec: report.modeled_partition_sec,
            });
        }
    }
    rows
}

/// Renders the figure, with per-dataset averages.
pub fn render(rows: &[Row]) -> String {
    let header = vec![
        "query".to_string(),
        "dataset".to_string(),
        "#embeddings".to_string(),
        "partition time".to_string(),
        "per embedding".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("q{}", r.query),
                r.dataset.to_string(),
                r.embeddings.to_string(),
                crate::harness::fmt_time(r.partition_time_sec),
                if r.time_per_embedding().is_finite() {
                    format!("{:.2}ns", r.time_per_embedding() * 1e9)
                } else {
                    "-".to_string()
                },
            ]
        })
        .collect();
    let mut out = format!(
        "Fig. 10: partition time per embedding\n{}",
        crate::harness::render_table(&header, &body)
    );
    for d in graph_core::DatasetId::ALL {
        let per: Vec<f64> = rows
            .iter()
            .filter(|r| r.dataset == d && r.embeddings > 0)
            .map(Row::time_per_embedding)
            .collect();
        if !per.is_empty() {
            out.push_str(&format!(
                "average {d}: {:.2}ns/embedding\n",
                crate::harness::geomean(&per) * 1e9
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug: full figure run; covered by the release-mode CI test step")]
    fn rows_have_embeddings() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, &[DatasetId::Dg01]);
        assert_eq!(rows.len(), QUERIES.len());
        assert!(rows.iter().any(|r| r.embeddings > 0));
    }
}
