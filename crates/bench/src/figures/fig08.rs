//! Fig. 8: the k-determination experiment.
//!
//! "Besides our greedy strategy, we test FAST with fixed k ∈ {2,4,6,8,10}.
//! The average number of CST and the average partition time are reported. …
//! our greedy approach does achieve the least number of CST and least time
//! cost to partition CST." (on DG03)

use crate::harness::{experiment_config, DatasetCache};
use cst::{build_cst, partition_cst};
use fast::Variant;
use graph_core::{benchmark_query, path_based_order, select_root, BfsTree, DatasetId};
use std::time::Instant;

/// One point of the figure: a k policy with its averages over the queries.
#[derive(Debug, Clone)]
pub struct Row {
    /// `None` = greedy.
    pub k: Option<u32>,
    pub avg_partitions: f64,
    pub avg_partition_time_sec: f64,
}

/// k values tested besides the greedy policy.
pub const FIXED_K: [u32; 5] = [2, 4, 6, 8, 10];

/// Queries averaged over (the partition-heavy subset).
pub const QUERIES: [usize; 6] = [1, 2, 3, 5, 7, 8];

/// Runs the sweep on `dataset` (the paper uses DG03).
pub fn run(cache: &mut DatasetCache, dataset: DatasetId) -> Vec<Row> {
    let g = cache.get(dataset);
    let config = experiment_config(Variant::Sep);

    let mut policies: Vec<Option<u32>> = vec![None];
    policies.extend(FIXED_K.iter().map(|&k| Some(k)));

    // Pre-build the CSTs once per query: Fig. 8 isolates partitioning cost.
    let prepared: Vec<_> = QUERIES
        .iter()
        .map(|&qi| {
            let q = benchmark_query(qi);
            let root = select_root(&q, g);
            let tree = BfsTree::new(&q, root);
            let order = path_based_order(&q, &tree, g);
            let cst = build_cst(&q, g, &tree);
            (q, order, cst)
        })
        .collect();

    policies
        .into_iter()
        .map(|k| {
            let mut partitions = 0usize;
            let mut time = 0.0f64;
            for (q, order, cst) in &prepared {
                let mut pc = config.partition_config(q.vertex_count(), cst);
                pc.fixed_k = k;
                let t0 = Instant::now();
                let (parts, _) = partition_cst(cst, order, &pc);
                time += t0.elapsed().as_secs_f64();
                partitions += parts.len();
            }
            Row {
                k,
                avg_partitions: partitions as f64 / QUERIES.len() as f64,
                avg_partition_time_sec: time / QUERIES.len() as f64,
            }
        })
        .collect()
}

/// Renders the figure.
pub fn render(dataset: DatasetId, rows: &[Row]) -> String {
    let header = vec![
        "k".to_string(),
        "#CST (avg)".to_string(),
        "partition time (avg)".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.k.map_or("greedy".to_string(), |k| k.to_string()),
                format!("{:.1}", r.avg_partitions),
                crate::harness::fmt_time(r.avg_partition_time_sec),
            ]
        })
        .collect();
    format!(
        "Fig. 8: #CST and partition time varying k on {dataset}\n{}",
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_needs_fewest_partitions() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg01);
        let greedy = rows[0].avg_partitions;
        // The paper's observation: greedy ≤ every fixed k (small slack for
        // ties at this scale).
        for r in &rows[1..] {
            assert!(
                greedy <= r.avg_partitions + 0.51,
                "greedy {greedy} vs k={:?} {}",
                r.k,
                r.avg_partitions
            );
        }
    }
}
