//! Fig. 7: elapsed time of FAST-DRAM vs FAST-BASIC.
//!
//! The paper compares the two on DG10 for q2, q3, q5, q6, q7, q8 and reports
//! ~5x average acceleration, "close to the ratio of the read latency", with
//! the speedup *growing* with dataset size (4.50x DG01, 5.18x DG03, 5.93x
//! DG10) as the fixed transfer overhead amortises.

use crate::harness::{experiment_config, DatasetCache};
use fast::{run_fast, Variant};
use graph_core::{benchmark_query, DatasetId};

/// One row of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    pub query: usize,
    pub dram_sec: f64,
    pub basic_sec: f64,
}

impl Row {
    /// The acceleration ratio FAST-BASIC achieves over FAST-DRAM.
    pub fn speedup(&self) -> f64 {
        self.dram_sec / self.basic_sec
    }
}

/// The queries the paper plots in Fig. 7.
pub const QUERIES: [usize; 6] = [2, 3, 5, 6, 7, 8];

/// Runs the comparison on one dataset.
pub fn run(cache: &mut DatasetCache, dataset: DatasetId) -> Vec<Row> {
    let g = cache.get(dataset);
    QUERIES
        .iter()
        .map(|&qi| {
            let q = benchmark_query(qi);
            let dram = run_fast(&q, g, &experiment_config(Variant::Dram))
                .expect("benchmark query fits the kernel");
            let basic = run_fast(&q, g, &experiment_config(Variant::Basic))
                .expect("benchmark query fits the kernel");
            Row {
                query: qi,
                dram_sec: dram.modeled_total_sec(),
                basic_sec: basic.modeled_total_sec(),
            }
        })
        .collect()
}

/// Renders rows plus the average acceleration.
pub fn render(dataset: DatasetId, rows: &[Row]) -> String {
    let header = vec![
        "query".to_string(),
        "FAST-DRAM".to_string(),
        "FAST-BASIC".to_string(),
        "accel".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("q{}", r.query),
                crate::harness::fmt_time(r.dram_sec),
                crate::harness::fmt_time(r.basic_sec),
                crate::harness::fmt_speedup(r.speedup()),
            ]
        })
        .collect();
    let avg = crate::harness::geomean(&rows.iter().map(Row::speedup).collect::<Vec<_>>());
    format!(
        "Fig. 7: FAST-DRAM vs FAST-BASIC on {dataset}\n{}average acceleration: {:.2}x\n",
        crate::harness::render_table(&header, &body),
        avg
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug: full figure run; covered by the release-mode CI test step")]
    fn basic_beats_dram_on_dg01() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg01);
        assert_eq!(rows.len(), QUERIES.len());
        for r in &rows {
            assert!(
                r.speedup() > 1.0,
                "q{}: DRAM {} vs BASIC {}",
                r.query,
                r.dram_sec,
                r.basic_sec
            );
        }
    }
}
