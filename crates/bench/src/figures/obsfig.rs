//! Observability study (`obsfig` figure target): the serving sweep run
//! with tracing **on**, decomposed into pipeline stages from the recorded
//! spans, plus the obs overhead claim.
//!
//! The figure is **self-asserting**:
//!
//! * the Chrome `trace_event` export of both traced arms must
//!   self-validate ([`obs::chrome::validate`]: well-formed JSON, strictly
//!   monotonic per-track timestamps) and every completed session's spans
//!   must nest (`session ⊇ build ⊇ execute`,
//!   [`obs::chrome::check_nesting`]);
//! * tracing must be cheap: on the best of [`OVERHEAD_REPEATS`]
//!   *interleaved* obs-off/obs-on pairs, obs-on throughput must stay
//!   within [`OVERHEAD_BUDGET`] of obs-off (same interleaving rationale
//!   as the `chaos` overhead claim: ambient load hits both arms alike);
//! * the span-derived queue-wait p99 must agree with the report's
//!   histogram-derived `queue_wait_p99` — the trace and the metrics
//!   pipeline measure the same interval through independent paths, so
//!   disagreement beyond histogram bucketing error is a bug.
//!
//! The stage table is the EXPERIMENTS.md §19 artifact: per-stage
//! latency (queue wait, plan, CST build, per-partition execute, whole
//! session) for the cold vs warm serving arms, with the report's devq
//! column alongside for cross-reference.

use crate::figures::serving::{self, LoadConfig, QUERY_MIX};
use crate::harness::DatasetCache;
use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::DatasetId;
use serve::{metrics, FastService, ServeConfig, ServeReport};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Interleaved obs-off/obs-on pairs the overhead claim measures.
pub const OVERHEAD_REPEATS: usize = 3;

/// Allowed obs-on slowdown: on the best interleaved pair, obs-on
/// throughput must be ≥ `1 - OVERHEAD_BUDGET` of obs-off.
pub const OVERHEAD_BUDGET: f64 = 0.02;

/// Relative tolerance when cross-checking span-derived percentiles
/// against the report's log-bucketed histogram quantiles (bucket
/// midpoints are within ~7% of any sample in the bucket).
const CROSS_CHECK_REL: f64 = 0.15;

/// Per-stage latency decomposition (seconds), cold vs warm arm.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Span name of the stage.
    pub stage: &'static str,
    pub cold_count: usize,
    pub cold_p50: f64,
    pub cold_p99: f64,
    pub warm_count: usize,
    pub warm_p50: f64,
    pub warm_p99: f64,
}

/// One traced serving arm: the report plus its span-derived stage stats.
#[derive(Debug, Clone)]
pub struct TracedArm {
    /// Full service report of the traced run.
    pub report: ServeReport,
    /// Validated Chrome-export stats (non-metadata events, tracks).
    pub trace: obs::chrome::TraceStats,
    /// Stage → sorted span durations in seconds.
    pub stages: BTreeMap<&'static str, Vec<f64>>,
    /// Embeddings per query-mix member — the bit-identity witness.
    pub embeddings: BTreeMap<usize, u64>,
}

/// The figure's full outcome.
#[derive(Debug, Clone)]
pub struct Outcome {
    pub cold: TracedArm,
    pub warm: TracedArm,
    /// Stage rows assembled from the two arms.
    pub rows: Vec<StageRow>,
    /// Best obs-off throughput across the overhead pairs.
    pub off_qps: f64,
    /// Best obs-on throughput across the overhead pairs.
    pub on_qps: f64,
    /// Best per-pair obs-on/obs-off throughput ratio.
    pub best_ratio: f64,
}

/// Stage span names in presentation order.
pub const STAGES: [&str; 5] = ["queue_wait", "plan", "build", "execute", "session"];

/// The serving configuration (mirrors the `serving` figure: FAST-SEP on
/// the experiment-scaled device, auto shard planning, 4 devices).
fn serve_config(clients: usize, cache_capacity: usize) -> ServeConfig {
    let mut fast = FastConfig {
        spec: crate::harness::experiment_spec(),
        ..FastConfig::for_variant(Variant::Sep)
    };
    fast.shard_planner = ShardPlanner::Auto;
    ServeConfig {
        fast,
        devices: 4,
        extra_devices: Vec::new(),
        workers: clients.clamp(1, 8),
        cache_capacity,
        plan_cache_bytes: None,
        cst_cache_bytes: if cache_capacity == 0 {
            0
        } else {
            ServeConfig::default().cst_cache_bytes
        },
        max_in_flight: (2 * clients).max(1),
        ..ServeConfig::default()
    }
}

fn load(clients: usize, requests_per_client: usize) -> LoadConfig {
    LoadConfig {
        clients,
        requests_per_client,
        seed: 0x0B5F,
        think_mean: Duration::from_micros(200),
    }
}

/// Runs one untraced arm (obs off) and returns its report.
fn run_plain(
    g: &Arc<graph_core::Graph>,
    load: &LoadConfig,
    cache_capacity: usize,
) -> (ServeReport, BTreeMap<usize, u64>) {
    obs::disable();
    let service = FastService::new(Arc::clone(g), serve_config(load.clients, cache_capacity));
    let embeddings = serving::drive(&service, load);
    (service.shutdown(), embeddings)
}

/// Runs one traced arm: obs reset + enabled around the run, then exports
/// and validates the trace and decomposes the spans into stages.
///
/// `strict` demands a quiet process: the obs state is global, so a
/// parallel test binary can interleave *another* obs-enabled service's
/// spans into this arm's trace. The sequential experiments binary runs
/// strict (exact span accounting, nesting, the percentile cross-check);
/// the in-crate test tolerates pollution and skips those checks when
/// the session count doesn't reconcile.
fn run_traced(
    g: &Arc<graph_core::Graph>,
    label: &str,
    load: &LoadConfig,
    cache_capacity: usize,
    strict: bool,
) -> TracedArm {
    obs::reset();
    obs::enable();
    let service = FastService::new(Arc::clone(g), serve_config(load.clients, cache_capacity));
    let embeddings = serving::drive(&service, load);
    let report = service.shutdown();
    obs::disable();

    assert_eq!(report.failed, 0, "{label}: no session may fail");
    let (spans, _events) = obs::trace_snapshot();
    let doc = obs::chrome_trace_json();
    let trace = obs::chrome::validate(&doc)
        .unwrap_or_else(|e| panic!("{label}: chrome export failed validation: {e}"));

    let mut stages: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for stage in STAGES {
        let mut durs: Vec<f64> = spans
            .iter()
            .filter(|s| s.name == stage)
            .map(|s| (s.end_ns - s.start_ns) as f64 * 1e-9)
            .collect();
        durs.sort_by(f64::total_cmp);
        stages.insert(stage, durs);
    }

    // Exactly-once span accounting, gated on a quiet process (see the
    // function docs): pollution from a concurrent obs-enabled service
    // shows up as extra session spans or dropped records.
    let sessions = stages["session"].len() as u64;
    assert!(
        sessions >= report.completed,
        "{label}: {sessions} session spans for {} completed sessions",
        report.completed
    );
    let quiet = sessions == report.completed && obs::trace_dropped() == 0;
    assert!(
        !strict || quiet,
        "{label}: strict run polluted ({sessions} session spans, {} completed, {} dropped)",
        report.completed,
        obs::trace_dropped()
    );
    if quiet {
        obs::chrome::check_nesting(&spans, &["session", "build", "execute"])
            .unwrap_or_else(|e| panic!("{label}: span nesting violated: {e}"));
        assert_eq!(
            stages["queue_wait"].len() as u64,
            report.completed,
            "{label}: every picked session records a queue_wait span"
        );
        assert_eq!(
            stages["build"].len() as u64,
            report.completed,
            "{label}: every session records a build span (tier-2 replays included)"
        );
        assert!(
            stages["execute"].len() as u64 >= report.completed,
            "{label}: every session executes at least one partition"
        );
        // Cross-check: the queue_wait span measures submit → pickup, the
        // exact interval `queue_waits.record` feeds the report histogram.
        let span_p99 = metrics::percentile_sorted(&stages["queue_wait"], 0.99);
        let hist_p99 = report.queue_wait_p99;
        assert!(
            (span_p99 - hist_p99).abs() <= CROSS_CHECK_REL * span_p99.max(hist_p99) + 50e-6,
            "{label}: span-derived queue-wait p99 {span_p99:.6}s disagrees with \
             histogram p99 {hist_p99:.6}s"
        );
    }
    TracedArm {
        report,
        trace,
        stages,
        embeddings,
    }
}

/// Runs the observability study: traced cold + warm arms (stage
/// decomposition, trace validation) and the interleaved obs-off/obs-on
/// overhead claim on the warm configuration. Strict: the sequential
/// experiments binary — the full acceptance bar (see [`run_with`]).
pub fn run(
    cache: &mut DatasetCache,
    dataset: DatasetId,
    clients: usize,
    requests_per_client: usize,
) -> Outcome {
    run_with(cache, dataset, clients, requests_per_client, true)
}

/// [`run`] with an explicit `strict` flag. Non-strict tolerates a noisy
/// process (a parallel test binary whose other serve-driving tests
/// record into the same global tracer): exact span accounting, nesting,
/// the cross-check, and the overhead bound are skipped when pollution is
/// detected, while trace validity and bit-identical counts still hold.
pub fn run_with(
    cache: &mut DatasetCache,
    dataset: DatasetId,
    clients: usize,
    requests_per_client: usize,
    strict: bool,
) -> Outcome {
    let g = Arc::new(cache.get(dataset).clone());
    let load = load(clients, requests_per_client);

    let cold = run_traced(&g, "cold", &load, 0, strict);
    let warm = run_traced(&g, "warm", &load, 64, strict);
    assert_eq!(
        cold.embeddings, warm.embeddings,
        "tracing or caching changed a count"
    );

    let rows: Vec<StageRow> = STAGES
        .iter()
        .map(|&stage| {
            let c = &cold.stages[stage];
            let w = &warm.stages[stage];
            StageRow {
                stage,
                cold_count: c.len(),
                cold_p50: metrics::percentile_sorted(c, 0.50),
                cold_p99: metrics::percentile_sorted(c, 0.99),
                warm_count: w.len(),
                warm_p50: metrics::percentile_sorted(w, 0.50),
                warm_p99: metrics::percentile_sorted(w, 0.99),
            }
        })
        .collect();

    // The overhead claim: interleaved obs-off/obs-on pairs on the warm
    // configuration; the best per-pair ratio isolates the hooks' own
    // cost from ambient load.
    let mut off_qps = f64::NEG_INFINITY;
    let mut on_qps = f64::NEG_INFINITY;
    let mut best_ratio = f64::NEG_INFINITY;
    for _ in 0..OVERHEAD_REPEATS {
        let (off, off_emb) = run_plain(&g, &load, 64);
        obs::reset();
        obs::enable();
        let service = FastService::new(Arc::clone(&g), serve_config(load.clients, 64));
        let on_emb = serving::drive(&service, &load);
        let on = service.shutdown();
        obs::disable();
        assert_eq!(off_emb, on_emb, "tracing changed a count");
        best_ratio = best_ratio.max(on.qps / off.qps);
        off_qps = off_qps.max(off.qps);
        on_qps = on_qps.max(on.qps);
    }
    obs::reset();
    // The overhead bound is only meaningful in a quiet process: in a
    // parallel test binary the obs-on arm also pays for *other* tests'
    // globally recorded spans, which the obs-off arm does not.
    assert!(
        !strict || best_ratio >= 1.0 - OVERHEAD_BUDGET,
        "obs-on overhead exceeds {:.0}% on every interleaved pair: best on/off QPS \
         ratio {best_ratio:.3} (best off {off_qps:.1} QPS, best on {on_qps:.1} QPS)",
        OVERHEAD_BUDGET * 100.0,
    );

    Outcome {
        cold,
        warm,
        rows,
        off_qps,
        on_qps,
        best_ratio,
    }
}

/// Renders the stage-decomposition table plus the overhead and
/// cross-check footers.
pub fn render(dataset: DatasetId, out: &Outcome) -> String {
    let header: Vec<String> = [
        "stage",
        "cold n",
        "cold p50",
        "cold p99",
        "warm n",
        "warm p50",
        "warm p99",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let ms = |sec: f64| format!("{:.2}ms", sec * 1e3);
    let body: Vec<Vec<String>> = out
        .rows
        .iter()
        .map(|r| {
            vec![
                r.stage.to_string(),
                r.cold_count.to_string(),
                ms(r.cold_p50),
                ms(r.cold_p99),
                r.warm_count.to_string(),
                ms(r.warm_p50),
                ms(r.warm_p99),
            ]
        })
        .collect();
    format!(
        "Stage-decomposed serving latency on {dataset} (traced closed loop over q{:?}; \
         spans validated as Chrome trace JSON with strictly monotonic per-track timestamps \
         and session ⊇ build ⊇ execute nesting)\n{}\
         devq cross-reference: cold p50/p99 {}/{}, warm p50/p99 {}/{} (report histograms)\n\
         trace: cold {} events on {} tracks, warm {} events on {} tracks\n\
         obs overhead: best on/off QPS ratio {:.3} (off {:.1}, on {:.1}; budget {:.0}%)\n",
        QUERY_MIX,
        crate::harness::render_table(&header, &body),
        ms(out.cold.report.device_queue_p50),
        ms(out.cold.report.device_queue_p99),
        ms(out.warm.report.device_queue_p50),
        ms(out.warm.report.device_queue_p99),
        out.cold.trace.events,
        out.cold.trace.tracks,
        out.warm.trace.events,
        out.warm.trace.tracks,
        out.best_ratio,
        out.off_qps,
        out.on_qps,
        OVERHEAD_BUDGET * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Structural slice of the observability bar: valid monotonic Chrome
    /// trace and bit-identical counts with tracing on. Runs non-strict —
    /// the obs state is process-global, so this binary's other
    /// serve-driving tests can pollute the trace and the timing; the
    /// strict bar (exact span accounting, nesting, cross-check, < 2%
    /// overhead) is carried by the sequential CI `obsfig --quick` step.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug: six serving arms; covered by the release-mode CI obsfig step"
    )]
    fn traced_serving_is_valid_and_cheap() {
        if !obs::COMPILED {
            return;
        }
        let mut cache = DatasetCache::new();
        let out = run_with(&mut cache, DatasetId::Dg01, 2, 8, false);
        // Trace validity and count identity are asserted inside `run_with`
        // on both arms even when non-strict; re-check headlines here.
        assert_eq!(out.rows.len(), STAGES.len());
        assert!(out.warm.trace.events > 0 && out.warm.trace.tracks > 1);
        assert!(out.cold.report.is_finite() && out.warm.report.is_finite());
        let session = out.rows.iter().find(|r| r.stage == "session").unwrap();
        let build = out.rows.iter().find(|r| r.stage == "build").unwrap();
        assert!(session.cold_p99 >= build.cold_p99, "sessions contain builds");
    }
}
