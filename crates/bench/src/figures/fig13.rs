//! Fig. 13: effectiveness of the software scheduler — δ sweep.
//!
//! "We evaluate the effectiveness of the software scheduler by varying δ.
//! … this optimization achieves biggest improvements when δ = 0.1 (e.g. 20%
//! for DG01) … the CPU becomes the bottleneck when δ > 0.15."
//!
//! The sweep measures FAST-SHARE's modelled end-to-end time against the
//! δ = 0 baseline (pure FAST-SEP) averaged over the benchmark queries.

use crate::harness::{experiment_config, DatasetCache};
use fast::{run_fast, Variant};
use graph_core::{benchmark_query, DatasetId};

/// One δ point on one dataset.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: DatasetId,
    pub delta: f64,
    /// Average acceleration vs δ = 0 (positive = faster).
    pub avg_gain: f64,
}

/// The δ values of the paper's sweep.
pub const DELTAS: [f64; 7] = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30];

/// Queries averaged over.
pub const QUERIES: [usize; 6] = [1, 2, 3, 5, 7, 8];

/// Runs the sweep on the given datasets.
pub fn run(cache: &mut DatasetCache, datasets: &[DatasetId]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &d in datasets {
        let g = cache.get(d);
        // Baseline: δ = 0.
        let base: Vec<f64> = QUERIES
            .iter()
            .map(|&qi| {
                let q = benchmark_query(qi);
                run_fast(&q, g, &experiment_config(Variant::Sep))
                    .unwrap()
                    .modeled_total_sec()
            })
            .collect();
        for &delta in &DELTAS {
            if delta == 0.0 {
                rows.push(Row {
                    dataset: d,
                    delta,
                    avg_gain: 0.0,
                });
                continue;
            }
            let gains: Vec<f64> = QUERIES
                .iter()
                .zip(&base)
                .map(|(&qi, &base_sec)| {
                    let q = benchmark_query(qi);
                    let mut config = experiment_config(Variant::Share);
                    config.delta = delta;
                    let t = run_fast(&q, g, &config).unwrap().modeled_total_sec();
                    1.0 - t / base_sec
                })
                .collect();
            rows.push(Row {
                dataset: d,
                delta,
                avg_gain: gains.iter().sum::<f64>() / gains.len() as f64,
            });
        }
    }
    rows
}

/// Renders the sweep.
pub fn render(rows: &[Row]) -> String {
    let header = vec![
        "dataset".to_string(),
        "delta".to_string(),
        "avg acceleration".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!("{:.2}", r.delta),
                format!("{:+.1}%", r.avg_gain * 100.0),
            ]
        })
        .collect();
    format!(
        "Fig. 13: average acceleration of FAST-SHARE varying delta (vs delta=0)\n{}",
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug: full figure run; covered by the release-mode CI test step")]
    fn moderate_delta_does_not_catastrophically_regress() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, &[DatasetId::Dg01]);
        let at = |d: f64| {
            rows.iter()
                .find(|r| (r.delta - d).abs() < 1e-9)
                .unwrap()
                .avg_gain
        };
        assert_eq!(at(0.0), 0.0);
        // δ = 0.1 must not lose more than a few percent (it usually gains).
        assert!(at(0.10) > -0.25, "delta=0.1 gain {}", at(0.10));
    }
}
