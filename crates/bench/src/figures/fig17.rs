//! Fig. 17: scalability varying |E(G)| — uniform edge samples of DG60.
//!
//! "We keep all vertices and sample 20%, 40%, 60%, and 80% edges of DG60
//! uniformly … the average elapsed time per embedding has no apparent
//! changing as |E(G)| increases." Small samples show inflated per-embedding
//! times for queries with tiny result counts (q5, q6, q8 at 20%), because
//! transfer and index construction dominate.

use crate::harness::{experiment_config, DatasetCache};
use fast::{run_fast, Variant};
use graph_core::{benchmark_query, sample_edges, DatasetId};

/// One (query, fraction) point.
#[derive(Debug, Clone)]
pub struct Row {
    pub query: usize,
    pub fraction: f64,
    pub embeddings: u64,
    pub elapsed_sec: f64,
}

impl Row {
    /// Elapsed time per embedding (infinite when no embeddings exist).
    pub fn per_embedding_sec(&self) -> f64 {
        if self.embeddings == 0 {
            f64::INFINITY
        } else {
            self.elapsed_sec / self.embeddings as f64
        }
    }
}

/// The edge fractions of the paper.
pub const FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// The queries the paper plots in Fig. 17.
pub const QUERIES: [usize; 7] = [1, 2, 3, 5, 6, 7, 8];

/// Runs the sweep on edge samples of `base`.
pub fn run(cache: &mut DatasetCache, base: DatasetId, queries: &[usize]) -> Vec<Row> {
    let g_full = cache.get(base).clone();
    let mut rows = Vec::new();
    for &fraction in &FRACTIONS {
        let g = if fraction >= 1.0 {
            g_full.clone()
        } else {
            sample_edges(&g_full, fraction, 0xF1617 + (fraction * 100.0) as u64)
        };
        for &qi in queries {
            let q = benchmark_query(qi);
            let report = run_fast(&q, &g, &experiment_config(Variant::Share)).unwrap();
            rows.push(Row {
                query: qi,
                fraction,
                embeddings: report.embeddings,
                elapsed_sec: report.modeled_total_sec(),
            });
        }
    }
    rows
}

/// Renders the figure.
pub fn render(base: DatasetId, rows: &[Row]) -> String {
    let header = vec![
        "query".to_string(),
        "|E| fraction".to_string(),
        "#embeddings".to_string(),
        "elapsed".to_string(),
        "per embedding".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("q{}", r.query),
                format!("{:.0}%", r.fraction * 100.0),
                r.embeddings.to_string(),
                crate::harness::fmt_time(r.elapsed_sec),
                if r.per_embedding_sec().is_finite() {
                    format!("{:.3}us", r.per_embedding_sec() * 1e6)
                } else {
                    "-".to_string()
                },
            ]
        })
        .collect();
    format!(
        "Fig. 17: scalability of FAST varying |E(G)| ({base} edge samples)\n{}",
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_sweep_runs_on_dg01() {
        let mut cache = DatasetCache::new();
        let rows = run(&mut cache, DatasetId::Dg01, &[2, 7]);
        assert_eq!(rows.len(), FRACTIONS.len() * 2);
        // The full graph has at least as many embeddings as the 20% sample.
        for qi in [2, 7] {
            let f20 = rows
                .iter()
                .find(|r| r.query == qi && r.fraction == 0.2)
                .unwrap();
            let f100 = rows
                .iter()
                .find(|r| r.query == qi && r.fraction == 1.0)
                .unwrap();
            assert!(f100.embeddings >= f20.embeddings);
        }
    }
}
