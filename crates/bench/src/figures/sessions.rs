//! Session-scalability study (`sessions` figure target): what the
//! event-driven executor buys over thread-per-session serving.
//!
//! Each level keeps `in_flight` sessions outstanding on **two** executor
//! threads and serves the same seeded workload two ways:
//!
//! * **event** — the new model: non-blocking `submit` from one driver
//!   thread, a sliding window of outstanding handles. 10,000 concurrent
//!   sessions cost 10,000 slab entries and channels — no stacks.
//! * **threaded** — the old model, reconstructed client-side: one OS
//!   thread per outstanding session, each blocking in `wait`.
//!
//! The workload is deliberately tiny per session (a triangle query on a
//! small graph, served warm through tier 2), so the measured quantity is
//! session *machinery* — admission, scheduling, wakeups — not kernel
//! throughput. The run self-asserts the acceptance bar: every session
//! completes with the `run_fast` oracle's exact count at every level and
//! mode, event QPS is within 5% of the threaded baseline at 64
//! outstanding, strictly better at 10,000, and the event run's peak-RSS
//! growth at 10,000 outstanding stays bounded (no thread-per-session).

use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::generators::random_labelled_graph;
use graph_core::{Graph, Label, QueryGraph};
use serve::{FastService, ServeConfig, SessionHandle};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// One concurrency level's outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Outstanding (admitted, unfinished) sessions held at once.
    pub in_flight: usize,
    /// Total sessions served per mode at this level.
    pub total: usize,
    /// Sustained QPS of the event-driven driver (best of its rounds).
    pub event_qps: f64,
    /// Sustained QPS of the thread-per-session baseline (best of rounds).
    pub threaded_qps: f64,
    /// Per-session embedding count (identical across modes and levels).
    pub embeddings: u64,
    /// Peak-RSS growth (bytes) observed across the event run at this
    /// level; 0 where the platform exposes no VmHWM.
    pub rss_growth: u64,
}

/// The per-session query: a labelled triangle — small enough that session
/// machinery, not kernel work, dominates the wall.
fn triangle() -> QueryGraph {
    QueryGraph::new(
        vec![Label::new(0), Label::new(1), Label::new(1)],
        &[(0, 1), (1, 2), (0, 2)],
    )
    .expect("triangle query")
}

/// Two executor threads, a permit bound that admits the whole level, and
/// warm caches so repeats are tier-2 replays.
fn config(in_flight: usize) -> ServeConfig {
    let mut fast = FastConfig::test_small(Variant::Sep);
    fast.shard_planner = ShardPlanner::Auto;
    ServeConfig {
        fast,
        devices: 2,
        extra_devices: Vec::new(),
        workers: 2,
        cache_capacity: 16,
        plan_cache_bytes: None,
        cst_cache_bytes: 16 << 20,
        max_in_flight: in_flight,
        ..ServeConfig::default()
    }
}

/// Linux peak-RSS high-water mark (bytes); 0 elsewhere.
fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
    }
    0
}

/// Event-driven driver: one thread keeps `in_flight` sessions outstanding
/// via non-blocking `submit`, draining the oldest when the window fills.
/// Returns (QPS, per-session count).
fn drive_event(g: &Arc<Graph>, in_flight: usize, total: usize, oracle: u64) -> f64 {
    let service = FastService::new(Arc::clone(g), config(in_flight));
    service.submit(triangle()).wait().expect("prime the caches");
    let t0 = Instant::now();
    let mut window: VecDeque<SessionHandle> = VecDeque::new();
    for _ in 0..total {
        if window.len() == in_flight {
            let report = window.pop_front().unwrap().wait().expect("session");
            assert_eq!(report.embeddings, oracle, "event mode changed the count");
        }
        window.push_back(service.submit(triangle()));
    }
    for handle in window {
        let report = handle.wait().expect("session");
        assert_eq!(report.embeddings, oracle, "event mode changed the count");
    }
    let wall = t0.elapsed();
    let report = service.shutdown();
    assert_eq!(report.completed, total as u64 + 1, "event sessions lost");
    assert_eq!(report.failed, 0);
    total as f64 / wall.as_secs_f64()
}

/// Thread-per-session baseline: `in_flight` OS threads (small stacks so
/// 10,000 of them fit), each blocking in `submit(..).wait()` — the old
/// serving model reconstructed client-side against the same service.
fn drive_threaded(g: &Arc<Graph>, in_flight: usize, total: usize, oracle: u64) -> f64 {
    let service = FastService::new(Arc::clone(g), config(in_flight));
    service.submit(triangle()).wait().expect("prime the caches");
    let per = total / in_flight;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..in_flight {
            let service = &service;
            std::thread::Builder::new()
                .stack_size(128 << 10)
                .spawn_scoped(scope, move || {
                    for _ in 0..per {
                        let report = service.submit(triangle()).wait().expect("session");
                        assert_eq!(report.embeddings, oracle, "threaded mode changed the count");
                    }
                })
                .expect("spawn client thread");
        }
    });
    let wall = t0.elapsed();
    let report = service.shutdown();
    assert_eq!(report.completed, (per * in_flight) as u64 + 1);
    assert_eq!(report.failed, 0);
    (per * in_flight) as f64 / wall.as_secs_f64()
}

/// Runs the sweep and self-asserts the acceptance bar. `quick` shrinks
/// the per-level totals, not the levels — the 10,000-outstanding point is
/// the one CI must witness.
pub fn run(quick: bool) -> Vec<Row> {
    let g = Arc::new(random_labelled_graph(300, 0.04, 3, 7));
    let oracle = fast::run_fast(&triangle(), &g, &FastConfig::test_small(Variant::Sep))
        .expect("oracle run")
        .embeddings;
    assert!(oracle > 0, "degenerate workload");
    // (outstanding, total sessions per mode, comparison rounds)
    let levels: &[(usize, usize, usize)] = if quick {
        &[(64, 1024, 2), (1_000, 2_000, 1), (10_000, 10_000, 1)]
    } else {
        &[(64, 4096, 3), (1_000, 4_000, 2), (10_000, 10_000, 1)]
    };
    let mut rows = Vec::new();
    for &(in_flight, total, rounds) in levels {
        // Event first so its peak-RSS growth is measured before the
        // baseline's 10,000 thread stacks can raise the high-water mark.
        let rss_before = peak_rss_bytes();
        let mut event_qps = 0f64;
        for _ in 0..rounds {
            event_qps = event_qps.max(drive_event(&g, in_flight, total, oracle));
        }
        let rss_growth = peak_rss_bytes().saturating_sub(rss_before);
        let mut threaded_qps = 0f64;
        for _ in 0..rounds {
            threaded_qps = threaded_qps.max(drive_threaded(&g, in_flight, total, oracle));
        }
        rows.push(Row {
            in_flight,
            total,
            event_qps,
            threaded_qps,
            embeddings: oracle,
            rss_growth,
        });
    }
    // The acceptance bar, asserted inside the run so the CI figure step
    // fails loudly.
    let at64 = rows.iter().find(|r| r.in_flight == 64).expect("64 level");
    assert!(
        at64.event_qps >= 0.95 * at64.threaded_qps,
        "event {:.0} QPS fell more than 5% below the threaded baseline {:.0} at 64 outstanding",
        at64.event_qps,
        at64.threaded_qps
    );
    let at10k = rows
        .iter()
        .find(|r| r.in_flight == 10_000)
        .expect("10k level");
    assert!(
        at10k.event_qps > at10k.threaded_qps,
        "event {:.0} QPS must beat thread-per-session {:.0} at 10,000 outstanding",
        at10k.event_qps,
        at10k.threaded_qps
    );
    assert!(
        at10k.rss_growth < 512 << 20,
        "10,000 outstanding sessions grew peak RSS by {} bytes — not bounded",
        at10k.rss_growth
    );
    rows
}

/// Renders the scalability table.
pub fn render(rows: &[Row]) -> String {
    let header: Vec<String> = [
        "outstanding",
        "sessions",
        "event QPS",
        "threaded QPS",
        "event/threaded",
        "peak-RSS growth",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.in_flight.to_string(),
                r.total.to_string(),
                format!("{:.0}", r.event_qps),
                format!("{:.0}", r.threaded_qps),
                format!("{:.2}x", r.event_qps / r.threaded_qps),
                format!("{:.1} MiB", r.rss_growth as f64 / (1024.0 * 1024.0)),
            ]
        })
        .collect();
    format!(
        "Session scalability on 2 executor threads (event = non-blocking submit window, \
         threaded = one 128 KiB-stack OS thread per outstanding session; \
         every session bit-identical to the run_fast oracle)\n{}",
        crate::harness::render_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The session-scalability acceptance bar: 10,000 concurrent
    /// outstanding sessions complete on 2 executor threads with bounded
    /// memory and oracle-identical counts, no slower than thread-per-
    /// session at 64 outstanding and strictly faster at 10,000. All the
    /// assertions live inside `run`.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug: serves tens of thousands of sessions; covered by the release-mode CI step"
    )]
    fn ten_thousand_sessions_on_two_executors() {
        let rows = run(true);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.embeddings > 0));
    }
}
