//! Shared experiment infrastructure.
//!
//! The paper's hardware is an Alveo U200 against LDBC graphs of 17M-1.25B
//! edges; this reproduction scales both down together (DESIGN.md §6): the
//! dataset ladder is ~100x smaller, so [`experiment_spec`] scales the BRAM
//! budget down equivalently, keeping the *relative* partitioning pressure —
//! the number of CST partitions, the δ_S/δ_D triggers, the PCIe-to-kernel
//! time ratios — in the regime the paper evaluates.

use fast::{CollectMode, FastConfig, Variant};
use fpga_sim::FpgaSpec;
use graph_core::{DatasetId, Graph};
use matching::RunLimits;
use std::collections::HashMap;
use std::time::Duration;

/// The scaled device used by all experiments: an Alveo U200 with its 35 MB
/// BRAM scaled by the same ~128x factor as the dataset ladder.
pub fn experiment_spec() -> FpgaSpec {
    FpgaSpec {
        // The dataset ladder is ~100x smaller than the paper's, but BRAM
        // cannot scale as far: the (|V(q)|-1)·N_o partial-result buffer is a
        // fixed reservation. 2 MB keeps the partition counts (Fig. 9) and
        // the partition-time-to-kernel-time ratio in the paper's regime.
        bram_bytes: 2 << 20,
        no: 512,
        port_max: 2048,
        fifo_depth: 128,
        ..FpgaSpec::default()
    }
}

/// FAST configuration for a variant under the scaled device.
pub fn experiment_config(variant: Variant) -> FastConfig {
    FastConfig {
        spec: experiment_spec(),
        variant,
        delta: if variant.shares_with_cpu() { 0.1 } else { 0.0 },
        collect: CollectMode::CountOnly,
        ..FastConfig::default()
    }
}

/// Limits applied to the CPU/GPU baselines (the paper uses 3 h and 250 GB /
/// 16 GB; we scale the timeout to minutes and the device memory with the
/// dataset ladder).
pub fn baseline_limits() -> RunLimits {
    RunLimits {
        timeout: Some(Duration::from_secs(60)),
        memory_cap: Some(2 << 30),
        max_results: None,
    }
}

/// Scaled GPU device memory for the join baselines (16 GB / 128).
pub fn gpu_device() -> join_baselines::DeviceSpec {
    join_baselines::DeviceSpec {
        memory_bytes: 128 << 20,
    }
}

/// Lazily generated, cached datasets shared across experiments.
#[derive(Default)]
pub struct DatasetCache {
    graphs: HashMap<DatasetId, Graph>,
}

impl DatasetCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (generating on first use) the dataset.
    pub fn get(&mut self, id: DatasetId) -> &Graph {
        self.graphs.entry(id).or_insert_with(|| {
            eprintln!("[harness] generating {id} ...");
            id.generate()
        })
    }
}

/// Formats seconds in the paper's style (ms below 1 s, otherwise s).
pub fn fmt_time(sec: f64) -> String {
    if sec.is_infinite() {
        "INF".to_string()
    } else if sec < 1.0 {
        format!("{:.1}ms", sec * 1e3)
    } else {
        format!("{sec:.2}s")
    }
}

/// Formats a ratio as `12.3x`.
pub fn fmt_speedup(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.1}x")
    } else {
        "INF".to_string()
    }
}

/// Geometric mean of positive values (0 for empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Renders a simple aligned table.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_scaled_down() {
        let s = experiment_spec();
        assert!(s.bram_bytes < FpgaSpec::default().bram_bytes);
        assert_eq!(s.clock_mhz, 300.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_time(0.5), "500.0ms");
        assert_eq!(fmt_time(2.0), "2.00s");
        assert_eq!(fmt_time(f64::INFINITY), "INF");
        assert_eq!(fmt_speedup(12.34), "12.3x");
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("333"));
        assert!(t.lines().count() == 4);
    }
}
