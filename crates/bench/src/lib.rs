//! # bench
//!
//! The experiment harness regenerating every table and figure of the FAST
//! paper's evaluation section (Section VII). Run `cargo run --release -p
//! bench --bin experiments -- all` (or a specific target such as `fig14`).
//!
//! The scaled device/dataset regime is documented in [`harness`] and
//! DESIGN.md §6; EXPERIMENTS.md records paper-vs-measured for every target.

pub mod figures;
pub mod harness;
