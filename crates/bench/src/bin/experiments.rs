//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [targets...] [--quick]
//!
//! targets: all (default) | table3 | fig7 | fig8 | fig9 | fig10 | fig11
//!        | fig12 | fig13 | fig14 | fig15 | fig16 | fig17 | ablation
//!        | hostscale | shardplan | serving | sessions | tenants | cstcache | chaos
//!        | snapshot | obsfig
//! --quick: restrict to the smaller datasets (CI-friendly).
//! ```

use bench::figures::*;
use bench::harness::DatasetCache;
use graph_core::DatasetId;
use std::time::Instant;

struct Options {
    targets: Vec<String>,
    quick: bool,
}

fn parse_args() -> Options {
    let mut targets = Vec::new();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!(
                    "usage: experiments [targets...] [--quick]\n\
                     targets: all table3 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 ablation hostscale shardplan serving sessions tenants cstcache chaos snapshot obsfig"
                );
                std::process::exit(0);
            }
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    Options { targets, quick }
}

fn main() {
    let opts = parse_args();
    let run_all = opts.targets.iter().any(|t| t == "all");
    let wants = |t: &str| run_all || opts.targets.iter().any(|x| x == t);
    let mut cache = DatasetCache::new();

    let ladder: Vec<DatasetId> = if opts.quick {
        vec![DatasetId::Dg01, DatasetId::Dg03]
    } else {
        DatasetId::ALL.to_vec()
    };
    let comparison_sets: Vec<DatasetId> = if opts.quick {
        vec![DatasetId::Dg01]
    } else {
        vec![DatasetId::Dg01, DatasetId::Dg03, DatasetId::Dg10]
    };
    let big = if opts.quick {
        DatasetId::Dg03
    } else {
        DatasetId::Dg10
    };
    let huge = if opts.quick {
        DatasetId::Dg03
    } else {
        DatasetId::Dg60
    };

    let t0 = Instant::now();

    if wants("table3") {
        let rows = table3::run(&mut cache);
        println!("{}", table3::render(&rows));
    }
    if wants("fig7") {
        let rows = fig07::run(&mut cache, big);
        println!("{}", fig07::render(big, &rows));
    }
    if wants("fig8") {
        let d = if opts.quick {
            DatasetId::Dg01
        } else {
            DatasetId::Dg03
        };
        let rows = fig08::run(&mut cache, d);
        println!("{}", fig08::render(d, &rows));
    }
    if wants("fig9") {
        let rows = fig09::run(&mut cache, &ladder);
        println!("{}", fig09::render(&rows));
    }
    if wants("fig10") {
        let rows = fig10::run(&mut cache, &ladder);
        println!("{}", fig10::render(&rows));
    }
    if wants("fig11") || wants("fig12") {
        let rows = fig11_12::run(&mut cache, big);
        println!("{}", fig11_12::render(big, &rows));
    }
    if wants("fig13") {
        let rows = fig13::run(&mut cache, &comparison_sets);
        println!("{}", fig13::render(&rows));
    }
    if wants("fig14") {
        let queries: Vec<usize> = (0..9).collect();
        for &d in &comparison_sets {
            let table = fig14::run(&mut cache, d, &queries);
            println!("{}", fig14::render(&table, &queries));
            match fig14::counts_agree(&table, &queries) {
                Ok(()) => println!("[check] all completed algorithms agree on counts\n"),
                Err(e) => println!("[check] COUNT MISMATCH: {e}\n"),
            }
        }
    }
    if wants("fig15") {
        let sets: Vec<DatasetId> = if opts.quick {
            vec![DatasetId::Dg01]
        } else {
            vec![DatasetId::Dg01, DatasetId::Dg03]
        };
        let rows = fig15::run(&mut cache, &sets);
        println!("{}", fig15::render(&rows));
    }
    if wants("fig16") {
        let rows = fig16::run(&mut cache, &ladder, &fig16::QUERIES);
        println!("{}", fig16::render(&rows));
        for &qi in &fig16::QUERIES {
            if let Some(r2) = fig16::linearity_r2(&rows, qi) {
                println!("q{qi}: elapsed-vs-embeddings linear fit R^2 = {r2:.3}");
            }
        }
        println!();
    }
    if wants("fig17") {
        let rows = fig17::run(&mut cache, huge, &fig17::QUERIES);
        println!("{}", fig17::render(huge, &rows));
    }
    if wants("hostscale") {
        // The host-parallel pipeline scaling sweep targets the largest
        // bundled dataset (DG60); quick mode stays at DG03.
        let rows = host_scaling::run(&mut cache, huge, &host_scaling::QUERIES);
        println!("{}", host_scaling::render(huge, &rows));
    }
    if wants("shardplan") {
        // Duplication factors per shard planner (EXPERIMENTS.md §13); the
        // full query set — the planners exist for the hub-dominated
        // queries the hostscale sweep has to exclude.
        let queries: Vec<usize> = (0..9).collect();
        let d = if opts.quick { DatasetId::Dg03 } else { huge };
        let rows = shard_planning::run(&mut cache, d, &queries);
        println!("{}", shard_planning::render(d, &rows));
    }
    if wants("serving") {
        // Cold-vs-warm serving sweep (the `serve` subsystem): quick mode
        // stays at DG01 with a shorter run; the full sweep serves DG03.
        let (d, levels, requests): (DatasetId, &[usize], usize) = if opts.quick {
            (DatasetId::Dg01, &[1, 4], 16)
        } else {
            (DatasetId::Dg03, &[1, 2, 4, 8], 24)
        };
        let rows = serving::run(&mut cache, d, levels, requests);
        println!("{}", serving::render(d, &rows));
    }
    if wants("sessions") {
        // Session-scalability sweep: 64 / 1k / 10k outstanding sessions on
        // 2 executor threads, event-driven vs thread-per-session, with the
        // acceptance bar (oracle-identical counts, QPS within 5% at 64,
        // strictly better at 10k, bounded peak-RSS growth) asserted inside
        // the run.
        let rows = sessions::run(opts.quick);
        println!("{}", sessions::render(&rows));
    }
    if wants("tenants") {
        // Mixed-tenant sweep: fleet composition × cache mode under a 1:3
        // quota split; quick mode stays at DG01 with a shorter run.
        let (d, clients, requests): (DatasetId, usize, usize) = if opts.quick {
            (DatasetId::Dg01, 2, 10)
        } else {
            (DatasetId::Dg03, 4, 16)
        };
        let rows = multi_tenant::run(&mut cache, d, clients, requests);
        println!("{}", multi_tenant::render(d, &rows));
    }
    if wants("cstcache") {
        // Tier-2 byte-budget sweep: warm serving at budgets 0 / tight /
        // generous, self-asserting that tier-2 hits build nothing and
        // resident bytes respect the budget; quick mode stays at DG01.
        let (d, clients, requests): (DatasetId, usize, usize) = if opts.quick {
            (DatasetId::Dg01, 2, 10)
        } else {
            (DatasetId::Dg03, 4, 16)
        };
        let rows = cst_cache::run(&mut cache, d, clients, requests);
        println!("{}", cst_cache::render(d, &rows));
    }
    if wants("chaos") {
        // Fault-tolerance sweep: clean / wrapped-zero-fault / moderate /
        // heavy fleets, self-asserting bit-identity, exactly-once retry
        // accounting, an eviction under heavy chaos, and < 2% fault-free
        // injection overhead; quick mode stays at DG01.
        let (d, clients, requests): (DatasetId, usize, usize) = if opts.quick {
            (DatasetId::Dg01, 2, 10)
        } else {
            (DatasetId::Dg03, 4, 16)
        };
        let rows = chaos::run(&mut cache, d, clients, requests);
        println!("{}", chaos::render(d, &rows));
    }
    if wants("obsfig") {
        // Observability sweep: traced cold/warm serving with stage
        // decomposition from the spans, self-asserting a valid monotonic
        // Chrome trace, session ⊇ build ⊇ execute nesting, and < 2%
        // obs-on overhead on the best interleaved off/on pair. DG03 even
        // in quick mode — the overhead claim needs real work to amortise.
        let (clients, requests): (usize, usize) = if opts.quick { (2, 10) } else { (4, 16) };
        let out = obsfig::run(&mut cache, DatasetId::Dg03, clients, requests);
        println!("{}", obsfig::render(DatasetId::Dg03, &out));
    }
    if wants("snapshot") {
        // Binary CSR snapshot round-trip: load-vs-build wall per dataset.
        let sets: Vec<DatasetId> = if opts.quick {
            vec![DatasetId::Dg01]
        } else {
            vec![DatasetId::Dg01, DatasetId::Dg03, DatasetId::Dg10]
        };
        let rows = snapshot::run(&sets);
        println!("{}", snapshot::render(&rows));
    }
    if wants("ablation") {
        let d = DatasetId::Dg01;
        let no_rows = ablation::sweep_no(&mut cache, d, 2);
        let prune_rows = ablation::sweep_pruning(&mut cache, d, 6);
        println!("{}", ablation::render(&no_rows, &prune_rows));
    }

    eprintln!("[experiments] total wall time: {:?}", t0.elapsed());
}
