use bench::harness::{experiment_config, DatasetCache};
use fast::{run_fast, Variant};
use graph_core::{benchmark_query, DatasetId};

fn main() {
    let mut cache = DatasetCache::new();
    for d in [DatasetId::Dg01, DatasetId::Dg10] {
        let g = cache.get(d);
        for qi in [0usize, 2, 6, 8] {
            let q = benchmark_query(qi);
            let r = run_fast(&q, g, &experiment_config(Variant::Share)).unwrap();
            println!(
                "{} q{qi}: total={:.1}ms build={:.1}ms part={:.1}ms cpu={:.1}ms kern={:.1}ms xfer={:.1}ms N={} M={} parts={}(cpu {}) stolen={}",
                d, r.modeled_total_sec()*1e3, r.modeled_build_sec*1e3, r.modeled_partition_sec*1e3,
                r.modeled_cpu_match_sec*1e3, r.kernel_time_sec*1e3, r.transfer_time_sec*1e3,
                r.counts.n, r.counts.m, r.fpga_partitions + r.cpu_partitions, r.cpu_partitions, r.stolen
            );
            // The same run under the sharded host pipeline: build overlaps
            // partition/offload (identical embeddings, re-derived elapsed
            // model — see fast::host docs).
            let mut config = experiment_config(Variant::Share);
            config.host_threads = 8;
            let p = run_fast(&q, g, &config).unwrap();
            assert_eq!(p.embeddings, r.embeddings, "pipeline changed the count");
            println!(
                "        pipelined t{}/s{}: total={:.1}ms build_par={:.1}ms fill={:.1}ms part={:.1}ms",
                p.host_threads, p.pipeline_shards, p.modeled_total_sec()*1e3,
                p.modeled_build_parallel_sec*1e3, p.modeled_fill_sec*1e3,
                p.modeled_partition_sec*1e3
            );
        }
    }
}
