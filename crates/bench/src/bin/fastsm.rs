//! `fastsm` — a command-line subgraph matcher over the reproduction stack.
//!
//! ```text
//! fastsm match  <graph.txt> <query.txt> [--algo fast|cfl|daf|ceci|gpsm|gsi]
//!                                       [--limit N] [--timeout SECS]
//! fastsm gen    <out.txt> [--sf F] [--seed S]     generate an LDBC-like graph
//! fastsm stats  <graph.txt>                        print Table III-style stats
//! fastsm query  <index 0-8> <out.txt>              write a benchmark query
//! ```
//!
//! Graphs and queries use the standard benchmark text format
//! (`t`/`v`/`e` records, see `graph_core::io`).

use fast::{run_fast, CollectMode, FastConfig};
use graph_core::generators::{generate_ldbc, LdbcParams};
use graph_core::{benchmark_query, io, GraphStats};
use join_baselines::{run_join_baseline, DeviceSpec, JoinBaseline};
use matching::{run_baseline, Baseline, RunLimits};
use std::fs::File;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  fastsm match <graph.txt> <query.txt> [--algo fast|cfl|daf|ceci|gpsm|gsi] [--limit N] [--timeout SECS]\n  fastsm gen <out.txt> [--sf F] [--seed S]\n  fastsm stats <graph.txt>\n  fastsm query <0-8> <out.txt>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "match" => cmd_match(&args[1..]),
        "gen" => cmd_gen(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "query" => cmd_query(&args[1..]),
        _ => usage(),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_match(args: &[String]) -> ExitCode {
    let (Some(graph_path), Some(query_path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let algo = flag_value(args, "--algo").unwrap_or("fast").to_lowercase();
    let limit: Option<u64> = flag_value(args, "--limit").and_then(|s| s.parse().ok());
    let timeout = flag_value(args, "--timeout")
        .and_then(|s| s.parse().ok())
        .map(Duration::from_secs);

    let graph = match File::open(graph_path).map_err(io::IoError::Io).and_then(io::read_graph_text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error reading graph {graph_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let query = match File::open(query_path).map_err(io::IoError::Io).and_then(io::read_query_text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error reading query {query_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "graph: {} vertices / {} edges; query: {} vertices / {} edges; algorithm: {algo}",
        graph.vertex_count(),
        graph.edge_count(),
        query.vertex_count(),
        query.edge_count()
    );

    let limits = RunLimits {
        timeout,
        memory_cap: None,
        max_results: limit,
    };

    match algo.as_str() {
        "fast" => {
            let config = FastConfig {
                collect: match limit {
                    Some(n) => CollectMode::Collect(n as usize),
                    None => CollectMode::CountOnly,
                },
                ..FastConfig::default()
            };
            match run_fast(&query, &graph, &config) {
                Ok(r) => {
                    println!("{} embeddings", r.embeddings);
                    eprintln!(
                        "N={} M={} partitions={} modelled={:.3}ms (kernel {:.3}ms @300MHz)",
                        r.counts.n,
                        r.counts.m,
                        r.fpga_partitions + r.cpu_partitions,
                        r.modeled_total_sec() * 1e3,
                        r.kernel_time_sec * 1e3
                    );
                    for emb in &r.collected {
                        let cells: Vec<String> =
                            emb.iter().map(|v| v.raw().to_string()).collect();
                        println!("{}", cells.join(" "));
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "cfl" | "daf" | "ceci" => {
            let baseline = match algo.as_str() {
                "cfl" => Baseline::Cfl,
                "daf" => Baseline::Daf,
                _ => Baseline::Ceci,
            };
            let r = run_baseline(baseline, &query, &graph, &limits);
            println!("{} embeddings ({})", r.embeddings, r.outcome.table_marker());
            eprintln!(
                "measured {:.3}ms, modelled {:.3}ms",
                r.total_time().as_secs_f64() * 1e3,
                r.modeled_total_sec() * 1e3
            );
            ExitCode::SUCCESS
        }
        "gpsm" | "gsi" => {
            let jb = if algo == "gpsm" {
                JoinBaseline::GpSm
            } else {
                JoinBaseline::Gsi
            };
            let r = run_join_baseline(jb, &query, &graph, &DeviceSpec::default(), &limits);
            println!("{} embeddings ({})", r.embeddings, r.outcome.table_marker());
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown algorithm '{other}'");
            usage()
        }
    }
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let Some(out) = args.first() else {
        return usage();
    };
    let sf: f64 = flag_value(args, "--sf").and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let seed: u64 = flag_value(args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(1);
    let g = generate_ldbc(&LdbcParams::with_scale_factor(sf), seed);
    match File::create(out)
        .map_err(io::IoError::Io)
        .and_then(|f| io::write_graph_text(&g, f))
    {
        Ok(()) => {
            eprintln!(
                "wrote {} ({} vertices, {} edges, sf={sf}, seed={seed})",
                out,
                g.vertex_count(),
                g.edge_count()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error writing {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    match File::open(path).map_err(io::IoError::Io).and_then(io::read_graph_text) {
        Ok(g) => {
            let s = GraphStats::compute(path.as_str(), &g);
            println!("{}", GraphStats::table_header());
            println!("{}", s.table_row());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_query(args: &[String]) -> ExitCode {
    let (Some(idx), Some(out)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let Ok(i) = idx.parse::<usize>() else {
        return usage();
    };
    if i >= graph_core::QUERY_COUNT {
        eprintln!("query index must be 0..{}", graph_core::QUERY_COUNT);
        return ExitCode::FAILURE;
    }
    let q = benchmark_query(i);
    match File::create(out)
        .map_err(io::IoError::Io)
        .and_then(|f| io::write_query_text(&q, f))
    {
        Ok(()) => {
            eprintln!("wrote q{i} to {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
