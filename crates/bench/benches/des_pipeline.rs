//! Criterion microbenchmarks for the discrete-event pipeline simulator —
//! the substrate validating the cycle equations (Section VI-B/C/D).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fast::des_check::{simulate_sep_cycles, simulate_task_cycles};
use fpga_sim::{Fifo, MemoryModel};
use std::hint::black_box;

fn bench_des_wirings(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_variant_wirings");
    group.sample_size(12);
    for (n, k) in [(5_000u64, 1u64), (5_000, 3)] {
        group.bench_with_input(
            BenchmarkId::new("task", format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| black_box(simulate_task_cycles(n, k, 512)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sep", format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| black_box(simulate_sep_cycles(n, k, 512)));
            },
        );
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    c.bench_function("fifo_push_pop_1k", |b| {
        b.iter(|| {
            let mut f = Fifo::new(1024);
            for i in 0..1024u64 {
                f.push(i).unwrap();
            }
            let mut acc = 0u64;
            while let Some(x) = f.pop() {
                acc = acc.wrapping_add(x);
            }
            black_box(acc)
        });
    });
    c.bench_function("memory_charge_1k", |b| {
        b.iter(|| {
            let mut m = MemoryModel::bram(1 << 20, 1);
            let mut cycles = 0u64;
            for _ in 0..1024 {
                cycles += m.charge_reads(1);
            }
            black_box(cycles)
        });
    });
}

criterion_group!(benches, bench_des_wirings, bench_primitives);
criterion_main!(benches);
