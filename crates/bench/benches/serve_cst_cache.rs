//! Criterion microbenchmarks for the tier-2 shard-CST cache: the
//! `CstCache` lookup path itself, and warm end-to-end session latency at
//! each cache depth — cold (both tiers off), plan-warm (tier 1 only, the
//! probe is skipped but the CSTs rebuild), and cst-warm (tier 2, pure
//! dispatch + kernel) — the per-request view of the `cstcache` figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::benchmark_query;
use graph_core::generators::{generate_ldbc, LdbcParams};
use serve::{FastService, ServeConfig};
use std::hint::black_box;
use std::sync::Arc;

/// End-to-end session latency through a live service at three cache
/// depths. The gap between `plan_warm` and `cst_warm` is exactly the CST
/// build + partitioning wall that tier 2 deletes.
fn bench_session_tiers(c: &mut Criterion) {
    let g = Arc::new(generate_ldbc(&LdbcParams::with_scale_factor(0.2), 1));
    let mut group = c.benchmark_group("serve/cst_cache");
    group.sample_size(10);
    for (label, plans, cst_bytes) in [
        ("cold", 0usize, 0usize),
        ("plan_warm", 16, 0),
        ("cst_warm", 16, 64 << 20),
    ] {
        let mut fast = FastConfig::for_variant(Variant::Sep);
        fast.shard_planner = ShardPlanner::Auto;
        let service = FastService::new(
            Arc::clone(&g),
            ServeConfig {
                fast,
                devices: 2,
                extra_devices: Vec::new(),
                workers: 1,
                cache_capacity: plans,
                plan_cache_bytes: None,
                cst_cache_bytes: cst_bytes,
                max_in_flight: 4,
                ..ServeConfig::default()
            },
        );
        // Prime the warm tiers so every measured iteration hits.
        service.submit(benchmark_query(1)).wait().expect("prime");
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let report = service
                    .submit(benchmark_query(1))
                    .wait()
                    .expect("session completes");
                black_box(report.embeddings)
            });
        });
        service.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_session_tiers);
criterion_main!(benches);
