//! Criterion microbenchmarks for the multi-tenant service core: session
//! latency through a two-tenant service (per-tenant cache partitions), and
//! the weighted-round-robin admission path itself at different tenant
//! counts — the per-request view of the `tenants` figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::benchmark_query;
use graph_core::generators::{generate_ldbc, LdbcParams};
use serve::{DeviceKind, FastService, ServeConfig, TenantConfig, TenantId};
use std::hint::black_box;
use std::sync::Arc;

fn two_tenant_service(extra: Vec<DeviceKind>) -> (FastService, TenantId) {
    let g = Arc::new(generate_ldbc(&LdbcParams::with_scale_factor(0.2), 1));
    let mut fast = FastConfig::for_variant(Variant::Sep);
    fast.shard_planner = ShardPlanner::Auto;
    let service = FastService::new(
        Arc::clone(&g),
        ServeConfig {
            fast,
            devices: 2,
            extra_devices: extra,
            workers: 2,
            cache_capacity: 16,
            plan_cache_bytes: None,
            cst_cache_bytes: ServeConfig::default().cst_cache_bytes,
            max_in_flight: 8,
            ..ServeConfig::default()
        },
    );
    let b = service
        .add_tenant(
            g,
            TenantConfig {
                quota: 3,
                ..TenantConfig::default()
            },
        )
        .expect("tenant B");
    (service, b)
}

/// Warm end-to-end session latency per tenant: both tenants' plans come
/// from their own cache partitions; fleet FPGA-only vs heterogeneous.
fn bench_tenant_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/tenant_session");
    group.sample_size(10);
    for (label, extra) in [
        ("fpga", Vec::new()),
        ("hetero", vec![DeviceKind::Cpu { threads: 2 }]),
    ] {
        let (service, b) = two_tenant_service(extra);
        // Prime both cache partitions so measured iterations hit.
        service.submit(benchmark_query(1)).wait().expect("prime A");
        service
            .submit_for(b, benchmark_query(1))
            .expect("tenant B")
            .wait()
            .expect("prime B");
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |bench, _| {
            bench.iter(|| {
                let a = service.submit(benchmark_query(1));
                let bh = service.submit_for(b, benchmark_query(1)).expect("tenant B");
                black_box((
                    a.wait().expect("session A").embeddings,
                    bh.wait().expect("session B").embeddings,
                ))
            });
        });
        service.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_tenant_session);
criterion_main!(benches);
