//! Criterion microbenchmarks for the emulated kernel: the functional run
//! (whose wall time bounds the whole harness) and the per-variant cycle
//! models (Fig. 7/11/12's underlying quantities).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cst::build_cst;
use fast::{run_kernel, CollectMode, KernelPlan, Variant};
use fpga_sim::{CycleModel, StageLatencies, WorkloadCounts};
use graph_core::generators::{generate_ldbc, LdbcParams};
use graph_core::{benchmark_query, path_based_order, select_root, BfsTree};
use std::hint::black_box;

fn bench_kernel_run(c: &mut Criterion) {
    let g = generate_ldbc(&LdbcParams::with_scale_factor(0.3), 3);
    let mut group = c.benchmark_group("kernel_functional_run");
    group.sample_size(15);
    for qi in [2usize, 6, 8] {
        let q = benchmark_query(qi);
        let root = select_root(&q, &g);
        let tree = BfsTree::new(&q, root);
        let order = path_based_order(&q, &tree, &g);
        let cst = build_cst(&q, &g, &tree);
        let plan = KernelPlan::new(&q, &order, &tree).expect("fits");
        for no in [64u32, 4096] {
            group.bench_with_input(
                BenchmarkId::new(format!("q{qi}"), format!("No{no}")),
                &no,
                |b, &no| {
                    b.iter(|| {
                        black_box(run_kernel(&cst, &plan, no, CollectMode::CountOnly).embeddings)
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_cycle_models(c: &mut Criterion) {
    let model = CycleModel::new(StageLatencies::default(), 4096, 1, 8);
    let counts = WorkloadCounts {
        n: 10_000_000,
        m: 15_000_000,
    };
    let mut group = c.benchmark_group("cycle_model_equations");
    for variant in Variant::ALL {
        group.bench_function(variant.name(), |b| {
            b.iter(|| black_box(variant.kernel_cycles(&model, counts)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_run, bench_cycle_models);
criterion_main!(benches);
