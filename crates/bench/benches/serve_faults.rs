//! Criterion microbenchmarks for the fault-tolerant execution path: warm
//! session latency on a clean fleet vs the same fleet wrapped in zero-rate
//! fault injectors (the overhead the `chaos` figure bounds at 2%) vs a
//! fleet under a moderate transient schedule (the price of retries), and
//! the cross-check's ~2× execution tax.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fast::{FastConfig, FaultPlan, ShardPlanner, Variant};
use graph_core::generators::{generate_ldbc, LdbcParams};
use graph_core::benchmark_query;
use serve::{DeviceKind, FastService, FaultPolicy, ServeConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn config(extra: Vec<DeviceKind>, cross_check: bool) -> ServeConfig {
    let mut fast = FastConfig::test_small(Variant::Sep);
    fast.shard_planner = ShardPlanner::Auto;
    ServeConfig {
        fast,
        devices: 0,
        extra_devices: extra,
        workers: 1,
        cache_capacity: 16,
        plan_cache_bytes: None,
        cst_cache_bytes: ServeConfig::default().cst_cache_bytes,
        max_in_flight: 4,
        fault: FaultPolicy {
            max_attempts: 16,
            backoff: Duration::ZERO,
            cross_check,
            ..FaultPolicy::default()
        },
        ..ServeConfig::default()
    }
}

fn wrap(inner: DeviceKind, plan: FaultPlan) -> DeviceKind {
    DeviceKind::Faulty {
        inner: Box::new(inner),
        plan,
    }
}

/// Warm end-to-end session latency per fleet: the fault machinery's cost
/// when nothing faults, and the retry tax when a fifth of calls fail.
fn bench_faulted_session(c: &mut Criterion) {
    let g = Arc::new(generate_ldbc(&LdbcParams::with_scale_factor(0.05), 42));
    let spec = FastConfig::test_small(Variant::Sep).spec;
    let fpga = || DeviceKind::Fpga(spec.clone());
    let fleets: [(&str, Vec<DeviceKind>, bool); 4] = [
        ("clean", vec![fpga(), fpga()], false),
        (
            "wrapped-0",
            vec![
                wrap(fpga(), FaultPlan::default()),
                wrap(fpga(), FaultPlan::default()),
            ],
            false,
        ),
        (
            "transient-20",
            vec![wrap(fpga(), FaultPlan::transient(7, 0.2)), fpga()],
            false,
        ),
        ("cross-check", vec![fpga(), fpga()], true),
    ];
    let mut group = c.benchmark_group("serve/faulted_session");
    group.sample_size(10);
    for (label, extra, cross_check) in fleets {
        let service = FastService::new(Arc::clone(&g), config(extra, cross_check));
        // Prime the warm tiers so every measured iteration is pure
        // dispatch + kernel (+ fault machinery).
        service.submit(benchmark_query(1)).wait().expect("prime");
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let report = service
                    .submit(benchmark_query(1))
                    .wait()
                    .expect("session completes");
                black_box(report.embeddings)
            });
        });
        service.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_faulted_session);
criterion_main!(benches);
