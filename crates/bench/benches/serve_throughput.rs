//! Criterion microbenchmarks for the serving subsystem (`serve`): the plan
//! cache's lookup path, and end-to-end session throughput on a persistent
//! service, cold cache vs warm cache — the per-request view of what the
//! `serving` figure measures at the service level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::generators::{generate_ldbc, LdbcParams};
use graph_core::{benchmark_query, select_root, BfsTree};
use serve::{FastService, PlanCache, ServeConfig};
use std::hint::black_box;
use std::sync::Arc;

/// Plan-cache hit path: key derivation plus the LRU lookup — the whole
/// cost a warm session pays instead of the probe.
fn bench_cache_lookup(c: &mut Criterion) {
    let g = generate_ldbc(&LdbcParams::with_scale_factor(0.2), 1);
    let q = benchmark_query(1);
    let root = select_root(&q, &g);
    let tree = BfsTree::new(&q, root);
    let config = FastConfig::default();
    let opts = config.pipeline_options(q.vertex_count());
    let key = cst::PlanKey::derive(&q, &tree, &opts, 0);
    let mut cache = PlanCache::new(16);
    cache.insert(key, Arc::new(cst::ShardPlan::contiguous(100, 4)));
    c.bench_function("serve/cache_hit", |b| {
        b.iter(|| {
            let key = cst::PlanKey::derive(&q, &tree, &opts, 0);
            black_box(cache.get(&key))
        });
    });
}

/// End-to-end session latency through a live service: submit one query and
/// wait for its report, against a cold (capacity 0) and a warm cache.
fn bench_session(c: &mut Criterion) {
    let g = Arc::new(generate_ldbc(&LdbcParams::with_scale_factor(0.2), 1));
    let mut group = c.benchmark_group("serve/session");
    group.sample_size(10);
    for (label, capacity) in [("cold", 0usize), ("warm", 16)] {
        let mut fast = FastConfig::for_variant(Variant::Sep);
        fast.shard_planner = ShardPlanner::Auto;
        let service = FastService::new(
            Arc::clone(&g),
            ServeConfig {
                fast,
                devices: 2,
                extra_devices: Vec::new(),
                workers: 1,
                cache_capacity: capacity,
                plan_cache_bytes: None,
                // Cold disables both tiers so every iteration pays the
                // full plan + build; warm keeps the default byte budget.
                cst_cache_bytes: if capacity == 0 {
                    0
                } else {
                    ServeConfig::default().cst_cache_bytes
                },
                max_in_flight: 4,
                ..ServeConfig::default()
            },
        );
        // Prime the warm cache so every measured iteration hits.
        service.submit(benchmark_query(1)).wait().expect("prime");
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let report = service
                    .submit(benchmark_query(1))
                    .wait()
                    .expect("session completes");
                black_box(report.embeddings)
            });
        });
        service.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_cache_lookup, bench_session);
criterion_main!(benches);
