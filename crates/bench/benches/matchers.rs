//! Criterion microbenchmarks comparing the matchers' real (host) execution:
//! the engine work behind the Fig. 14 comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fast::{run_fast, FastConfig, Variant};
use graph_core::benchmark_query;
use graph_core::generators::{generate_ldbc, LdbcParams};
use join_baselines::{run_join_baseline, DeviceSpec, JoinBaseline};
use matching::{run_baseline, Baseline, RunLimits};
use std::hint::black_box;

fn bench_fig14_micro(c: &mut Criterion) {
    let g = generate_ldbc(&LdbcParams::with_scale_factor(0.3), 3);
    let limits = RunLimits::unlimited();
    let device = DeviceSpec::default();
    let mut group = c.benchmark_group("fig14_matchers");
    group.sample_size(10);
    for qi in [2usize, 6] {
        let q = benchmark_query(qi);
        group.bench_with_input(BenchmarkId::new("FAST", format!("q{qi}")), &qi, |b, _| {
            b.iter(|| {
                black_box(
                    run_fast(&q, &g, &FastConfig::for_variant(Variant::Sep))
                        .expect("fits")
                        .embeddings,
                )
            });
        });
        for baseline in Baseline::ALL {
            group.bench_with_input(
                BenchmarkId::new(baseline.name(), format!("q{qi}")),
                &qi,
                |b, _| {
                    b.iter(|| black_box(run_baseline(baseline, &q, &g, &limits).embeddings));
                },
            );
        }
        for jb in JoinBaseline::ALL {
            group.bench_with_input(
                BenchmarkId::new(jb.name(), format!("q{qi}")),
                &qi,
                |b, _| {
                    b.iter(|| {
                        black_box(run_join_baseline(jb, &q, &g, &device, &limits).embeddings)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig14_micro);
criterion_main!(benches);
