//! Criterion microbenchmarks for the host-side CST pipeline:
//! construction (Algorithm 1), partitioning (Algorithm 2, Fig. 8's greedy
//! vs fixed k), and workload estimation (Section V-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cst::{
    build_cst, build_cst_sharded, build_cst_with_stats, estimate_workload, partition_cst,
    CstOptions, PartitionConfig, PipelineOptions,
};
use graph_core::generators::{generate_ldbc, LdbcParams};
use graph_core::{benchmark_query, path_based_order, select_root, BfsTree};
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let g = generate_ldbc(&LdbcParams::with_scale_factor(0.5), 1);
    let mut group = c.benchmark_group("cst_construction");
    group.sample_size(20);
    for qi in [0usize, 2, 6, 8] {
        let q = benchmark_query(qi);
        let root = select_root(&q, &g);
        let tree = BfsTree::new(&q, root);
        group.bench_with_input(BenchmarkId::new("default", format!("q{qi}")), &qi, |b, _| {
            b.iter(|| black_box(build_cst(&q, &g, &tree)));
        });
        group.bench_with_input(BenchmarkId::new("minimal", format!("q{qi}")), &qi, |b, _| {
            b.iter(|| {
                black_box(build_cst_with_stats(&q, &g, &tree, CstOptions::minimal()).0)
            });
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let g = generate_ldbc(&LdbcParams::with_scale_factor(0.5), 1);
    let q = benchmark_query(2);
    let root = select_root(&q, &g);
    let tree = BfsTree::new(&q, root);
    let order = path_based_order(&q, &tree, &g);
    let cst = build_cst(&q, &g, &tree);

    let mut group = c.benchmark_group("cst_partition_fig8");
    group.sample_size(15);
    let delta_s = cst.size_bytes() / 8 + 64;
    let mut policies: Vec<(String, Option<u32>)> = vec![("greedy".into(), None)];
    for k in [2u32, 4, 8] {
        policies.push((format!("k{k}"), Some(k)));
    }
    for (name, fixed_k) in policies {
        let config = PartitionConfig {
            delta_s,
            delta_d: u32::MAX,
            footprint_budget: None,
            fixed_k,
            max_partitions: 1 << 16,
        };
        group.bench_function(&name, |b| {
            b.iter(|| black_box(partition_cst(&cst, &order, &config).0.len()));
        });
    }
    group.finish();
}

fn bench_sharded_build(c: &mut Criterion) {
    // The sharded parallel pipeline vs the sequential build. On a
    // multi-core host the 4-thread point should win; on a single-core CI
    // box it exposes the sharding overhead (duplicated interior
    // candidates) instead — both are worth tracking.
    let g = generate_ldbc(&LdbcParams::with_scale_factor(0.5), 1);
    let q = benchmark_query(2);
    let root = select_root(&q, &g);
    let tree = BfsTree::new(&q, root);
    let mut group = c.benchmark_group("cst_sharded_build");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(build_cst(&q, &g, &tree)));
    });
    for threads in [1usize, 2, 4] {
        let opts = PipelineOptions {
            threads,
            shards: Some(16),
            cst: CstOptions::default(),
            ..PipelineOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::new("sharded16", format!("t{threads}")),
            &threads,
            |b, _| {
                b.iter(|| black_box(build_cst_sharded(&q, &g, &tree, &opts).0));
            },
        );
    }
    group.finish();
}

fn bench_workload_estimation(c: &mut Criterion) {
    let g = generate_ldbc(&LdbcParams::with_scale_factor(0.5), 1);
    let q = benchmark_query(6);
    let root = select_root(&q, &g);
    let tree = BfsTree::new(&q, root);
    let cst = build_cst(&q, &g, &tree);
    c.bench_function("workload_estimation_q6", |b| {
        b.iter(|| black_box(estimate_workload(&cst, &tree).total));
    });
}

criterion_group!(
    benches,
    bench_construction,
    bench_partitioning,
    bench_sharded_build,
    bench_workload_estimation
);
criterion_main!(benches);
