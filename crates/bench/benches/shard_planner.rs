//! Criterion microbenchmarks for the shard planner (`cst::planner`):
//! the probe (one top-down pass + non-tree sampling), per-planner
//! boundary search, and the planned sharded build against the blind
//! contiguous baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cst::{
    build_cst_sharded, plan_shards, CstOptions, PipelineOptions, PlannerConfig, RootProfile,
    ShardPlanner,
};
use graph_core::generators::{generate_ldbc, LdbcParams};
use graph_core::{benchmark_query, select_root, BfsTree};
use std::hint::black_box;

/// The probe is the planner's fixed cost: one filtered top-down scan of
/// the tree-edge candidate space plus the sampled non-tree edge count.
fn bench_probe(c: &mut Criterion) {
    let g = generate_ldbc(&LdbcParams::with_scale_factor(0.5), 1);
    let mut group = c.benchmark_group("cst_shard_planner/probe");
    group.sample_size(20);
    for qi in [1usize, 2, 8] {
        let q = benchmark_query(qi);
        let root = select_root(&q, &g);
        let tree = BfsTree::new(&q, root);
        let roots = cst::root_candidates(&q, &g, &tree, CstOptions::default());
        group.bench_with_input(BenchmarkId::from_parameter(format!("q{qi}")), &qi, |b, _| {
            b.iter(|| {
                black_box(RootProfile::probe(
                    &q,
                    &g,
                    &tree,
                    CstOptions::default(),
                    &roots,
                ))
            });
        });
    }
    group.finish();
}

/// Boundary search and auto shard-count selection on a probed profile —
/// the marginal cost per candidate plan (mask propagation sweeps).
fn bench_planning(c: &mut Criterion) {
    let g = generate_ldbc(&LdbcParams::with_scale_factor(0.5), 1);
    let q = benchmark_query(1); // the hub-dominated, root-rich query
    let root = select_root(&q, &g);
    let tree = BfsTree::new(&q, root);
    let roots = cst::root_candidates(&q, &g, &tree, CstOptions::default());
    let profile = RootProfile::probe(&q, &g, &tree, CstOptions::default(), &roots);
    let mut group = c.benchmark_group("cst_shard_planner/plan");
    group.sample_size(20);
    for planner in [
        ShardPlanner::WorkloadBalanced,
        ShardPlanner::OverlapAware,
        ShardPlanner::Auto,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(planner.to_string()),
            &planner,
            |b, &planner| {
                b.iter(|| {
                    black_box(plan_shards(planner, &profile, 16, &PlannerConfig::default()))
                });
            },
        );
    }
    group.finish();
}

/// End-to-end planned sharded build: the duplication the planner removes
/// shows up directly as build work (single worker — pure work, no
/// parallel noise).
fn bench_planned_build(c: &mut Criterion) {
    let g = generate_ldbc(&LdbcParams::with_scale_factor(0.5), 1);
    let q = benchmark_query(1);
    let root = select_root(&q, &g);
    let tree = BfsTree::new(&q, root);
    let mut group = c.benchmark_group("cst_shard_planner/build16");
    group.sample_size(10);
    for planner in [
        ShardPlanner::Contiguous,
        ShardPlanner::WorkloadBalanced,
        ShardPlanner::OverlapAware,
        ShardPlanner::Auto,
    ] {
        let opts = PipelineOptions {
            threads: 1,
            shards: Some(16),
            planner,
            cst: CstOptions::default(),
            ..PipelineOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(planner.to_string()),
            &planner,
            |b, _| {
                b.iter(|| black_box(build_cst_sharded(&q, &g, &tree, &opts).0));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_probe, bench_planning, bench_planned_build);
criterion_main!(benches);
