//! Criterion microbenchmarks for the observability layer: warm session
//! latency with tracing off vs on (the overhead the `obsfig` figure
//! bounds at 2%), the raw cost of the hot-path primitives (histogram
//! record, counter increment, inert vs live span), and the Chrome
//! export render+validate pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::benchmark_query;
use graph_core::generators::{generate_ldbc, LdbcParams};
use serve::{FastService, ServeConfig};
use std::hint::black_box;
use std::sync::Arc;

fn config() -> ServeConfig {
    let mut fast = FastConfig::test_small(Variant::Sep);
    fast.shard_planner = ShardPlanner::Auto;
    ServeConfig {
        fast,
        devices: 2,
        workers: 1,
        cache_capacity: 16,
        max_in_flight: 4,
        ..ServeConfig::default()
    }
}

/// Warm end-to-end session latency, obs off vs obs on: the price of the
/// session/build/execute spans plus the registry hooks per session.
fn bench_traced_session(c: &mut Criterion) {
    let g = Arc::new(generate_ldbc(&LdbcParams::with_scale_factor(0.05), 42));
    let mut group = c.benchmark_group("serve/obs_session");
    group.sample_size(10);
    for traced in [false, true] {
        obs::reset();
        if traced {
            obs::enable();
        } else {
            obs::disable();
        }
        let service = FastService::new(Arc::clone(&g), config());
        // Prime the warm tiers so every measured iteration is pure
        // dispatch + kernel (+ obs hooks).
        service.submit(benchmark_query(1)).wait().expect("prime");
        let label = if traced { "obs-on" } else { "obs-off" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let report = service
                    .submit(benchmark_query(1))
                    .wait()
                    .expect("session completes");
                black_box(report.embeddings)
            });
        });
        service.shutdown();
        obs::disable();
        obs::reset();
    }
    group.finish();
}

/// The hot-path primitives in isolation: one histogram record, one
/// counter increment, one inert span open/close, one live span.
fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/primitives");
    let mut hist = obs::Histogram::new();
    group.bench_function("hist_record", |b| {
        let mut x = 1.0f64;
        b.iter(|| {
            hist.record(black_box(x));
            x *= 1.0000001;
        });
    });
    black_box(hist.count());
    let counter = obs::counter("bench_obs_counter_total", "benchmark counter");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    obs::reset();
    obs::disable();
    group.bench_function("span_inert", |b| {
        b.iter(|| {
            let _s = obs::span("bench");
        });
    });
    obs::enable();
    group.bench_function("span_live", |b| {
        b.iter(|| {
            let mut s = obs::span("bench");
            s.arg_u64("i", 1);
        });
    });
    obs::disable();
    obs::reset();
    group.finish();
}

/// Chrome export: render + self-validate a trace of ~10k spans.
fn bench_chrome_export(c: &mut Criterion) {
    obs::reset();
    obs::enable();
    for i in 0..10_000u64 {
        let _g = obs::set_track(obs::session_track(i % 64));
        let mut s = obs::span_cat("session", "serve");
        s.arg_u64("i", i);
    }
    obs::disable();
    let mut group = c.benchmark_group("obs/chrome_export");
    group.sample_size(10);
    group.bench_function("render_validate_10k", |b| {
        b.iter(|| {
            let doc = obs::chrome_trace_json();
            let stats = obs::chrome::validate(&doc).expect("export self-validates");
            black_box(stats.events)
        });
    });
    group.finish();
    obs::reset();
}

criterion_group!(
    benches,
    bench_traced_session,
    bench_primitives,
    bench_chrome_export
);
criterion_main!(benches);
