//! Criterion microbenchmarks for the event-driven session executor: the
//! non-blocking submit path in isolation, and batched end-to-end session
//! throughput at different outstanding-window sizes — the per-request view
//! of what the `sessions` figure measures at the service level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::generators::random_labelled_graph;
use graph_core::{Label, QueryGraph};
use serve::{FastService, ServeConfig};
use std::hint::black_box;
use std::sync::Arc;

fn triangle() -> QueryGraph {
    QueryGraph::new(
        vec![Label::new(0), Label::new(1), Label::new(1)],
        &[(0, 1), (1, 2), (0, 2)],
    )
    .expect("triangle query")
}

fn service(max_in_flight: usize) -> FastService {
    let g = Arc::new(random_labelled_graph(300, 0.04, 3, 7));
    let mut fast = FastConfig::test_small(Variant::Sep);
    fast.shard_planner = ShardPlanner::Auto;
    FastService::new(
        g,
        ServeConfig {
            fast,
            devices: 2,
            extra_devices: Vec::new(),
            workers: 2,
            cache_capacity: 16,
            plan_cache_bytes: None,
            cst_cache_bytes: 16 << 20,
            max_in_flight,
            ..ServeConfig::default()
        },
    )
}

/// The enqueue path alone: what a client pays before `submit` returns —
/// admission accounting plus a deque push and a wakeup, never a park.
fn bench_submit(c: &mut Criterion) {
    let service = service(1 << 20);
    service.submit(triangle()).wait().expect("prime");
    let mut handles = Vec::with_capacity(1 << 16);
    c.bench_function("serve/async_submit", |b| {
        b.iter(|| {
            handles.push(black_box(service.submit(triangle())));
            if handles.len() == handles.capacity() {
                for h in handles.drain(..) {
                    h.wait().expect("session");
                }
            }
        });
    });
    for h in handles.drain(..) {
        h.wait().expect("session");
    }
    service.shutdown();
}

/// Warm end-to-end throughput at increasing outstanding windows: a batch
/// of `window` sessions submitted non-blockingly, then waited.
fn bench_session_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/async_window");
    group.sample_size(10);
    for window in [1usize, 64, 1024] {
        let service = service(window);
        service.submit(triangle()).wait().expect("prime");
        group.throughput(Throughput::Elements(window as u64));
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                let handles: Vec<_> = (0..w).map(|_| service.submit(triangle())).collect();
                for h in handles {
                    black_box(h.wait().expect("session").embeddings);
                }
            });
        });
        service.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_submit, bench_session_window);
criterion_main!(benches);
