//! Chrome `trace_event` JSON export (the JSON-array flavour Perfetto
//! and `chrome://tracing` load directly) plus a self-validation pass
//! used by CI and the examples.
//!
//! Spans render as `ph:"X"` complete events, instant events as
//! `ph:"i"`, and every track gets a `thread_name` metadata record.
//! Timestamps are microseconds with nanosecond precision (`ts` is a
//! float with three decimals); within a track, timestamps are made
//! **strictly** monotonic by nudging ties forward one nanosecond —
//! parents sort before their children, so nesting survives the nudge.

use crate::json::{self, Json};
use crate::trace::{ArgValue, EventRecord, SpanRecord, DEVICE_BASE, SESSION_BASE, THREAD_BASE, TRACK_HOST};

/// The single `pid` every record carries (one process).
const PID: u64 = 1;

/// Human-readable name of a track, emitted as `thread_name` metadata.
pub fn track_name(track: u64) -> String {
    if track == TRACK_HOST {
        "host".to_string()
    } else if (DEVICE_BASE..THREAD_BASE).contains(&track) {
        format!("device {}", track - DEVICE_BASE)
    } else if (THREAD_BASE..SESSION_BASE).contains(&track) {
        format!("builder {}", track - THREAD_BASE)
    } else if track >= SESSION_BASE {
        format!("session {}", track - SESSION_BASE)
    } else {
        format!("track {track}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; that is still valid
        // JSON, so keep it.
        s
    } else {
        // JSON has no inf/nan; clamp to a sentinel.
        "0".to_string()
    }
}

fn args_json(args: &[(&'static str, ArgValue)]) -> String {
    if args.is_empty() {
        return String::new();
    }
    let body: Vec<String> = args
        .iter()
        .map(|(k, v)| {
            let vs = match v {
                ArgValue::U64(n) => n.to_string(),
                ArgValue::F64(f) => fmt_f64(*f),
                ArgValue::Str(s) => format!("\"{}\"", escape(s)),
            };
            format!("\"{}\":{vs}", escape(k))
        })
        .collect();
    format!(",\"args\":{{{}}}", body.join(","))
}

/// Microseconds with ns precision, e.g. `12.345`.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

enum Item<'a> {
    Span(&'a SpanRecord),
    Event(&'a EventRecord),
}

impl Item<'_> {
    fn ts(&self) -> u64 {
        match self {
            Item::Span(s) => s.start_ns,
            Item::Event(e) => e.ts_ns,
        }
    }
    /// Sort key: by timestamp; ties put longer spans first so parents
    /// precede children and instant events come last.
    fn tiebreak(&self) -> u64 {
        match self {
            Item::Span(s) => u64::MAX - (s.end_ns - s.start_ns),
            Item::Event(_) => u64::MAX,
        }
    }
}

/// Renders spans and events as a Chrome `trace_event` JSON array with
/// strictly monotonic per-track timestamps.
pub fn render(spans: &[SpanRecord], events: &[EventRecord]) -> String {
    let mut tracks: Vec<u64> = spans
        .iter()
        .map(|s| s.track)
        .chain(events.iter().map(|e| e.track))
        .collect();
    tracks.sort_unstable();
    tracks.dedup();

    let mut lines: Vec<String> = Vec::with_capacity(tracks.len() + spans.len() + events.len());
    for &track in &tracks {
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{track},\"args\":{{\"name\":\"{}\"}}}}",
            escape(&track_name(track))
        ));
    }

    for &track in &tracks {
        let mut items: Vec<Item> = spans
            .iter()
            .filter(|s| s.track == track)
            .map(Item::Span)
            .chain(events.iter().filter(|e| e.track == track).map(Item::Event))
            .collect();
        items.sort_by_key(|i| (i.ts(), i.tiebreak()));
        let mut last_ts: Option<u64> = None;
        for item in items {
            // Strict per-track monotonicity: nudge ties forward 1 ns.
            // Children keep their original end, so they stay inside
            // their (earlier-sorted) parent.
            let mut ts = item.ts();
            if let Some(prev) = last_ts {
                if ts <= prev {
                    ts = prev + 1;
                }
            }
            last_ts = Some(ts);
            match item {
                Item::Span(s) => {
                    let dur_ns = s.end_ns.saturating_sub(ts);
                    lines.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{PID},\"tid\":{}{}}}",
                        escape(s.name),
                        escape(s.cat),
                        ts_us(ts),
                        ts_us(dur_ns),
                        s.track,
                        args_json(&s.args)
                    ));
                }
                Item::Event(e) => {
                    lines.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{PID},\"tid\":{}{}}}",
                        escape(e.name),
                        escape(e.cat),
                        ts_us(ts),
                        e.track,
                        args_json(&e.args)
                    ));
                }
            }
        }
    }
    format!("[{}]\n", lines.join(",\n"))
}

/// Summary of a validated trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Non-metadata events in the document.
    pub events: usize,
    /// Distinct `(pid, tid)` tracks seen.
    pub tracks: usize,
}

/// Parses a Chrome trace JSON document and checks the invariants the
/// export promises: a top-level array of objects each carrying
/// `name`/`ph`/`ts`/`pid`/`tid`, with **strictly increasing** `ts`
/// per `(pid, tid)` track across non-metadata events.
pub fn validate(doc: &str) -> Result<TraceStats, String> {
    let parsed = json::parse(doc)?;
    let Json::Arr(items) = parsed else {
        return Err("top level is not an array".into());
    };
    let mut last: Vec<((u64, u64), f64)> = Vec::new();
    let mut events = 0usize;
    for (i, item) in items.iter().enumerate() {
        let name = item
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = item
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing ph"))?;
        let pid = item
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i} ({name}): missing pid"))? as u64;
        let tid = item
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i} ({name}): missing tid"))? as u64;
        if ph == "M" {
            continue;
        }
        let ts = item
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i} ({name}): missing ts"))?;
        if ph == "X" && item.get("dur").and_then(Json::as_f64).is_none() {
            return Err(format!("event {i} ({name}): X event missing dur"));
        }
        events += 1;
        let key = (pid, tid);
        match last.iter_mut().find(|(k, _)| *k == key) {
            Some((_, prev)) => {
                if ts <= *prev {
                    return Err(format!(
                        "track {key:?}: ts {ts} not strictly after {prev} (event {i}, {name})"
                    ));
                }
                *prev = ts;
            }
            None => last.push((key, ts)),
        }
    }
    Ok(TraceStats {
        events,
        tracks: last.len(),
    })
}

/// Checks span containment along a named chain: for every consecutive
/// pair `(outer, inner)` in `chain`, each `inner` span on a track that
/// carries at least one `outer` span must lie inside some `outer` span
/// on that track. Used to assert `session ⊇ build ⊇ execute`.
pub fn check_nesting(spans: &[SpanRecord], chain: &[&str]) -> Result<(), String> {
    for pair in chain.windows(2) {
        let (outer, inner) = (pair[0], pair[1]);
        let mut tracks: Vec<u64> = spans
            .iter()
            .filter(|s| s.name == outer)
            .map(|s| s.track)
            .collect();
        tracks.sort_unstable();
        tracks.dedup();
        for &track in &tracks {
            let outers: Vec<&SpanRecord> = spans
                .iter()
                .filter(|s| s.track == track && s.name == outer)
                .collect();
            for s in spans.iter().filter(|s| s.track == track && s.name == inner) {
                let contained = outers
                    .iter()
                    .any(|o| o.start_ns <= s.start_ns && s.end_ns <= o.end_ns);
                if !contained {
                    return Err(format!(
                        "track {track} ({}): {inner} span [{}, {}] ns escapes every {outer} span",
                        track_name(track),
                        s.start_ns,
                        s.end_ns
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{session_track, ArgValue};

    fn span(track: u64, name: &'static str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            track,
            name,
            cat: "test",
            start_ns: start,
            end_ns: end,
            args: vec![("k", ArgValue::Str("v"))],
        }
    }

    #[test]
    fn render_validates_and_ties_are_nudged() {
        let t = session_track(7);
        let spans = vec![
            span(t, "session", 1000, 9000),
            span(t, "build", 1000, 5000), // same start as its parent
            span(t, "execute", 2000, 4000),
            span(t, "execute", 2000, 3000), // tied start with sibling
        ];
        let events = vec![EventRecord {
            track: t,
            name: "retry",
            cat: "fault",
            ts_ns: 2000,
            args: vec![],
        }];
        let doc = render(&spans, &events);
        let stats = validate(&doc).expect("export must self-validate");
        assert_eq!(stats.events, 5);
        assert_eq!(stats.tracks, 1);
        check_nesting(&spans, &["session", "build", "execute"]).unwrap();
    }

    #[test]
    fn nesting_violations_are_caught() {
        let t = session_track(1);
        let spans = vec![span(t, "session", 1000, 2000), span(t, "build", 1500, 2500)];
        assert!(check_nesting(&spans, &["session", "build"]).is_err());
        // A build on a track with no session span is not checked.
        let orphan = vec![span(session_track(2), "build", 0, 10)];
        assert!(check_nesting(&orphan, &["session", "build"]).is_ok());
    }

    #[test]
    fn validate_rejects_non_monotonic() {
        let doc = r#"[
            {"name":"a","ph":"i","s":"t","ts":5,"pid":1,"tid":1},
            {"name":"b","ph":"i","s":"t","ts":5,"pid":1,"tid":1}
        ]"#;
        assert!(validate(doc).is_err());
        let ok = r#"[
            {"name":"a","ph":"i","s":"t","ts":5,"pid":1,"tid":1},
            {"name":"b","ph":"i","s":"t","ts":5,"pid":1,"tid":2}
        ]"#;
        assert!(validate(ok).is_ok());
    }
}
