//! Log-bucketed streaming histograms.
//!
//! A [`Histogram`] is a fixed-shape array of power-of-two buckets with 8
//! sub-buckets per octave (relative quantile error ≤ ~6%), covering
//! `2^-40 ≈ 0.9 ps` through `2^20 ≈ 12 days` when samples are seconds.
//! The shape is global and value-independent, which makes the type an
//! exact monoid: [`merge`](Histogram::merge) adds bucket counts and
//! [`delta`](Histogram::delta) subtracts them, so rolling windows over a
//! cumulative histogram reconcile bit-exactly on every `u64` field.
//!
//! Recording is a handful of bit operations on the `f64` representation
//! (no float compares, no search), cheap enough for per-partition hot
//! paths.

/// Smallest bucketed exponent: values below `2^MIN_EXP` (including zero
/// and negatives) land in the underflow bucket 0.
const MIN_EXP: i64 = -40;
/// One-past-largest bucketed exponent: values at or above `2^MAX_EXP`
/// land in the overflow bucket.
const MAX_EXP: i64 = 20;
/// Sub-buckets per octave (top 3 mantissa bits).
const SUB: i64 = 8;
/// Total bucket count: underflow + value buckets + overflow.
const LEN: usize = (1 + (MAX_EXP - MIN_EXP) * SUB + 1) as usize;

/// A mergeable, delta-able log-bucketed histogram of non-negative `f64`
/// samples (seconds, bytes, counts — any unit).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Bucket counts; empty until the first record (so an empty
    /// histogram costs nothing to construct or clone).
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

/// Bucket index for a sample. Branch-light: underflow/overflow resolve
/// via two compares, everything else is bit extraction.
#[inline]
fn index(v: f64) -> usize {
    let min = (MIN_EXP as f64).exp2();
    let max = (MAX_EXP as f64).exp2();
    if v.is_nan() || v < min {
        // Zero, negative, NaN, and subnormal-range values.
        return 0;
    }
    if v >= max {
        return LEN - 1;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let sub = ((bits >> 49) & 0x7) as i64;
    (1 + (exp - MIN_EXP) * SUB + sub) as usize
}

/// Representative value of a bucket (arithmetic midpoint of its edges),
/// used when reading quantiles back out.
fn representative(idx: usize) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    if idx >= LEN - 1 {
        return (MAX_EXP as f64).exp2();
    }
    let exp = MIN_EXP + (idx as i64 - 1) / SUB;
    let sub = (idx as i64 - 1) % SUB;
    let scale = (exp as f64).exp2();
    let lo = scale * (1.0 + sub as f64 / SUB as f64);
    let hi = scale * (1.0 + (sub + 1) as f64 / SUB as f64);
    (lo + hi) / 2.0
}

/// Upper edge of a bucket (exclusive), for cumulative expositions.
fn upper_edge(idx: usize) -> f64 {
    if idx == 0 {
        return (MIN_EXP as f64).exp2();
    }
    if idx >= LEN - 1 {
        return f64::INFINITY;
    }
    let exp = MIN_EXP + (idx as i64 - 1) / SUB;
    let sub = (idx as i64 - 1) % SUB;
    (exp as f64).exp2() * (1.0 + (sub + 1) as f64 / SUB as f64)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Non-finite samples are ignored so sums stay
    /// finite; negative samples count into the underflow bucket.
    #[inline]
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; LEN];
        }
        self.buckets[index(v)] += 1;
        self.count += 1;
        self.sum += v.max(0.0);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (negative samples clamp to 0).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean; 0.0 when empty (exact — the sum is kept
    /// alongside the buckets).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`); 0.0 when empty. The
    /// returned value is the matched bucket's midpoint, so the relative
    /// error is bounded by half a sub-bucket (≤ ~6%).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64)
            .clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return representative(idx);
            }
        }
        representative(LEN - 1)
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.is_empty() {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; LEN];
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The window `self − base` where `base` is an earlier snapshot of
    /// the same cumulative histogram. Bucket counts subtract exactly
    /// (saturating as a guard against misuse); the sum is a float
    /// difference and therefore approximate.
    pub fn delta(&self, base: &Histogram) -> Histogram {
        if base.buckets.is_empty() {
            return self.clone();
        }
        let mut buckets = self.buckets.clone();
        if buckets.is_empty() {
            buckets = vec![0; LEN];
        }
        for (a, b) in buckets.iter_mut().zip(&base.buckets) {
            *a = a.saturating_sub(*b);
        }
        Histogram {
            buckets,
            count: self.count.saturating_sub(base.count),
            sum: (self.sum - base.sum).max(0.0),
        }
    }

    /// Non-empty buckets as `(upper_edge, cumulative_count)` pairs, the
    /// shape a Prometheus `_bucket{le=...}` exposition wants. Always ends
    /// with the `+Inf` bound when any sample exists.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((upper_edge(idx), cum));
        }
        if self.count > 0 && out.last().map(|&(le, _)| le.is_finite()).unwrap_or(false) {
            out.push((f64::INFINITY, self.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_within_sub_bucket_error() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // 1ms..1s ramp
        }
        assert_eq!(h.count(), 1000);
        for &(q, exact) in &[(0.5, 0.5), (0.99, 0.99), (1.0, 1.0)] {
            let got = h.quantile(q);
            assert!(
                (got - exact).abs() / exact < 0.07,
                "q{q}: got {got}, exact {exact}"
            );
        }
        assert!((h.mean() - 0.5005).abs() < 1e-9);
    }

    #[test]
    fn merge_then_delta_roundtrips() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..100 {
            a.record(0.001 * i as f64);
            b.record(0.01 * i as f64);
        }
        let mut total = a.clone();
        total.merge(&b);
        assert_eq!(total.count(), 200);
        let back = total.delta(&a);
        assert_eq!(back.count(), b.count());
        assert_eq!(back.buckets, b.buckets);
    }

    #[test]
    fn degenerate_inputs_stay_finite() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1e30); // far past the overflow edge
        assert_eq!(h.count(), 3); // NaN/inf ignored
        assert!(h.mean().is_finite());
        assert!(h.quantile(0.5).is_finite());
        assert!(h.quantile(1.0).is_finite());
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.99), 0.0);
        assert_eq!(empty.mean(), 0.0);
        assert!(empty.cumulative().is_empty());
    }

    #[test]
    fn quantile_monotone_in_q() {
        let mut h = Histogram::new();
        for i in 0..500 {
            h.record((i % 37) as f64 * 0.003 + 1e-6);
        }
        let mut last = 0.0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q);
            assert!(v >= last, "quantile not monotone at q={q}");
            last = v;
        }
    }

    #[test]
    fn cumulative_ends_at_inf() {
        let mut h = Histogram::new();
        h.record(0.5);
        h.record(2.0);
        let cum = h.cumulative();
        assert_eq!(cum.last().unwrap().1, 2);
        assert!(cum.last().unwrap().0.is_infinite());
        // Cumulative counts are non-decreasing.
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
