//! A small JSON parser, just enough to self-validate the Chrome trace
//! export (and any other machine-readable artifact) without external
//! dependencies. Not a general-purpose implementation: numbers are
//! `f64`, strings handle the standard escapes, and objects preserve
//! insertion order as key/value pairs.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().unwrap_or('\u{fffd}');
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        pairs.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typical_trace_shapes() {
        let v = parse(
            r#"[{"name":"session","ph":"X","ts":1.5,"dur":2.25,"pid":1,"tid":42,
                "args":{"tenant":0,"kind":"fpga"}},
               {"name":"q","ph":"i","ts":3,"pid":1,"tid":42,"s":"t"}]"#,
        )
        .unwrap();
        let Json::Arr(items) = &v else { panic!("not an array") };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(items[0].get("name").unwrap().as_str(), Some("session"));
        assert_eq!(
            items[0].get("args").unwrap().get("kind").unwrap().as_str(),
            Some("fpga")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[] trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""a\n\tA\"""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\tA\""));
    }
}
