//! `obs` — low-overhead observability for the FAST serving stack
//! (DESIGN.md §10).
//!
//! Three pieces, one process-wide state:
//!
//! - **Metrics** ([`mod@registry`]): named atomic [`Counter`]s and
//!   [`Gauge`]s plus log-bucketed [`Histogram`]s (the histograms are
//!   plain values owned by their call sites — `serve` keeps them inside
//!   its own metrics state so window deltas and lifetime reports come
//!   from one source of truth).
//! - **Tracing** ([`span`], [`event`], [`record_span`]): bounded
//!   in-memory buffers of spans/instant events on per-concern *tracks*
//!   (host, devices, builder threads, one track per serving session).
//! - **Exports**: Chrome `trace_event` JSON ([`chrome_trace_json`],
//!   Perfetto-loadable, self-validating via [`chrome::validate`]) and a
//!   Prometheus text exposition ([`Registry::prometheus_text`]).
//!
//! Cost model: tracing is **off by default** — every recording entry
//! point first reads one relaxed atomic ([`enabled`]); when disabled, a
//! [`SpanGuard`] is inert (no clock read, no allocation). Counters and
//! gauges are single relaxed atomic ops. Building the crate with
//! `--no-default-features` removes the `trace` feature and folds every
//! recording body to a compile-time no-op.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod hist;
pub mod json;
pub mod registry;
pub mod trace;

pub use hist::Histogram;
pub use registry::{Counter, Gauge, Registry};
pub use trace::{
    session_track, device_track, ArgValue, Args, EventRecord, SpanGuard, SpanRecord, Tracer,
    DEVICE_BASE, SESSION_BASE, THREAD_BASE, TRACK_HOST,
};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Whether recording code paths exist in this build at all. `false`
/// when compiled with `--no-default-features`; tests that assert on
/// trace contents should early-return when this is `false`.
pub const COMPILED: bool = cfg!(feature = "trace");

/// The process-wide observability state.
pub struct Obs {
    enabled: AtomicBool,
    epoch: Instant,
    pub(crate) tracer: Tracer,
    registry: Registry,
}

static OBS: OnceLock<Obs> = OnceLock::new();

/// The global [`Obs`] instance (created on first use; the trace epoch
/// is the moment of that first use).
pub fn obs() -> &'static Obs {
    OBS.get_or_init(|| Obs {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        tracer: Tracer::default(),
        registry: Registry::default(),
    })
}

/// Turns trace recording on.
pub fn enable() {
    obs().enabled.store(true, Ordering::Release);
}

/// Turns trace recording off (buffers are kept; see [`reset`]).
pub fn disable() {
    obs().enabled.store(false, Ordering::Release);
}

/// Whether trace recording is currently on. One relaxed atomic load —
/// this is the hot-path gate.
#[inline]
pub fn enabled() -> bool {
    COMPILED && obs().enabled.load(Ordering::Relaxed)
}

/// Clears trace buffers and zeroes every registered metric (handles
/// stay valid). Used between measurement arms and by tests.
pub fn reset() {
    let o = obs();
    o.tracer.clear();
    o.registry.reset();
}

/// Nanoseconds since the obs epoch.
#[inline]
pub fn now_ns() -> u64 {
    obs().epoch.elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------
// Tracks
// ---------------------------------------------------------------------

static NEXT_THREAD_TRACK: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Explicit track override (set by [`set_track`]); `u64::MAX` = unset.
    static CURRENT: Cell<u64> = const { Cell::new(u64::MAX) };
    /// Lazily assigned per-thread fallback track.
    static THREAD_TRACK: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// The track new spans/events land on: the innermost [`set_track`]
/// override, else a per-thread builder track assigned on first use.
pub fn current_track() -> u64 {
    let c = CURRENT.get();
    if c != u64::MAX {
        return c;
    }
    let t = THREAD_TRACK.get();
    if t != u64::MAX {
        return t;
    }
    let t = THREAD_BASE + NEXT_THREAD_TRACK.fetch_add(1, Ordering::Relaxed);
    THREAD_TRACK.set(t);
    t
}

/// Restores the previous track override on drop (see [`set_track`]).
#[must_use = "dropping the guard immediately undoes the track override"]
pub struct TrackGuard {
    prev: u64,
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        CURRENT.set(self.prev);
    }
}

/// Routes this thread's subsequent spans/events onto `track` until the
/// returned guard drops. Nests (the guard restores the previous
/// override). The serving worker sets the session track here so spans
/// recorded anywhere down the call stack — backend executes, shard
/// builds — land on the session's timeline.
pub fn set_track(track: u64) -> TrackGuard {
    TrackGuard {
        prev: CURRENT.replace(track),
    }
}

// ---------------------------------------------------------------------
// Spans and events
// ---------------------------------------------------------------------

/// Opens an RAII span named `name` (category `"span"`) on the current
/// track. Inert when tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_cat(name, "span")
}

/// Opens an RAII span with an explicit category on the current track.
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            active: false,
            track: 0,
            name,
            cat,
            start_ns: 0,
            args: Vec::new(),
        };
    }
    SpanGuard {
        active: true,
        track: current_track(),
        name,
        cat,
        start_ns: now_ns(),
        args: Vec::new(),
    }
}

/// Records a completed span whose interval was measured externally
/// (e.g. a session span closed at completion with the submit time as
/// its start).
pub fn record_span(
    track: u64,
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    end_ns: u64,
    args: Args,
) {
    if !enabled() {
        return;
    }
    obs().tracer.record_span(SpanRecord {
        track,
        name,
        cat,
        start_ns,
        end_ns: end_ns.max(start_ns),
        args,
    });
}

/// Records an instant event on the current track.
pub fn event(name: &'static str, cat: &'static str, args: Args) {
    if !enabled() {
        return;
    }
    event_on(current_track(), name, cat, args);
}

/// Records an instant event on an explicit track.
pub fn event_on(track: u64, name: &'static str, cat: &'static str, args: Args) {
    if !enabled() {
        return;
    }
    obs().tracer.record_event(EventRecord {
        track,
        name,
        cat,
        ts_ns: now_ns(),
        args,
    });
}

/// Copies out the buffered spans and events.
pub fn trace_snapshot() -> (Vec<SpanRecord>, Vec<EventRecord>) {
    obs().tracer.snapshot()
}

/// Records dropped past the trace buffer cap since the last [`reset`].
pub fn trace_dropped() -> u64 {
    obs().tracer.dropped()
}

/// Renders the buffered trace as Chrome `trace_event` JSON
/// (Perfetto-loadable; see [`chrome::render`] for the format).
pub fn chrome_trace_json() -> String {
    let (spans, events) = trace_snapshot();
    chrome::render(&spans, &events)
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// The global metrics [`Registry`].
pub fn registry() -> &'static Registry {
    &obs().registry
}

/// Shorthand for [`Registry::counter`] on the global registry.
pub fn counter(name: &'static str, help: &'static str) -> std::sync::Arc<Counter> {
    registry().counter(name, help)
}

/// Shorthand for [`Registry::gauge`] on the global registry.
pub fn gauge(name: &'static str, help: &'static str) -> std::sync::Arc<Gauge> {
    registry().gauge(name, help)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The obs state is process-global; this test exercises the whole
    /// enable → record → export → reset cycle in one place to avoid
    /// ordering hazards with other tests in this crate (none of which
    /// enable tracing).
    #[test]
    fn end_to_end_record_export_reset() {
        if !COMPILED {
            return;
        }
        reset();
        // Disabled: spans are inert.
        {
            let _s = span("ignored");
        }
        assert_eq!(trace_snapshot().0.len(), 0);

        enable();
        let t = session_track(3);
        {
            let _g = set_track(t);
            let start = now_ns();
            {
                let mut s = span_cat("session", "serve");
                s.arg_u64("tenant", 0);
                {
                    let mut b = span_cat("build", "serve");
                    b.arg_str("outcome", "cold");
                    let _e = span_cat("execute", "exec");
                }
            }
            event("retry", "fault", vec![("device", ArgValue::U64(1))]);
            record_span(t, "queue_wait", "serve", start, now_ns(), vec![]);
        }
        disable();

        let (spans, events) = trace_snapshot();
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().all(|s| s.track == t));
        assert_eq!(events.len(), 1);
        chrome::check_nesting(&spans, &["session", "build", "execute"]).unwrap();
        let doc = chrome_trace_json();
        let stats = chrome::validate(&doc).unwrap();
        assert_eq!(stats.events, 5);

        reset();
        assert_eq!(trace_snapshot().0.len(), 0);
        assert_eq!(trace_dropped(), 0);
    }

    #[test]
    fn thread_tracks_are_distinct() {
        let here = current_track();
        let other = std::thread::spawn(current_track).join().unwrap();
        assert_ne!(here, other);
    }
}
