//! Named metrics: atomic counters and gauges behind a process-wide
//! registry, rendered as a Prometheus-style text exposition.
//!
//! Handles are `Arc`s cached by the instrumented code, so the hot path
//! is a single relaxed atomic op — the registry lock is only taken at
//! registration and render time. With the `trace` cargo feature off the
//! mutation bodies fold to no-ops at compile time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing `u64` metric.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if cfg!(feature = "trace") {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter in place (handles stay valid) — used by
    /// [`reset`](crate::reset) between measurement arms.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time `f64` metric (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if cfg!(feature = "trace") {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Zeroes the gauge in place.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

enum Metric {
    Counter { help: &'static str, c: Arc<Counter> },
    Gauge { help: &'static str, g: Arc<Gauge> },
}

/// The process-wide named-metric table. Obtain via
/// [`registry`](crate::registry()) (or [`counter`](crate::counter) /
/// [`gauge`](crate::gauge) directly).
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<&'static str, Metric>>,
}

impl Registry {
    /// Returns the counter registered under `name`, creating it (with
    /// `help` text) on first use. Panics if `name` is already a gauge.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        if let Some(Metric::Counter { c, .. }) =
            self.metrics.read().unwrap_or_else(|e| e.into_inner()).get(name)
        {
            return Arc::clone(c);
        }
        let mut w = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        match w
            .entry(name)
            .or_insert_with(|| Metric::Counter { help, c: Arc::default() })
        {
            Metric::Counter { c, .. } => Arc::clone(c),
            Metric::Gauge { .. } => panic!("metric {name} already registered as a gauge"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use. Panics if `name` is already a counter.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        if let Some(Metric::Gauge { g, .. }) =
            self.metrics.read().unwrap_or_else(|e| e.into_inner()).get(name)
        {
            return Arc::clone(g);
        }
        let mut w = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        match w
            .entry(name)
            .or_insert_with(|| Metric::Gauge { help, g: Arc::default() })
        {
            Metric::Gauge { g, .. } => Arc::clone(g),
            Metric::Counter { .. } => panic!("metric {name} already registered as a counter"),
        }
    }

    /// Zeroes every registered metric in place; handles stay valid.
    pub fn reset(&self) {
        for m in self.metrics.read().unwrap_or_else(|e| e.into_inner()).values() {
            match m {
                Metric::Counter { c, .. } => c.reset(),
                Metric::Gauge { g, .. } => g.reset(),
            }
        }
    }

    /// Prometheus text exposition (format 0.0.4) of every registered
    /// metric, sorted by name.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, m) in self.metrics.read().unwrap_or_else(|e| e.into_inner()).iter() {
            match m {
                Metric::Counter { help, c } => {
                    out.push_str(&format!(
                        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}\n",
                        c.get()
                    ));
                }
                Metric::Gauge { help, g } => {
                    out.push_str(&format!(
                        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {}\n",
                        g.get()
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let r = Registry::default();
        let a = r.counter("t_total", "a test counter");
        let b = r.counter("t_total", "ignored duplicate help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = r.gauge("t_gauge", "a test gauge");
        g.set(1.5);
        assert_eq!(r.gauge("t_gauge", "").get(), 1.5);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE t_total counter"));
        assert!(text.contains("t_total 3"));
        assert!(text.contains("t_gauge 1.5"));
        r.reset();
        assert_eq!(a.get(), 0);
        assert_eq!(g.get(), 0.0);
    }
}
