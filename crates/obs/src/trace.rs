//! Span-based tracing: bounded in-memory buffers of spans and instant
//! events, organised into *tracks* (Chrome trace "threads").
//!
//! Tracks give every concern its own timeline: track 0 is the host,
//! devices and builder threads get small fixed ranges, and every serving
//! session gets its own track keyed by session id — so a session's
//! `session ⊇ build ⊇ execute` spans nest on one line in Perfetto no
//! matter which OS thread ran them.

use std::sync::Mutex;

/// Track id of the host/main timeline.
pub const TRACK_HOST: u64 = 0;
/// First device track; device `i` records on `DEVICE_BASE + i`.
pub const DEVICE_BASE: u64 = 0x100;
/// First auto-assigned per-thread track (CST builder workers).
pub const THREAD_BASE: u64 = 0x1_0000;
/// First per-session track; session `id` records on `SESSION_BASE + id`.
pub const SESSION_BASE: u64 = 1 << 32;

/// Track for a serving session.
#[inline]
pub fn session_track(session_id: u64) -> u64 {
    SESSION_BASE + session_id
}

/// Track for a pool device.
#[inline]
pub fn device_track(device_index: usize) -> u64 {
    DEVICE_BASE + device_index as u64
}

/// A typed span/event argument.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Float argument.
    F64(f64),
    /// Static string argument.
    Str(&'static str),
}

/// Argument list attached to a span or event.
pub type Args = Vec<(&'static str, ArgValue)>;

/// A completed span: a named interval on a track.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Track (Chrome `tid`) the span renders on.
    pub track: u64,
    /// Span name.
    pub name: &'static str,
    /// Category (Chrome `cat`).
    pub cat: &'static str,
    /// Start, nanoseconds since the obs epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the obs epoch (`>= start_ns`).
    pub end_ns: u64,
    /// Typed arguments.
    pub args: Args,
}

/// An instant event: a named point on a track.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Track (Chrome `tid`) the event renders on.
    pub track: u64,
    /// Event name.
    pub name: &'static str,
    /// Category (Chrome `cat`).
    pub cat: &'static str,
    /// Timestamp, nanoseconds since the obs epoch.
    pub ts_ns: u64,
    /// Typed arguments.
    pub args: Args,
}

/// Cap on buffered spans (and, separately, events). Sized for hours of
/// serving; on overflow new records are counted into `dropped` instead
/// of growing without bound.
const CAP: usize = 1 << 18;

#[derive(Default)]
struct TraceBuf {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    dropped: u64,
}

/// The bounded trace sink. One lives in the global [`Obs`](crate::Obs)
/// state; recording takes a short mutex hold (the hot path never holds
/// it while timing anything).
#[derive(Default)]
pub struct Tracer {
    buf: Mutex<TraceBuf>,
}

impl Tracer {
    pub(crate) fn record_span(&self, span: SpanRecord) {
        let mut b = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if b.spans.len() < CAP {
            b.spans.push(span);
        } else {
            b.dropped += 1;
        }
    }

    pub(crate) fn record_event(&self, ev: EventRecord) {
        let mut b = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if b.events.len() < CAP {
            b.events.push(ev);
        } else {
            b.dropped += 1;
        }
    }

    /// Copies out the buffered spans and events.
    pub fn snapshot(&self) -> (Vec<SpanRecord>, Vec<EventRecord>) {
        let b = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        (b.spans.clone(), b.events.clone())
    }

    /// Records dropped past the buffer cap.
    pub fn dropped(&self) -> u64 {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Clears the buffers and the drop counter.
    pub fn clear(&self) {
        let mut b = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        b.spans.clear();
        b.events.clear();
        b.dropped = 0;
    }
}

/// RAII span: created by [`span`](crate::span)/[`span_cat`](crate::span_cat),
/// records the interval on drop. Inert (no allocation, no clock read)
/// when tracing is disabled.
#[must_use = "a span records its interval when dropped"]
pub struct SpanGuard {
    pub(crate) active: bool,
    pub(crate) track: u64,
    pub(crate) name: &'static str,
    pub(crate) cat: &'static str,
    pub(crate) start_ns: u64,
    pub(crate) args: Args,
}

impl SpanGuard {
    /// Attaches an integer argument (no-op on an inert span).
    pub fn arg_u64(&mut self, key: &'static str, v: u64) {
        if self.active {
            self.args.push((key, ArgValue::U64(v)));
        }
    }

    /// Attaches a float argument (no-op on an inert span).
    pub fn arg_f64(&mut self, key: &'static str, v: f64) {
        if self.active {
            self.args.push((key, ArgValue::F64(v)));
        }
    }

    /// Attaches a string argument (no-op on an inert span).
    pub fn arg_str(&mut self, key: &'static str, v: &'static str) {
        if self.active {
            self.args.push((key, ArgValue::Str(v)));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            crate::obs().tracer.record_span(SpanRecord {
                track: self.track,
                name: self.name,
                cat: self.cat,
                start_ns: self.start_ns,
                end_ns: crate::now_ns(),
                args: std::mem::take(&mut self.args),
            });
        }
    }
}
