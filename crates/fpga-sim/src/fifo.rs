//! Bounded FIFOs (the inter-module streams of Fig. 5(b)/(c)).
//!
//! Task parallelism on the FPGA is "achieved by taking advantage of extra
//! buffering introduced between the modules ... implemented by FIFOs"
//! (Section VI-C). The simulator uses the same abstraction; stall counters
//! feed the pipeline statistics.

use std::collections::VecDeque;

/// A bounded single-producer single-consumer queue with stall accounting.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Rejected pushes (producer had to stall).
    push_stalls: u64,
    /// Failed pops (consumer had to idle).
    pop_stalls: u64,
    /// Highest occupancy observed.
    high_water: usize,
    /// Total items that passed through.
    total_pushed: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given capacity (> 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            push_stalls: 0,
            pop_stalls: 0,
            high_water: 0,
            total_pushed: 0,
        }
    }

    /// Attempts to enqueue; on a full FIFO records a stall and returns the
    /// item back to the caller.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() == self.capacity {
            self.push_stalls += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.total_pushed += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Attempts to dequeue; on an empty FIFO records a stall.
    pub fn pop(&mut self) -> Option<T> {
        match self.items.pop_front() {
            Some(x) => Some(x),
            None => {
                self.pop_stalls += 1;
                None
            }
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO is full.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Producer stalls observed.
    pub fn push_stalls(&self) -> u64 {
        self.push_stalls
    }

    /// Consumer stalls observed.
    pub fn pop_stalls(&self) -> u64 {
        self.pop_stalls
    }

    /// Peak occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total successfully enqueued items.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        assert_eq!(f.pop(), Some(0));
        assert_eq!(f.pop(), Some(1));
        f.push(9).unwrap();
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(9));
    }

    #[test]
    fn full_push_stalls_and_returns_item() {
        let mut f = Fifo::new(1);
        f.push(1).unwrap();
        assert!(f.is_full());
        assert_eq!(f.push(2), Err(2));
        assert_eq!(f.push_stalls(), 1);
    }

    #[test]
    fn empty_pop_stalls() {
        let mut f: Fifo<u8> = Fifo::new(1);
        assert_eq!(f.pop(), None);
        assert_eq!(f.pop_stalls(), 1);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = Fifo::new(8);
        for i in 0..5 {
            f.push(i).unwrap();
        }
        for _ in 0..5 {
            f.pop();
        }
        assert_eq!(f.high_water(), 5);
        assert_eq!(f.total_pushed(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new(0);
    }
}
