//! Device specifications.
//!
//! Defaults model the paper's target: a Xilinx Alveo U200 Data Center
//! Accelerator Card (Section VII setup) — 35 MB on-chip BRAM, 64 GB off-chip
//! DRAM, 300 MHz kernel clock, PCIe gen3 x16 to the host, BRAM reads in 1
//! cycle vs ~8 cycles from DRAM (Section II-B / V-B).

/// PCIe link model (host ↔ card transfers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieSpec {
    /// Sustained effective bandwidth in bytes/second. PCIe gen3 x16 peaks at
    /// ~15.75 GB/s; ~12 GB/s is a realistic effective figure.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-transfer setup latency in seconds (driver + DMA descriptor).
    pub latency_sec: f64,
}

impl Default for PcieSpec {
    fn default() -> Self {
        PcieSpec {
            bandwidth_bytes_per_sec: 12.0e9,
            latency_sec: 10.0e-6,
        }
    }
}

impl PcieSpec {
    /// Time to move `bytes` across the link.
    pub fn transfer_time_sec(&self, bytes: usize) -> f64 {
        self.latency_sec + bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

/// FPGA card specification.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaSpec {
    /// On-chip BRAM capacity in bytes (Alveo U200: 35 MB).
    pub bram_bytes: usize,
    /// Off-chip DRAM capacity in bytes (Alveo U200: 64 GB).
    pub dram_bytes: usize,
    /// Kernel clock in MHz (the paper's design runs at 300 MHz).
    pub clock_mhz: f64,
    /// BRAM read latency in cycles (1).
    pub bram_read_latency: u32,
    /// DRAM read latency in cycles (the paper quotes 7-8; we use 8).
    pub dram_read_latency: u32,
    /// Maximum access ports to one array after array partitioning
    /// (`Port_max`, Section VI-A) — bounds `D_CST` via δ_D.
    pub port_max: u32,
    /// `N_o`: maximum newly expanded partial results per round
    /// (Section VI-B).
    pub no: u32,
    /// Depth of the inter-module FIFOs used by the task-parallel designs.
    pub fifo_depth: usize,
    /// Host link.
    pub pcie: PcieSpec,
}

impl Default for FpgaSpec {
    fn default() -> Self {
        FpgaSpec {
            bram_bytes: 35 << 20,
            dram_bytes: 64 << 30,
            clock_mhz: 300.0,
            bram_read_latency: 1,
            dram_read_latency: 8,
            port_max: 4096,
            no: 4096,
            fifo_depth: 512,
            pcie: PcieSpec::default(),
        }
    }
}

impl FpgaSpec {
    /// Seconds per kernel cycle.
    #[inline]
    pub fn cycle_time_sec(&self) -> f64 {
        1.0 / (self.clock_mhz * 1.0e6)
    }

    /// Converts a cycle count to seconds at this clock.
    #[inline]
    pub fn cycles_to_sec(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_time_sec()
    }

    /// The BRAM budget available for a CST partition after reserving space
    /// for the partial-results buffer (`(|V(q)|-1) × N_o` slots of
    /// `bytes_per_partial` each, Section VI-B).
    pub fn cst_bram_budget(&self, query_vertices: usize, bytes_per_partial: usize) -> usize {
        let buffer = query_vertices.saturating_sub(1) * self.no as usize * bytes_per_partial;
        self.bram_bytes.saturating_sub(buffer)
    }

    /// A laptop-scale spec for tests: small BRAM so partitioning triggers.
    pub fn test_small() -> Self {
        FpgaSpec {
            bram_bytes: 64 << 10,
            dram_bytes: 16 << 20,
            clock_mhz: 300.0,
            bram_read_latency: 1,
            dram_read_latency: 8,
            port_max: 64,
            no: 64,
            fifo_depth: 16,
            pcie: PcieSpec::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_alveo_u200() {
        let s = FpgaSpec::default();
        assert_eq!(s.bram_bytes, 35 * 1024 * 1024);
        assert_eq!(s.dram_bytes, 64 * 1024 * 1024 * 1024);
        assert_eq!(s.clock_mhz, 300.0);
        assert_eq!(s.dram_read_latency / s.bram_read_latency, 8);
    }

    #[test]
    fn cycle_time() {
        let s = FpgaSpec::default();
        let one_second = s.cycles_to_sec(300_000_000);
        assert!((one_second - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pcie_transfer_time_scales_with_bytes() {
        let p = PcieSpec::default();
        let small = p.transfer_time_sec(1 << 10);
        let big = p.transfer_time_sec(1 << 30);
        assert!(big > small);
        // 1 GiB at 12 GB/s ≈ 89 ms.
        assert!((big - (10.0e-6 + (1u64 << 30) as f64 / 12.0e9)).abs() < 1e-9);
    }

    #[test]
    fn cst_budget_reserves_buffer() {
        let s = FpgaSpec::default();
        let full = s.cst_bram_budget(1, 32);
        assert_eq!(full, s.bram_bytes);
        let with_buffer = s.cst_bram_budget(6, 32);
        assert_eq!(with_buffer, s.bram_bytes - 5 * s.no as usize * 32);
    }

    #[test]
    fn budget_saturates_at_zero() {
        let s = FpgaSpec::test_small();
        assert_eq!(s.cst_bram_budget(1000, 1024), 0);
    }
}
