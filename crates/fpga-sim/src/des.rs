//! A small discrete-event simulator for FPGA-style pipelines.
//!
//! Models what HLS loop pipelining gives the paper's kernel: stages with an
//! initiation interval (II) and a latency, connected by bounded FIFOs
//! (Fig. 5). One token can enter a stage every II cycles; results appear
//! `latency` cycles later and drain into downstream FIFOs at one token per
//! cycle, stalling on backpressure.
//!
//! The engine cross-validates the closed-form cycle model
//! ([`crate::cycles::CycleModel`]) on synthetic task streams — see the tests
//! here and the kernel-level validation in the `fast` crate.

use crate::fifo::Fifo;
use std::collections::VecDeque;

/// Identifies a stage within a [`Pipeline`].
pub type StageId = usize;

/// Identifies a FIFO (edge) within a [`Pipeline`].
pub type EdgeId = usize;

/// A unit of work flowing through the pipeline. The payload is opaque to the
/// engine; stages interpret it.
pub type Token = u64;

/// Stage behaviour: maps an input token to zero or more `(edge, token)`
/// emissions.
pub type StageLogic = Box<dyn FnMut(Token) -> Vec<(EdgeId, Token)>>;

struct Stage {
    name: String,
    latency: u32,
    ii: u32,
    logic: StageLogic,
    /// Input FIFO feeding this stage, if any (sources have none).
    input: Option<EdgeId>,
    /// Cycle at which the next token may be issued (II enforcement).
    next_issue_at: u64,
    /// Operations in flight: (completion_cycle, emissions).
    in_flight: VecDeque<(u64, Vec<(EdgeId, Token)>)>,
    /// Completed emissions waiting to drain into FIFOs (1 per cycle).
    outbox: VecDeque<(EdgeId, Token)>,
    /// Tokens processed.
    processed: u64,
}

/// Construction handle for a pipeline.
#[derive(Default)]
pub struct PipelineBuilder {
    stages: Vec<Stage>,
    fifo_capacities: Vec<usize>,
}

impl PipelineBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a FIFO with the given capacity; returns its id.
    pub fn add_fifo(&mut self, capacity: usize) -> EdgeId {
        self.fifo_capacities.push(capacity);
        self.fifo_capacities.len() - 1
    }

    /// Adds a stage reading from `input` (or `None` for a source stage whose
    /// tokens are injected manually); returns its id.
    pub fn add_stage(
        &mut self,
        name: impl Into<String>,
        input: Option<EdgeId>,
        latency: u32,
        ii: u32,
        logic: StageLogic,
    ) -> StageId {
        assert!(ii >= 1, "initiation interval must be >= 1");
        self.stages.push(Stage {
            name: name.into(),
            latency,
            ii,
            logic,
            input,
            next_issue_at: 0,
            in_flight: VecDeque::new(),
            outbox: VecDeque::new(),
            processed: 0,
        });
        self.stages.len() - 1
    }

    /// Finalises the pipeline.
    pub fn build(self) -> Pipeline {
        let fifos = self
            .fifo_capacities
            .iter()
            .map(|&c| Fifo::new(c))
            .collect();
        Pipeline {
            stages: self.stages,
            fifos,
            now: 0,
        }
    }
}

/// Per-run results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Total cycles until quiescence.
    pub cycles: u64,
    /// Tokens processed per stage.
    pub processed: Vec<u64>,
    /// `(push_stalls, pop_stalls, high_water)` per FIFO.
    pub fifo_stats: Vec<(u64, u64, usize)>,
}

/// An executable pipeline.
pub struct Pipeline {
    stages: Vec<Stage>,
    fifos: Vec<Fifo<Token>>,
    now: u64,
}

impl Pipeline {
    /// Injects a token into a FIFO before or during a run (e.g. the initial
    /// batch of root partial results).
    ///
    /// # Panics
    /// Panics if the FIFO is full — injection is for pre-loading, not flow
    /// control.
    pub fn inject(&mut self, edge: EdgeId, token: Token) {
        self.fifos[edge]
            .push(token)
            .unwrap_or_else(|_| panic!("inject into full FIFO {edge}"));
    }

    /// Steps one cycle. Returns `true` if any work remains.
    pub fn tick(&mut self) -> bool {
        let now = self.now;

        // Phase 1: drain outboxes (one token per stage per cycle) and retire
        // completed operations into outboxes.
        for stage in &mut self.stages {
            if let Some(&(edge, token)) = stage.outbox.front() {
                if self.fifos[edge].push(token).is_ok() {
                    stage.outbox.pop_front();
                }
                // On failure the FIFO recorded a push stall; retry next cycle.
            }
            while let Some(&(done_at, _)) = stage.in_flight.front() {
                if done_at <= now {
                    let (_, emissions) = stage.in_flight.pop_front().expect("front exists");
                    stage.outbox.extend(emissions);
                } else {
                    break;
                }
            }
        }

        // Phase 2: issue new operations (II-gated), popping from input FIFOs.
        for stage in &mut self.stages {
            if stage.next_issue_at > now {
                continue;
            }
            let Some(input) = stage.input else { continue };
            // Keep the in-flight window bounded by the latency (a real
            // pipeline holds at most `latency` overlapped ops).
            if stage.in_flight.len() >= stage.latency.max(1) as usize {
                continue;
            }
            if let Some(token) = self.fifos[input].pop() {
                let emissions = (stage.logic)(token);
                stage.processed += 1;
                stage
                    .in_flight
                    .push_back((now + stage.latency as u64, emissions));
                stage.next_issue_at = now + stage.ii as u64;
            }
        }

        self.now += 1;
        self.has_work()
    }

    /// Whether any FIFO, outbox, or in-flight op still holds work.
    pub fn has_work(&self) -> bool {
        self.fifos.iter().any(|f| !f.is_empty())
            || self
                .stages
                .iter()
                .any(|s| !s.in_flight.is_empty() || !s.outbox.is_empty())
    }

    /// Runs until quiescence or `max_cycles`, returning the report.
    pub fn run(&mut self, max_cycles: u64) -> RunReport {
        while self.has_work() && self.now < max_cycles {
            self.tick();
        }
        RunReport {
            cycles: self.now,
            processed: self.stages.iter().map(|s| s.processed).collect(),
            fifo_stats: self
                .fifos
                .iter()
                .map(|f| (f.push_stalls(), f.pop_stalls(), f.high_water()))
                .collect(),
        }
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Name of a stage (for reports).
    pub fn stage_name(&self, id: StageId) -> &str {
        &self.stages[id].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `n` tokens through one stage with latency `l`, II=1 → ≈ n + l cycles.
    #[test]
    fn single_stage_throughput() {
        let mut b = PipelineBuilder::new();
        let input = b.add_fifo(2048);
        b.add_stage("s", Some(input), 5, 1, Box::new(|_| vec![]));
        let mut p = b.build();
        for i in 0..1000 {
            p.inject(input, i);
        }
        let report = p.run(1 << 20);
        assert!(
            (1000..1020).contains(&report.cycles),
            "cycles {}",
            report.cycles
        );
        assert_eq!(report.processed[0], 1000);
    }

    /// Chained stages overlap: total ≈ n + ΣL, not Σ(n·L).
    #[test]
    fn two_stage_chain_overlaps() {
        let mut b = PipelineBuilder::new();
        let input = b.add_fifo(2048);
        let mid = b.add_fifo(64);
        b.add_stage("a", Some(input), 4, 1, Box::new(move |t| vec![(1, t)]));
        b.add_stage("b", Some(mid), 6, 1, Box::new(|_| vec![]));
        let mut p = b.build();
        for i in 0..500 {
            p.inject(input, i);
        }
        let report = p.run(1 << 20);
        assert!(
            report.cycles < 540,
            "pipeline failed to overlap: {}",
            report.cycles
        );
        assert_eq!(report.processed[1], 500);
    }

    /// A stage with fan-out 3 bottlenecks on its 1-token/cycle outbox.
    #[test]
    fn fan_out_bottleneck() {
        let mut b = PipelineBuilder::new();
        let input = b.add_fifo(2048);
        let out = b.add_fifo(4096);
        b.add_stage(
            "fan",
            Some(input),
            2,
            1,
            Box::new(move |t| vec![(1, t), (1, t), (1, t)]),
        );
        b.add_stage("sink", Some(out), 1, 1, Box::new(|_| vec![]));
        let mut p = b.build();
        for i in 0..400 {
            p.inject(input, i);
        }
        let report = p.run(1 << 20);
        // 1200 emissions at 1/cycle dominate.
        assert!(
            (1200..1260).contains(&report.cycles),
            "cycles {}",
            report.cycles
        );
        assert_eq!(report.processed[1], 1200);
    }

    /// Backpressure: a slow consumer (II=3) with a tiny FIFO stalls the
    /// producer; total ≈ 3n.
    #[test]
    fn backpressure_stalls_producer() {
        let mut b = PipelineBuilder::new();
        let input = b.add_fifo(2048);
        let mid = b.add_fifo(2);
        b.add_stage("fast", Some(input), 1, 1, Box::new(move |t| vec![(1, t)]));
        b.add_stage("slow", Some(mid), 1, 3, Box::new(|_| vec![]));
        let mut p = b.build();
        for i in 0..300 {
            p.inject(input, i);
        }
        let report = p.run(1 << 20);
        assert!(
            (900..960).contains(&report.cycles),
            "cycles {}",
            report.cycles
        );
        let (push_stalls, _, high_water) = report.fifo_stats[1];
        assert!(push_stalls > 0, "expected producer stalls");
        assert_eq!(high_water, 2);
    }

    /// An empty pipeline is immediately quiescent.
    #[test]
    fn empty_run_terminates() {
        let mut b = PipelineBuilder::new();
        let input = b.add_fifo(4);
        b.add_stage("s", Some(input), 1, 1, Box::new(|_| vec![]));
        let mut p = b.build();
        let report = p.run(100);
        assert_eq!(report.cycles, 0);
    }

    /// max_cycles caps runaway pipelines (e.g. a self-loop).
    #[test]
    fn max_cycles_caps_self_loop() {
        let mut b = PipelineBuilder::new();
        let loop_edge = b.add_fifo(16);
        b.add_stage(
            "loop",
            Some(loop_edge),
            1,
            1,
            Box::new(move |t| vec![(0, t)]),
        );
        let mut p = b.build();
        p.inject(loop_edge, 1);
        let report = p.run(500);
        assert_eq!(report.cycles, 500);
    }

    #[test]
    fn stage_names_kept() {
        let mut b = PipelineBuilder::new();
        let input = b.add_fifo(4);
        let id = b.add_stage("generator", Some(input), 1, 1, Box::new(|_| vec![]));
        let p = b.build();
        assert_eq!(p.stage_name(id), "generator");
    }
}
