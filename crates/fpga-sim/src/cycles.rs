//! The analytic cycle model (paper Section VI-B/C/D, Equations 1-4).
//!
//! The paper derives the total kernel cycles from two workload counters:
//! `N` — the number of partial results (`p_o`) generated, and `M` — the
//! number of edge-validation tasks (`t_n`). Six per-stage latencies `L1..L6`
//! cover: (1) read from the intermediate results buffer, (2) expand a
//! partial result and emit its visited-validation task, (3) visited
//! validation, (4) collection, (5) edge-validation task generation,
//! (6) edge validation. With `L_f = L1+..+L4` and `L_t = L5+L6`:
//!
//! * Eq. (1) `L_serial = N·L_f + M·L_t` — no pipelining;
//! * Eq. (2) `L_basic ≈ (N·L_f + M·L_t)/N_o + 4N + 2M` — loop pipelining,
//!   modules still serialised;
//! * Eq. (3) `L_task ≈ 2N + max(N, M)` — task parallelism (Fig. 5(b));
//! * Eq. (4) `L_sep ≈ N + max(N, M)` — separated task generators
//!   (Fig. 5(c)).
//!
//! FAST-DRAM has no equation in the paper; we model it as the basic design
//! with every buffer/CST touch paying the DRAM read latency instead of the
//! BRAM's single cycle (Fig. 7 measures the resulting ~5x gap).

/// Per-stage latencies `L1..L6` (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageLatencies {
    pub l1: u32,
    pub l2: u32,
    pub l3: u32,
    pub l4: u32,
    pub l5: u32,
    pub l6: u32,
}

impl Default for StageLatencies {
    fn default() -> Self {
        // Representative HLS latencies: a buffer read, an expansion (BRAM
        // adjacency fetch + bounds checks), a parallel compare, a collect,
        // a task emit, and an O(1) partitioned-array edge probe.
        StageLatencies {
            l1: 2,
            l2: 4,
            l3: 2,
            l4: 2,
            l5: 2,
            l6: 3,
        }
    }
}

impl StageLatencies {
    /// `L_f = L1 + L2 + L3 + L4`.
    #[inline]
    pub fn lf(&self) -> u64 {
        (self.l1 + self.l2 + self.l3 + self.l4) as u64
    }

    /// `L_t = L5 + L6`.
    #[inline]
    pub fn lt(&self) -> u64 {
        (self.l5 + self.l6) as u64
    }
}

/// Workload counters measured by the kernel during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadCounts {
    /// `N`: partial results generated.
    pub n: u64,
    /// `M`: edge-validation tasks generated.
    pub m: u64,
}

/// The analytic cycle model.
#[derive(Debug, Clone, Copy)]
pub struct CycleModel {
    pub latencies: StageLatencies,
    /// `N_o`: partial results expanded per round.
    pub no: u32,
    /// BRAM read latency (cycles).
    pub bram_read_latency: u32,
    /// DRAM read latency (cycles).
    pub dram_read_latency: u32,
}

impl CycleModel {
    /// Builds a model from a device spec.
    pub fn new(latencies: StageLatencies, no: u32, bram_read_latency: u32, dram_read_latency: u32) -> Self {
        assert!(no > 0, "N_o must be positive");
        CycleModel {
            latencies,
            no,
            bram_read_latency,
            dram_read_latency,
        }
    }

    /// Eq. (1): fully serial execution.
    pub fn serial(&self, w: WorkloadCounts) -> u64 {
        w.n * self.latencies.lf() + w.m * self.latencies.lt()
    }

    /// Eq. (2): loop-pipelined modules executed one after another
    /// (FAST-BASIC).
    pub fn basic(&self, w: WorkloadCounts) -> u64 {
        self.serial(w) / self.no as u64 + 4 * w.n + 2 * w.m
    }

    /// FAST-DRAM: the basic design with CST and intermediate results in
    /// DRAM — each of the four per-`p_o` steps and two per-`t_n` steps pays
    /// the DRAM read latency instead of one BRAM cycle.
    pub fn dram(&self, w: WorkloadCounts) -> u64 {
        let r = self.dram_read_latency.max(self.bram_read_latency) as u64;
        self.serial(w) / self.no as u64 + r * (4 * w.n + 2 * w.m)
    }

    /// Eq. (3): task parallelism between modules (FAST-TASK).
    pub fn task(&self, w: WorkloadCounts) -> u64 {
        2 * w.n + w.n.max(w.m)
    }

    /// Eq. (4): separated `t_v`/`t_n` generators (FAST-SEP).
    pub fn sep(&self, w: WorkloadCounts) -> u64 {
        w.n + w.n.max(w.m)
    }

    /// The paper's guidance on choosing `N_o` (Section VI-B): it must
    /// dominate the pipelined-fill term, `N_o >> (N·L_f + M·L_t)/(4N + 2M)`.
    /// Returns the right-hand side for a given workload.
    pub fn no_lower_bound(&self, w: WorkloadCounts) -> f64 {
        let denom = (4 * w.n + 2 * w.m) as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.serial(w) as f64 / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CycleModel {
        CycleModel::new(StageLatencies::default(), 1024, 1, 8)
    }

    fn w(n: u64, m: u64) -> WorkloadCounts {
        WorkloadCounts { n, m }
    }

    #[test]
    fn serial_matches_equation_1() {
        let m = model();
        let lat = m.latencies;
        assert_eq!(m.serial(w(10, 4)), 10 * lat.lf() + 4 * lat.lt());
    }

    #[test]
    fn basic_matches_equation_2() {
        let m = model();
        let counts = w(1000, 500);
        let expected = m.serial(counts) / 1024 + 4 * 1000 + 2 * 500;
        assert_eq!(m.basic(counts), expected);
    }

    #[test]
    fn task_and_sep_match_equations_3_and_4() {
        let m = model();
        assert_eq!(m.task(w(100, 250)), 200 + 250);
        assert_eq!(m.task(w(100, 50)), 200 + 100);
        assert_eq!(m.sep(w(100, 250)), 100 + 250);
        assert_eq!(m.sep(w(100, 50)), 100 + 100);
    }

    #[test]
    fn ordering_serial_ge_basic_ge_task_ge_sep() {
        // The optimisation ladder must never invert for realistic workloads
        // (N_o chosen per the paper's rule).
        let m = model();
        for (n, mm) in [(1000u64, 800u64), (5000, 12000), (100, 100), (10_000, 3000)] {
            let c = w(n, mm);
            assert!(m.serial(c) >= m.basic(c), "serial<basic at {n},{mm}");
            assert!(m.basic(c) >= m.task(c), "basic<task at {n},{mm}");
            assert!(m.task(c) >= m.sep(c), "task<sep at {n},{mm}");
        }
    }

    #[test]
    fn dram_to_basic_ratio_near_latency_ratio() {
        // Fig. 7: FAST-BASIC ≈ 5x faster than FAST-DRAM, "close to the ratio
        // of the read latency" (8). With the fill term amortised the model
        // approaches r; with overheads it sits below it.
        let m = model();
        let c = w(1_000_000, 1_000_000);
        let ratio = m.dram(c) as f64 / m.basic(c) as f64;
        assert!(ratio > 4.0 && ratio <= 8.0, "ratio {ratio}");
    }

    #[test]
    fn task_improvement_bounded_by_50_percent() {
        // Section VI-C: "this optimization can achieve up to 50% performance
        // improvement in theory" over basic.
        let m = model();
        for (n, mm) in [(1000u64, 1000u64), (1000, 4000), (4000, 1000)] {
            let c = w(n, mm);
            let gain = 1.0 - m.task(c) as f64 / m.basic(c) as f64;
            assert!(gain <= 0.51, "gain {gain} at {n},{mm}");
        }
    }

    #[test]
    fn sep_improvement_bounded_by_33_percent() {
        // Section VI-D: at most 33% over task.
        let m = model();
        for (n, mm) in [(1000u64, 1000u64), (1000, 4000), (4000, 1000), (2000, 1999)] {
            let c = w(n, mm);
            let gain = 1.0 - m.sep(c) as f64 / m.task(c) as f64;
            assert!(gain <= 1.0 / 3.0 + 1e-9, "gain {gain} at {n},{mm}");
        }
    }

    #[test]
    fn sep_gain_maximised_when_n_dominates() {
        // Section VI-D: "when N/M > 1, Task Generator Separation achieves the
        // best improvements" — gain = N/(2N+max(N,M)) grows with N/M.
        let m = model();
        let gain = |c: WorkloadCounts| 1.0 - m.sep(c) as f64 / m.task(c) as f64;
        assert!(gain(w(4000, 1000)) > gain(w(1000, 4000)));
    }

    #[test]
    fn no_lower_bound_sane() {
        let m = model();
        let c = w(1000, 1000);
        let bound = m.no_lower_bound(c);
        // L_f=10, L_t=5 with defaults → (10N + 5M)/(4N + 2M) = 2.5.
        assert!((bound - 2.5).abs() < 1e-9);
        assert_eq!(m.no_lower_bound(w(0, 0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_no_rejected() {
        CycleModel::new(StageLatencies::default(), 0, 1, 8);
    }
}
