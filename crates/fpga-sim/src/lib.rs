//! # fpga-sim
//!
//! Software emulation of the FPGA substrate the FAST paper runs on (a Xilinx
//! Alveo U200). No FPGA toolchain is used; instead the crate models the
//! performance-relevant mechanisms the paper's design exploits:
//!
//! * [`FpgaSpec`] / [`PcieSpec`] — device parameters (35 MB BRAM, 64 GB
//!   DRAM, 300 MHz, PCIe gen3 x16);
//! * [`MemoryModel`] — capacity + read-latency accounting for BRAM (1 cycle)
//!   vs DRAM (~8 cycles), the mechanism behind Fig. 7;
//! * [`Fifo`] — the bounded inter-module streams of Fig. 5(b)/(c);
//! * [`CycleModel`] — the paper's closed-form cycle equations (1)-(4);
//! * [`des`] — a discrete-event pipeline simulator (stages with latency and
//!   initiation interval, backpressure) used to cross-validate the closed
//!   forms.

pub mod cycles;
pub mod des;
pub mod fifo;
pub mod memory;
pub mod spec;

pub use cycles::{CycleModel, StageLatencies, WorkloadCounts};
pub use des::{EdgeId, Pipeline, PipelineBuilder, RunReport, StageId};
pub use fifo::Fifo;
pub use memory::{CapacityError, MemoryKind, MemoryModel};
pub use spec::{FpgaSpec, PcieSpec};
