//! Memory access accounting.
//!
//! The kernel charges every CST/buffer access through a [`MemoryModel`] so
//! that the same matching code yields FAST-BASIC (BRAM-resident CST) or
//! FAST-DRAM (DRAM-resident CST) cycle counts purely by configuration —
//! exactly the comparison of the paper's Fig. 7.

/// Which physical memory a region models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// On-chip block RAM: 1-cycle reads, tens of MB.
    Bram,
    /// Off-chip DRAM: ~8-cycle reads, tens of GB.
    Dram,
}

/// Byte capacity + latency + access counters for one memory region.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    kind: MemoryKind,
    capacity_bytes: usize,
    read_latency: u32,
    write_latency: u32,
    allocated_bytes: usize,
    reads: u64,
    writes: u64,
}

/// Error returned when an allocation exceeds capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    pub requested: usize,
    pub available: usize,
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "allocation of {} bytes exceeds available {} bytes",
            self.requested, self.available
        )
    }
}

impl std::error::Error for CapacityError {}

impl MemoryModel {
    /// A BRAM region with the given capacity and read latency.
    pub fn bram(capacity_bytes: usize, read_latency: u32) -> Self {
        MemoryModel {
            kind: MemoryKind::Bram,
            capacity_bytes,
            read_latency,
            write_latency: 1,
            allocated_bytes: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// A DRAM region with the given capacity and read latency.
    pub fn dram(capacity_bytes: usize, read_latency: u32) -> Self {
        MemoryModel {
            kind: MemoryKind::Dram,
            capacity_bytes,
            read_latency,
            write_latency: 4,
            allocated_bytes: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Which memory this region models.
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Read latency in cycles.
    #[inline]
    pub fn read_latency(&self) -> u32 {
        self.read_latency
    }

    /// Write latency in cycles.
    #[inline]
    pub fn write_latency(&self) -> u32 {
        self.write_latency
    }

    /// Reserves `bytes`; fails when the region is full (the trigger for CST
    /// partitioning on BRAM).
    pub fn allocate(&mut self, bytes: usize) -> Result<(), CapacityError> {
        let available = self.capacity_bytes - self.allocated_bytes;
        if bytes > available {
            return Err(CapacityError {
                requested: bytes,
                available,
            });
        }
        self.allocated_bytes += bytes;
        Ok(())
    }

    /// Releases `bytes` back to the region.
    pub fn free(&mut self, bytes: usize) {
        self.allocated_bytes = self.allocated_bytes.saturating_sub(bytes);
    }

    /// Whether `bytes` would fit right now.
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.capacity_bytes - self.allocated_bytes
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }

    /// Total capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Charges `n` reads, returning the cycles they cost.
    #[inline]
    pub fn charge_reads(&mut self, n: u64) -> u64 {
        self.reads += n;
        n * self.read_latency as u64
    }

    /// Charges `n` writes, returning the cycles they cost.
    #[inline]
    pub fn charge_writes(&mut self, n: u64) -> u64 {
        self.writes += n;
        n * self.write_latency as u64
    }

    /// Total reads charged.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes charged.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_tracks_and_rejects_overflow() {
        let mut m = MemoryModel::bram(100, 1);
        m.allocate(60).unwrap();
        assert!(m.fits(40));
        assert!(!m.fits(41));
        let err = m.allocate(41).unwrap_err();
        assert_eq!(err.available, 40);
        m.free(60);
        assert!(m.fits(100));
    }

    #[test]
    fn read_write_charging() {
        let mut bram = MemoryModel::bram(1024, 1);
        let mut dram = MemoryModel::dram(1024, 8);
        assert_eq!(bram.charge_reads(10), 10);
        assert_eq!(dram.charge_reads(10), 80);
        assert_eq!(bram.reads(), 10);
        assert_eq!(dram.reads(), 10);
        assert!(dram.charge_writes(2) > 0);
        assert_eq!(dram.writes(), 2);
    }

    #[test]
    fn latency_ratio_matches_paper() {
        let bram = MemoryModel::bram(1, 1);
        let dram = MemoryModel::dram(1, 8);
        // "the read latency of BRAM is 1 cycle while DRAM is about 7-8".
        assert_eq!(dram.read_latency() / bram.read_latency(), 8);
    }

    #[test]
    fn free_saturates() {
        let mut m = MemoryModel::bram(10, 1);
        m.free(100);
        assert_eq!(m.allocated_bytes(), 0);
    }
}
