//! The kernel's per-depth expansion plan.
//!
//! Precomputed from the query, matching order, and BFS tree: at each depth
//! the Generator expands from one **anchor** backward neighbour (the tree
//! parent when available, matching Algorithm 5's `C(u)` fetch), and the Edge
//! Validator checks the remaining backward neighbours (the non-tree
//! neighbours `u_n` of Algorithm 7).

use graph_core::{BfsTree, MatchingOrder, QueryGraph, QueryVertexId};

/// Maximum query vertices the kernel supports. Partial results are stored in
/// fixed-width registers on the FPGA; 16 comfortably covers the paper's 4-6
/// vertex workloads while keeping a partial result at 64 bytes.
pub const MAX_KERNEL_QUERY: usize = 16;

/// Per-depth expansion metadata.
#[derive(Debug, Clone)]
pub struct DepthPlan {
    /// Query vertex matched at this depth.
    pub vertex: QueryVertexId,
    /// Depth of the anchor backward neighbour (expansion source).
    pub anchor_depth: usize,
    /// Depths of the backward neighbours requiring edge validation.
    pub validate_depths: Vec<usize>,
}

/// Full kernel plan.
#[derive(Debug, Clone)]
pub struct KernelPlan {
    depths: Vec<DepthPlan>,
    root: QueryVertexId,
}

/// Errors raised while building a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Query exceeds [`MAX_KERNEL_QUERY`] vertices.
    QueryTooLarge(usize),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::QueryTooLarge(n) => {
                write!(f, "query has {n} vertices; kernel supports {MAX_KERNEL_QUERY}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl KernelPlan {
    /// Builds the plan. The anchor at each depth is the BFS-tree parent when
    /// it precedes the vertex in the order (always true for tree-respecting
    /// orders like the paper's path-based order), otherwise the earliest
    /// backward neighbour.
    pub fn new(
        q: &QueryGraph,
        order: &MatchingOrder,
        tree: &BfsTree,
    ) -> Result<Self, PlanError> {
        let n = q.vertex_count();
        if n > MAX_KERNEL_QUERY {
            return Err(PlanError::QueryTooLarge(n));
        }
        let mut depths = Vec::with_capacity(n);
        for d in 0..n {
            let u = order.vertex_at(d);
            let backward: Vec<usize> = order
                .backward_neighbors(q, u)
                .iter()
                .map(|&b| order.position_of(b))
                .collect();
            let anchor_depth = if d == 0 {
                0
            } else {
                let parent_depth = tree
                    .parent(u)
                    .map(|p| order.position_of(p))
                    .filter(|&pd| pd < d);
                parent_depth.unwrap_or_else(|| {
                    *backward.iter().min().expect("connected order has an anchor")
                })
            };
            let validate_depths = backward
                .into_iter()
                .filter(|&bd| bd != anchor_depth)
                .collect();
            depths.push(DepthPlan {
                vertex: u,
                anchor_depth,
                validate_depths,
            });
        }
        Ok(KernelPlan {
            depths,
            root: order.first(),
        })
    }

    /// Number of depths (query vertices).
    #[inline]
    pub fn len(&self) -> usize {
        self.depths.len()
    }

    /// Whether the plan is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.depths.is_empty()
    }

    /// The plan for depth `d`.
    #[inline]
    pub fn depth(&self, d: usize) -> &DepthPlan {
        &self.depths[d]
    }

    /// The root query vertex (depth 0).
    #[inline]
    pub fn root(&self) -> QueryVertexId {
        self.root
    }

    /// Total edge-validation fan-out per complete expansion — the static
    /// component of the `M/N` ratio that drives Equations (3)/(4).
    pub fn total_validations(&self) -> usize {
        self.depths.iter().map(|d| d.validate_depths.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::{Label, QueryGraph};

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn qv(x: usize) -> QueryVertexId {
        QueryVertexId::from_index(x)
    }

    fn fig1() -> (QueryGraph, BfsTree, MatchingOrder) {
        let q = QueryGraph::new(
            vec![l(0), l(1), l(2), l(3)],
            &[(0, 1), (0, 2), (1, 2), (2, 3)],
        )
        .unwrap();
        let tree = BfsTree::new(&q, qv(0));
        let order = MatchingOrder::new(&q, vec![qv(0), qv(1), qv(2), qv(3)]).unwrap();
        (q, tree, order)
    }

    #[test]
    fn anchors_follow_tree_parents() {
        let (q, tree, order) = fig1();
        let plan = KernelPlan::new(&q, &order, &tree).unwrap();
        // u1's parent is u0 (depth 0); u2's parent u0; u3's parent u2 (depth 2).
        assert_eq!(plan.depth(1).anchor_depth, 0);
        assert_eq!(plan.depth(2).anchor_depth, 0);
        assert_eq!(plan.depth(3).anchor_depth, 2);
        // u2 additionally validates against u1 (the non-tree edge).
        assert_eq!(plan.depth(2).validate_depths, vec![1]);
        assert!(plan.depth(3).validate_depths.is_empty());
        assert_eq!(plan.total_validations(), 1);
    }

    #[test]
    fn non_tree_anchor_when_parent_follows() {
        // Order that visits u2 before u0 is invalid for tree-parent anchoring
        // only if the parent comes later; use order (u0, u2, u3, u1): u1's
        // parent u0 is at depth 0 — anchor 0; validations to u2 (depth 1).
        let (q, tree, _) = fig1();
        let order = MatchingOrder::new(&q, vec![qv(0), qv(2), qv(3), qv(1)]).unwrap();
        let plan = KernelPlan::new(&q, &order, &tree).unwrap();
        assert_eq!(plan.depth(3).anchor_depth, 0);
        assert_eq!(plan.depth(3).validate_depths, vec![1]);
    }

    #[test]
    fn oversized_query_rejected() {
        let n = MAX_KERNEL_QUERY + 1;
        let labels = vec![l(0); n];
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let q = QueryGraph::new(labels, &edges).unwrap();
        let tree = BfsTree::new(&q, qv(0));
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).unwrap();
        assert_eq!(
            KernelPlan::new(&q, &order, &tree).unwrap_err(),
            PlanError::QueryTooLarge(n)
        );
    }
}
