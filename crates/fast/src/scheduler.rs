//! The host-side workload scheduler (paper Algorithm 3, Section V-C).
//!
//! After partitioning, the CPU would otherwise sit idle; FAST-SHARE assigns
//! it a bounded share of the matching work. For each valid CST, the
//! estimated workload `W_CST` is computed and the partition goes to the CPU
//! only while `(W_C + W_CST) < δ · (W_C + W_F + W_CST)` — keeping the CPU's
//! share of total estimated work below `δ` (the paper finds `δ ≈ 0.1` best,
//! with the CPU becoming the bottleneck past ~0.15, Fig. 13).
//!
//! The decision is *stream-order dependent*: assignments depend on the
//! workloads booked so far. The sharded host pipeline therefore consumes
//! shard CSTs strictly in shard order (`cst::pipeline` docs), so the
//! booking sequence — and with it every count in the report — is identical
//! for every thread count.

/// Where a CST partition is processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    Cpu,
    Fpga,
}

/// Algorithm 3 state.
#[derive(Debug, Clone)]
pub struct ShareScheduler {
    delta: f64,
    w_cpu: f64,
    w_fpga: f64,
    cpu_partitions: usize,
    fpga_partitions: usize,
}

impl ShareScheduler {
    /// Creates a scheduler with CPU-share threshold `δ ∈ [0, 1]`.
    pub fn new(delta: f64) -> Self {
        assert!((0.0..=1.0).contains(&delta), "δ must be in [0, 1]");
        ShareScheduler {
            delta,
            w_cpu: 0.0,
            w_fpga: 0.0,
            cpu_partitions: 0,
            fpga_partitions: 0,
        }
    }

    /// Whether a partition of workload `w_cst` would go to the CPU under
    /// Algorithm 3's condition, without booking it. Used by the partition
    /// steal hook, which must not double-book workloads.
    pub fn would_assign_cpu(&self, w_cst: f64) -> bool {
        let total = self.w_cpu + self.w_fpga + w_cst;
        self.delta > 0.0 && self.w_cpu + w_cst < self.delta * total
    }

    /// Books a partition to the CPU unconditionally.
    pub fn book_cpu(&mut self, w_cst: f64) {
        self.w_cpu += w_cst;
        self.cpu_partitions += 1;
    }

    /// Decides where a partition with estimated workload `w_cst` runs and
    /// books the workload (Algorithm 3 lines 2-7).
    pub fn assign(&mut self, w_cst: f64) -> Assignment {
        if self.would_assign_cpu(w_cst) {
            self.book_cpu(w_cst);
            Assignment::Cpu
        } else {
            self.w_fpga += w_cst;
            self.fpga_partitions += 1;
            Assignment::Fpga
        }
    }

    /// Total workload booked to the CPU (`W_C`).
    pub fn cpu_workload(&self) -> f64 {
        self.w_cpu
    }

    /// Total workload booked to the FPGA (`W_F`).
    pub fn fpga_workload(&self) -> f64 {
        self.w_fpga
    }

    /// Partitions assigned to the CPU.
    pub fn cpu_partitions(&self) -> usize {
        self.cpu_partitions
    }

    /// Partitions assigned to the FPGA.
    pub fn fpga_partitions(&self) -> usize {
        self.fpga_partitions
    }

    /// The configured threshold δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Actual CPU fraction of the booked workload.
    pub fn cpu_fraction(&self) -> f64 {
        let total = self.w_cpu + self.w_fpga;
        if total == 0.0 {
            0.0
        } else {
            self.w_cpu / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_zero_sends_everything_to_fpga() {
        let mut s = ShareScheduler::new(0.0);
        for _ in 0..100 {
            assert_eq!(s.assign(10.0), Assignment::Fpga);
        }
        assert_eq!(s.cpu_partitions(), 0);
        assert_eq!(s.fpga_workload(), 1000.0);
    }

    #[test]
    fn cpu_fraction_respects_delta() {
        // Uniform workloads: the CPU share must converge below δ.
        for delta in [0.05, 0.1, 0.2, 0.3] {
            let mut s = ShareScheduler::new(delta);
            for _ in 0..10_000 {
                s.assign(1.0);
            }
            assert!(
                s.cpu_fraction() <= delta + 1e-6,
                "fraction {} exceeds δ {delta}",
                s.cpu_fraction()
            );
            // And it should not be vacuously zero for δ > 0.
            assert!(s.cpu_fraction() > delta / 2.0, "δ={delta}");
        }
    }

    #[test]
    fn skewed_workloads_still_bounded() {
        let mut s = ShareScheduler::new(0.1);
        // Power-law-ish workload stream.
        for i in 1..=2000u64 {
            let w = if i % 97 == 0 { 1000.0 } else { 1.0 };
            s.assign(w);
        }
        assert!(s.cpu_fraction() <= 0.1 + 1e-6);
    }

    #[test]
    fn first_partition_goes_to_fpga_for_small_delta() {
        // (0 + w) < δ(0 + 0 + w) is false for δ < 1, so the FPGA seeds first.
        let mut s = ShareScheduler::new(0.1);
        assert_eq!(s.assign(5.0), Assignment::Fpga);
        // Later small partitions can then flow to the CPU.
        let mut saw_cpu = false;
        for _ in 0..100 {
            if s.assign(1.0) == Assignment::Cpu {
                saw_cpu = true;
            }
        }
        assert!(saw_cpu);
    }

    #[test]
    #[should_panic(expected = "δ must be in")]
    fn invalid_delta_rejected() {
        ShareScheduler::new(1.5);
    }
}
