//! The FAST matching kernel (paper Algorithms 4-8), software-emulated.
//!
//! The kernel decomposes backtracking into pipelineable steps: a
//! **Generator** expands up to `N_o` partial results per round from the
//! deepest buffer level (Algorithm 5), a **Visited Validator** rejects
//! mappings that reuse a data vertex (Algorithm 6), an **Edge Validator**
//! probes the CST for the non-anchor backward edges (Algorithm 7), and a
//! **Synchronizer** routes surviving partials back into the BRAM-only buffer
//! or out as complete embeddings (Algorithm 8).
//!
//! The emulation is *functionally exact* (it produces the same embeddings a
//! real kernel would) and *workload exact*: it counts `N` (partial results
//! generated) and `M` (edge-validation tasks) — the two quantities the
//! paper's cycle equations (1)-(4) consume — plus every CST/buffer memory
//! touch for the BRAM/DRAM accounting of Fig. 7.

use crate::buffer::{Partial, ResultsBuffer};
use crate::plan::KernelPlan;
use cst::Cst;
use fpga_sim::WorkloadCounts;
use graph_core::VertexId;

/// What to do with complete embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectMode {
    /// Count only (the benchmark configuration).
    CountOnly,
    /// Keep up to the given number of embeddings.
    Collect(usize),
}

/// Counters and results of one kernel run over one CST partition.
#[derive(Debug, Clone, Default)]
pub struct KernelOutput {
    /// Embeddings found.
    pub embeddings: u64,
    /// Collected embeddings (query-vertex indexed), if requested.
    pub collected: Vec<Vec<VertexId>>,
    /// `N` and `M` for the cycle model.
    pub counts: WorkloadCounts,
    /// Rounds executed (outer `while P ≠ ∅` iterations, Algorithm 4).
    pub rounds: u64,
    /// CST reads (adjacency fetches + edge probes) — BRAM or DRAM resident
    /// depending on the variant.
    pub cst_reads: u64,
    /// Buffer reads/writes (`P` traffic).
    pub buffer_reads: u64,
    pub buffer_writes: u64,
    /// Expansions rejected by visited validation.
    pub visited_rejections: u64,
    /// Expansions rejected by edge validation.
    pub edge_rejections: u64,
    /// Peak per-level buffer occupancy.
    pub buffer_high_water: Vec<usize>,
}

/// Runs the kernel over one CST partition.
///
/// `no` is the per-round expansion budget `N_o`; the partial-results buffer
/// holds `(|V(q)|-1) × N_o` slots in BRAM and never spills (Section VI-B).
pub fn run_kernel(cst: &Cst, plan: &KernelPlan, no: u32, mode: CollectMode) -> KernelOutput {
    let qlen = plan.len();
    let mut out = KernelOutput::default();
    if qlen == 0 {
        return out;
    }
    let root = plan.root();
    let root_count = cst.candidate_count(root) as u32;
    if qlen == 1 {
        // Degenerate single-vertex query: every root candidate is complete.
        out.embeddings = root_count as u64;
        out.counts.n = root_count as u64;
        if let CollectMode::Collect(cap) = mode {
            for i in 0..root_count.min(cap as u32) {
                out.collected.push(vec![cst.candidate(root, i)]);
            }
        }
        return out;
    }

    let mut buffer = ResultsBuffer::new(qlen, no as usize);
    let mut root_cursor: u32 = 0;

    loop {
        // --- Root injection: when P drains, map the next N_o root
        //     candidates (Algorithm 4 lines 2-3, sliced to respect the
        //     buffer's per-level bound). ---
        if buffer.is_empty() {
            if root_cursor >= root_count {
                break;
            }
            let end = (root_cursor + no).min(root_count);
            for i in root_cursor..end {
                buffer.push(Partial::root(i));
                out.counts.n += 1;
                out.buffer_writes += 1;
            }
            root_cursor = end;
            out.rounds += 1;
            continue;
        }

        // --- One Generator round: expand partials of the deepest level
        //     (they all map the same next query vertex, as required for the
        //     fixed-function candidate fetch). ---
        out.rounds += 1;
        let mut produced: u32 = 0;
        let first = buffer.pop_deepest().expect("buffer non-empty");
        out.buffer_reads += 1;
        let round_level = first.level();
        let depth_plan = plan.depth(round_level);
        let u = depth_plan.vertex;
        let anchor_u = plan.depth(depth_plan.anchor_depth).vertex;

        let mut current = Some(first);
        while let Some(pi) = current.take() {
            debug_assert_eq!(pi.level(), round_level);
            // Candidate list from the anchor's CST adjacency (Alg. 5 line 5).
            let anchor_idx = pi.mapping(depth_plan.anchor_depth);
            let list = cst.neighbors(anchor_u, anchor_idx, u);
            out.cst_reads += 1; // adjacency-list header fetch
            let start = pi.resume_offset as usize;

            let budget_left = (no - produced) as usize;
            let take = (list.len() - start).min(budget_left);
            for &j in &list[start..start + take] {
                produced += 1;
                out.counts.n += 1;
                out.cst_reads += 1; // candidate word fetch
                let v = cst.candidate(u, j);

                // Visited Validator (Algorithm 6): compare v against every
                // mapped vertex of pi in parallel (array partitioning). The
                // hardware evaluates the full comparison tree; no early exit.
                let mut visited_ok = true;
                for d in 0..round_level {
                    let mapped = cst.candidate(plan.depth(d).vertex, pi.mapping(d));
                    if mapped == v {
                        visited_ok = false;
                    }
                }

                // Edge Validator (Algorithm 7): the Generator emits one t_n
                // per non-anchor backward neighbour for *every* p_o
                // (Algorithm 5 lines 10-12) — validators run concurrently
                // with no short-circuiting, so M counts them all.
                let mut edges_ok = true;
                for &bd in &depth_plan.validate_depths {
                    out.counts.m += 1;
                    out.cst_reads += 1; // O(1) partitioned-array probe
                    let bu = plan.depth(bd).vertex;
                    if !cst.has_candidate_edge(bu, pi.mapping(bd), u, j) {
                        edges_ok = false;
                    }
                }

                // Synchronizer (Algorithm 8): discard on any zero bit.
                if !visited_ok {
                    out.visited_rejections += 1;
                    continue;
                }
                if !edges_ok {
                    out.edge_rejections += 1;
                    continue;
                }

                let po = pi.extended(j);
                if po.level() == qlen {
                    out.embeddings += 1;
                    if let CollectMode::Collect(cap) = mode {
                        if out.collected.len() < cap {
                            let mut emb = vec![VertexId::new(0); qlen];
                            for d in 0..qlen {
                                emb[plan.depth(d).vertex.index()] =
                                    cst.candidate(plan.depth(d).vertex, po.mapping(d));
                            }
                            out.collected.push(emb);
                        }
                    }
                    // Complete results stream to DRAM; not buffered.
                } else {
                    buffer.push(po);
                    out.buffer_writes += 1;
                }
            }

            if start + take < list.len() {
                // Round budget exhausted mid-list: remember the offset and
                // resume next round ("the rest candidates will be mapped
                // later", Section VI-B).
                let mut rest = pi;
                rest.resume_offset = (start + take) as u32;
                buffer.push_front(rest);
                break;
            }

            if produced >= no {
                break;
            }
            // Pop the next partial *of the same level*: the Generator is
            // configured for a single u per round, and the deeper partials
            // produced this round wait for the next round.
            match buffer.pop_level(round_level) {
                Some(p) => {
                    out.buffer_reads += 1;
                    current = Some(p);
                }
                None => break,
            }
        }
    }

    out.buffer_high_water = buffer.high_water().to_vec();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst::build_cst;
    use graph_core::generators::random_labelled_graph;
    use graph_core::{BfsTree, Label, MatchingOrder, QueryGraph, QueryVertexId};

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn qv(x: usize) -> QueryVertexId {
        QueryVertexId::from_index(x)
    }

    fn build(
        labels: Vec<Label>,
        edges: &[(usize, usize)],
        n: usize,
        p: f64,
        seed: u64,
    ) -> (QueryGraph, graph_core::Graph, BfsTree, MatchingOrder, Cst) {
        let q = QueryGraph::new(labels, edges).unwrap();
        let g = random_labelled_graph(n, p, 3, seed);
        let tree = BfsTree::new(&q, qv(0));
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).unwrap();
        let cst = build_cst(&q, &g, &tree);
        (q, g, tree, order, cst)
    }

    #[test]
    fn kernel_matches_cst_enumeration() {
        for seed in [1, 2, 3, 4, 5] {
            let (q, _, tree, order, cstx) = build(
                vec![l(0), l(1), l(0), l(1)],
                &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
                45,
                0.2,
                seed,
            );
            let expected = cst::count_embeddings(&cstx, &q, &order);
            let plan = KernelPlan::new(&q, &order, &tree).unwrap();
            for no in [1, 2, 7, 64, 4096] {
                let out = run_kernel(&cstx, &plan, no, CollectMode::CountOnly);
                assert_eq!(out.embeddings, expected, "seed {seed} no {no}");
            }
        }
    }

    #[test]
    fn collected_embeddings_are_valid() {
        let (q, g, tree, order, cstx) = build(
            vec![l(0), l(1), l(1)],
            &[(0, 1), (1, 2), (0, 2)],
            40,
            0.25,
            9,
        );
        let plan = KernelPlan::new(&q, &order, &tree).unwrap();
        let out = run_kernel(&cstx, &plan, 16, CollectMode::Collect(1000));
        assert_eq!(out.collected.len() as u64, out.embeddings.min(1000));
        for emb in &out.collected {
            // Injective and edge-respecting.
            for a in q.vertices() {
                for b in q.vertices() {
                    if a != b {
                        assert_ne!(emb[a.index()], emb[b.index()]);
                    }
                }
            }
            for &(a, b) in q.edges() {
                assert!(g.has_edge(emb[a.index()], emb[b.index()]));
            }
        }
    }

    #[test]
    fn buffer_levels_bounded_by_no() {
        let (_, _, tree, order, cstx) = build(
            vec![l(0), l(1), l(0), l(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
            60,
            0.15,
            11,
        );
        let q = QueryGraph::new(
            vec![l(0), l(1), l(0), l(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        .unwrap();
        let plan = KernelPlan::new(&q, &order, &tree).unwrap();
        for no in [1u32, 3, 8, 64] {
            let out = run_kernel(&cstx, &plan, no, CollectMode::CountOnly);
            for (lvl, &hw) in out.buffer_high_water.iter().enumerate() {
                assert!(
                    hw <= no as usize,
                    "level {} high water {hw} exceeds No {no}",
                    lvl + 1
                );
            }
        }
    }

    #[test]
    fn counts_are_no_invariant() {
        // N and M are properties of the search space, not of the round size.
        let (q, _, tree, order, cstx) = build(
            vec![l(0), l(1), l(0)],
            &[(0, 1), (1, 2), (0, 2)],
            50,
            0.2,
            13,
        );
        let plan = KernelPlan::new(&q, &order, &tree).unwrap();
        let base = run_kernel(&cstx, &plan, 1, CollectMode::CountOnly);
        for no in [2u32, 16, 256] {
            let out = run_kernel(&cstx, &plan, no, CollectMode::CountOnly);
            assert_eq!(out.counts, base.counts, "no={no}");
            assert_eq!(out.embeddings, base.embeddings);
        }
        let _ = q;
    }

    #[test]
    fn smaller_no_means_more_rounds() {
        let (_, _, tree, order, cstx) = build(
            vec![l(0), l(1), l(0)],
            &[(0, 1), (1, 2), (0, 2)],
            50,
            0.25,
            17,
        );
        let q = QueryGraph::new(vec![l(0), l(1), l(0)], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let plan = KernelPlan::new(&q, &order, &tree).unwrap();
        let small = run_kernel(&cstx, &plan, 1, CollectMode::CountOnly);
        let large = run_kernel(&cstx, &plan, 1024, CollectMode::CountOnly);
        assert!(small.rounds >= large.rounds);
    }

    #[test]
    fn empty_cst_returns_zero() {
        let q = QueryGraph::new(vec![l(9), l(1)], &[(0, 1)]).unwrap();
        let g = random_labelled_graph(20, 0.2, 2, 23);
        let tree = BfsTree::new(&q, qv(0));
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).unwrap();
        let cstx = build_cst(&q, &g, &tree);
        let plan = KernelPlan::new(&q, &order, &tree).unwrap();
        let out = run_kernel(&cstx, &plan, 64, CollectMode::CountOnly);
        assert_eq!(out.embeddings, 0);
    }

    #[test]
    fn memory_traffic_reported() {
        let (_, _, tree, order, cstx) = build(
            vec![l(0), l(1), l(0)],
            &[(0, 1), (1, 2), (0, 2)],
            50,
            0.25,
            29,
        );
        let q = QueryGraph::new(vec![l(0), l(1), l(0)], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let plan = KernelPlan::new(&q, &order, &tree).unwrap();
        let out = run_kernel(&cstx, &plan, 64, CollectMode::CountOnly);
        if out.counts.n > 0 {
            assert!(out.cst_reads >= out.counts.n);
            assert!(out.buffer_writes > 0);
        }
    }
}
