//! Cross-validation of the closed-form cycle model against the
//! discrete-event pipeline simulator.
//!
//! The closed forms (Equations 2-4) assume idealised overlap; the DES models
//! the actual token flow through stages and FIFOs, including fan-out
//! throttling and backpressure. This module wires the FAST module graph in
//! the TASK (Fig. 5(b)) and SEP (Fig. 5(c)) configurations and runs a
//! synthetic workload of `N` partial results with a given edge-validation
//! fan-out. Tests assert that the DES agrees with the equations within a
//! small constant factor and preserves the optimisation ordering — the same
//! role the paper's cycle analysis plays against its hardware measurements.

use fpga_sim::des::{PipelineBuilder, Token};

/// DES makespan for the FAST-TASK wiring.
///
/// The single Generator first reads the partial result (`L1`) and expands it
/// (`L2`) — two pipeline slots per `p_o`, hence II = 2 — and then emits the
/// `t_n` stream; Visited Validator, Edge Validator, and Synchronizer run
/// concurrently behind FIFOs.
pub fn simulate_task_cycles(n_po: u64, tn_per_po: u64, fifo_depth: usize) -> u64 {
    let mut b = PipelineBuilder::new();
    let p_in = b.add_fifo(n_po as usize + 1);
    let tv_fifo = b.add_fifo(fifo_depth);
    let tn_fifo = b.add_fifo(fifo_depth.max(tn_per_po as usize + 1));
    let done_fifo = b.add_fifo(fifo_depth);
    let ev_out = b.add_fifo(fifo_depth.max(tn_per_po as usize + 1));

    // Generator: II=2 (buffer read + expansion share one module), emitting
    // one tv and `tn_per_po` tn tokens per partial.
    b.add_stage(
        "generator",
        Some(p_in),
        4,
        2,
        Box::new(move |t: Token| {
            let mut out = vec![(tv_fifo, t)];
            for _ in 0..tn_per_po {
                out.push((tn_fifo, t));
            }
            out
        }),
    );
    b.add_stage(
        "visited-validator",
        Some(tv_fifo),
        2,
        1,
        Box::new(move |t| vec![(done_fifo, t)]),
    );
    b.add_stage(
        "edge-validator",
        Some(tn_fifo),
        3,
        1,
        Box::new(move |t| vec![(ev_out, t)]),
    );
    b.add_stage("synchronizer", Some(done_fifo), 2, 1, Box::new(|_| vec![]));
    b.add_stage("ev-sink", Some(ev_out), 1, 1, Box::new(|_| vec![]));

    let mut p = b.build();
    for i in 0..n_po {
        p.inject(p_in, i);
    }
    p.run(u64::MAX / 2).cycles
}

/// DES makespan for the FAST-SEP wiring: the Generator is split, so the
/// `t_v` path and the `t_n` path each have their own II=1 generator fed
/// from duplicated partial-result streams.
pub fn simulate_sep_cycles(n_po: u64, tn_per_po: u64, fifo_depth: usize) -> u64 {
    let mut b = PipelineBuilder::new();
    let p_in_tv = b.add_fifo(n_po as usize + 1);
    let p_in_tn = b.add_fifo(n_po as usize + 1);
    let tv_fifo = b.add_fifo(fifo_depth);
    let tn_fifo = b.add_fifo(fifo_depth.max(tn_per_po as usize + 1));
    let done_fifo = b.add_fifo(fifo_depth);
    let ev_out = b.add_fifo(fifo_depth.max(tn_per_po as usize + 1));

    b.add_stage(
        "tv-generator",
        Some(p_in_tv),
        4,
        1,
        Box::new(move |t: Token| vec![(tv_fifo, t)]),
    );
    b.add_stage(
        "tn-generator",
        Some(p_in_tn),
        4,
        1,
        Box::new(move |t: Token| (0..tn_per_po).map(|_| (tn_fifo, t)).collect()),
    );
    b.add_stage(
        "visited-validator",
        Some(tv_fifo),
        2,
        1,
        Box::new(move |t| vec![(done_fifo, t)]),
    );
    b.add_stage(
        "edge-validator",
        Some(tn_fifo),
        3,
        1,
        Box::new(move |t| vec![(ev_out, t)]),
    );
    b.add_stage("synchronizer", Some(done_fifo), 2, 1, Box::new(|_| vec![]));
    b.add_stage("ev-sink", Some(ev_out), 1, 1, Box::new(|_| vec![]));

    let mut p = b.build();
    for i in 0..n_po {
        p.inject(p_in_tv, i);
        p.inject(p_in_tn, i);
    }
    p.run(u64::MAX / 2).cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_sim::{CycleModel, StageLatencies, WorkloadCounts};

    fn model() -> CycleModel {
        CycleModel::new(StageLatencies::default(), 1024, 1, 8)
    }

    #[test]
    fn des_agrees_with_task_equation_within_factor() {
        let m = model();
        for (n, k) in [(2000u64, 1u64), (2000, 2), (2000, 3), (500, 4)] {
            let counts = WorkloadCounts { n, m: n * k };
            let analytic = m.task(counts) as f64;
            let des = simulate_task_cycles(n, k, 512) as f64;
            let ratio = des / analytic;
            assert!(
                (0.3..=2.5).contains(&ratio),
                "task DES/analytic = {ratio} at n={n}, k={k}"
            );
        }
    }

    #[test]
    fn des_agrees_with_sep_equation_within_factor() {
        let m = model();
        for (n, k) in [(2000u64, 1u64), (2000, 2), (2000, 3), (500, 4)] {
            let counts = WorkloadCounts { n, m: n * k };
            let analytic = m.sep(counts) as f64;
            let des = simulate_sep_cycles(n, k, 512) as f64;
            let ratio = des / analytic;
            assert!(
                (0.3..=2.5).contains(&ratio),
                "sep DES/analytic = {ratio} at n={n}, k={k}"
            );
        }
    }

    #[test]
    fn des_preserves_sep_faster_than_task() {
        for (n, k) in [(3000u64, 1u64), (3000, 2), (1000, 3)] {
            let task = simulate_task_cycles(n, k, 512);
            let sep = simulate_sep_cycles(n, k, 512);
            assert!(
                sep <= task,
                "sep {sep} should not exceed task {task} at n={n}, k={k}"
            );
        }
    }

    #[test]
    fn shallow_fifos_add_backpressure() {
        // With deep fan-out and tiny FIFOs the tn path throttles everything.
        let deep = simulate_sep_cycles(1000, 4, 1024);
        let shallow = simulate_sep_cycles(1000, 4, 2);
        assert!(shallow >= deep);
    }
}
