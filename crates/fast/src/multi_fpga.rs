//! Multi-FPGA extension (paper Section VII-E).
//!
//! "Each CST structure is an independent and complete search space. Combined
//! with our workload estimation method, the CPU can assign the CST structure
//! to the FPGA with the minimum total workload and collect final results
//! after all the FPGAs complete their tasks."
//!
//! This module implements exactly that: least-loaded assignment of CST
//! partitions across `k` emulated cards, with per-card cycle totals and the
//! resulting makespan/speedup.

use crate::config::FastConfig;
use crate::host::FastError;
use crate::kernel::{run_kernel, CollectMode};
use crate::plan::KernelPlan;
use cst::{build_cst_with_stats, estimate_workload, partition_cst_into, Cst};
use fpga_sim::WorkloadCounts;
use graph_core::{path_based_order, select_root, BfsTree, Graph, QueryGraph};

/// Report of a multi-card run.
#[derive(Debug, Clone)]
pub struct MultiFpgaReport {
    /// Cards used.
    pub cards: usize,
    /// Total embeddings across cards.
    pub embeddings: u64,
    /// Estimated workload booked per card.
    pub per_card_workload: Vec<f64>,
    /// Modelled kernel cycles per card (sum over its partitions).
    pub per_card_cycles: Vec<u64>,
    /// Partitions assigned per card.
    pub per_card_partitions: Vec<usize>,
    /// Makespan: the slowest card's cycles.
    pub makespan_cycles: u64,
    /// Aggregate cycles a single card would need.
    pub single_card_cycles: u64,
}

impl MultiFpgaReport {
    /// Parallel speedup over a single card.
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            1.0
        } else {
            self.single_card_cycles as f64 / self.makespan_cycles as f64
        }
    }

    /// Load imbalance: max/mean booked workload.
    pub fn imbalance(&self) -> f64 {
        let max = self.per_card_workload.iter().cloned().fold(0.0, f64::max);
        let mean: f64 =
            self.per_card_workload.iter().sum::<f64>() / self.per_card_workload.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Runs the workload-aware multi-FPGA assignment over `cards` emulated cards.
pub fn run_multi_fpga(
    q: &QueryGraph,
    g: &Graph,
    config: &FastConfig,
    cards: usize,
) -> Result<MultiFpgaReport, FastError> {
    assert!(cards >= 1, "need at least one card");
    let root = select_root(q, g);
    let tree = BfsTree::new(q, root);
    let order = path_based_order(q, &tree, g);
    let (cst, _) = build_cst_with_stats(q, g, &tree, config.cst_options);
    let plan = KernelPlan::new(q, &order, &tree)?;
    let partition_config = config.partition_config(q.vertex_count(), &cst);
    let model = config.cycle_model();

    let mut per_card_workload = vec![0.0f64; cards];
    let mut per_card_cycles = vec![0u64; cards];
    let mut per_card_partitions = vec![0usize; cards];
    let mut per_card_counts = vec![WorkloadCounts::default(); cards];
    let mut embeddings = 0u64;

    let mut sink = |partition: Cst| {
        let w = estimate_workload(&partition, &tree).total;
        // Least-loaded card by booked workload (ties → lowest index).
        let card = (0..cards)
            .min_by(|&a, &b| per_card_workload[a].total_cmp(&per_card_workload[b]))
            .expect("cards >= 1");
        per_card_workload[card] += w;
        per_card_partitions[card] += 1;
        let out = run_kernel(&partition, &plan, config.spec.no, CollectMode::CountOnly);
        embeddings += out.embeddings;
        per_card_counts[card].n += out.counts.n;
        per_card_counts[card].m += out.counts.m;
        per_card_cycles[card] += config.variant.kernel_cycles(&model, out.counts);
    };
    partition_cst_into(&cst, &order, &partition_config, &mut sink);

    let makespan_cycles = per_card_cycles.iter().copied().max().unwrap_or(0);
    let single_card_cycles = per_card_cycles.iter().sum();

    Ok(MultiFpgaReport {
        cards,
        embeddings,
        per_card_workload,
        per_card_cycles,
        per_card_partitions,
        makespan_cycles,
        single_card_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::Variant;
    use graph_core::generators::random_labelled_graph;
    use graph_core::Label;
    use matching::vf2_count;

    fn setup() -> (QueryGraph, Graph) {
        let l = Label::new;
        let q = QueryGraph::new(
            vec![l(0), l(1), l(0), l(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        .unwrap();
        let g = random_labelled_graph(90, 0.15, 2, 600);
        (q, g)
    }

    #[test]
    fn multi_card_count_matches_vf2() {
        let (q, g) = setup();
        let expected = vf2_count(&q, &g);
        for cards in [1, 2, 4] {
            let config = FastConfig::test_small(Variant::Sep);
            let report = run_multi_fpga(&q, &g, &config, cards).unwrap();
            assert_eq!(report.embeddings, expected, "cards={cards}");
        }
    }

    #[test]
    fn more_cards_do_not_increase_makespan() {
        let (q, g) = setup();
        let config = FastConfig::test_small(Variant::Sep);
        let one = run_multi_fpga(&q, &g, &config, 1).unwrap();
        let four = run_multi_fpga(&q, &g, &config, 4).unwrap();
        assert!(four.makespan_cycles <= one.makespan_cycles);
        assert!(four.speedup() >= 1.0);
        assert_eq!(one.single_card_cycles, one.makespan_cycles);
    }

    #[test]
    fn workload_split_is_reasonably_balanced() {
        let (q, g) = setup();
        let config = FastConfig::test_small(Variant::Sep);
        let report = run_multi_fpga(&q, &g, &config, 2).unwrap();
        // Only meaningful with enough partitions to balance.
        if report.per_card_partitions.iter().sum::<usize>() >= 8 {
            assert!(report.imbalance() < 3.0, "imbalance {}", report.imbalance());
        }
    }
}
