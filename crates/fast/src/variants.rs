//! The five FAST variants of the evaluation (paper Section VII).
//!
//! | variant | design | cycle model |
//! |---------|--------|-------------|
//! | FAST-DRAM | CST + intermediates in DRAM | basic model at DRAM latency |
//! | FAST-BASIC | BRAM-resident, loop pipelining only (Fig. 5(a)) | Eq. (2) |
//! | FAST-TASK | + task parallelism via FIFOs (Fig. 5(b)) | Eq. (3) |
//! | FAST-SEP | + separated `t_v`/`t_n` generators (Fig. 5(c)) | Eq. (4) |
//! | FAST-SHARE | FAST-SEP + CPU work sharing (Alg. 3) | Eq. (4) on the FPGA share |
//!
//! The paper picks FAST-SHARE as the final algorithm, "denoted as FAST".

use fpga_sim::{CycleModel, WorkloadCounts};

/// A FAST variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    Dram,
    Basic,
    Task,
    Sep,
    Share,
}

impl Variant {
    /// The paper's name for the variant.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Dram => "FAST-DRAM",
            Variant::Basic => "FAST-BASIC",
            Variant::Task => "FAST-TASK",
            Variant::Sep => "FAST-SEP",
            Variant::Share => "FAST-SHARE",
        }
    }

    /// All variants in the paper's optimisation order.
    pub const ALL: [Variant; 5] = [
        Variant::Dram,
        Variant::Basic,
        Variant::Task,
        Variant::Sep,
        Variant::Share,
    ];

    /// Whether this variant gives matching work to the CPU (Algorithm 3).
    pub fn shares_with_cpu(&self) -> bool {
        matches!(self, Variant::Share)
    }

    /// Kernel cycles for a measured workload under this variant.
    pub fn kernel_cycles(&self, model: &CycleModel, counts: WorkloadCounts) -> u64 {
        match self {
            Variant::Dram => model.dram(counts),
            Variant::Basic => model.basic(counts),
            Variant::Task => model.task(counts),
            // SHARE runs the SEP kernel on the FPGA side.
            Variant::Sep | Variant::Share => model.sep(counts),
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_sim::StageLatencies;

    fn model() -> CycleModel {
        CycleModel::new(StageLatencies::default(), 1024, 1, 8)
    }

    #[test]
    fn variant_ladder_is_monotone() {
        let m = model();
        let counts = WorkloadCounts { n: 50_000, m: 40_000 };
        let cycles: Vec<u64> = Variant::ALL
            .iter()
            .map(|v| v.kernel_cycles(&m, counts))
            .collect();
        // DRAM ≥ BASIC ≥ TASK ≥ SEP = SHARE.
        assert!(cycles[0] >= cycles[1]);
        assert!(cycles[1] >= cycles[2]);
        assert!(cycles[2] >= cycles[3]);
        assert_eq!(cycles[3], cycles[4]);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Variant::Dram.name(), "FAST-DRAM");
        assert_eq!(Variant::Share.name(), "FAST-SHARE");
        assert!(Variant::Share.shares_with_cpu());
        assert!(!Variant::Sep.shares_with_cpu());
    }
}
