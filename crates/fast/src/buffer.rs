//! The BRAM-only intermediate results buffer `P` (paper Section VI-B).
//!
//! The paper's key memory contribution: partial results never spill to DRAM.
//! `P` reserves `(|V(q)| - 1) × N_o` slots in BRAM and the kernel always
//! expands the partial results with the **largest** mapped-vertex count
//! first ("each round we expand p_n with the maximum n in P"), which bounds
//! the live population of each level `n ∈ [1, |V(q)|-1]` by `N_o` — complete
//! results (`n = |V(q)|`) leave the buffer immediately.
//!
//! This module enforces the invariant with debug assertions and exposes the
//! counters the cycle/memory models need.

use crate::plan::MAX_KERNEL_QUERY;
use std::collections::VecDeque;

/// A partial result: candidate indices (into the CST candidate sets) for the
/// first `level` matching-order depths, in fixed-width storage mirroring the
/// kernel's registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partial {
    mapping: [u32; MAX_KERNEL_QUERY],
    level: u8,
    /// Resume offset into the anchor adjacency list: when a partial's
    /// candidate list is longer than the round budget, the paper maps the
    /// first `N_o` candidates and "the rest candidates will be mapped later".
    pub resume_offset: u32,
}

impl Partial {
    /// A fresh root partial mapping the root to candidate index `i`.
    pub fn root(i: u32) -> Self {
        let mut mapping = [0u32; MAX_KERNEL_QUERY];
        mapping[0] = i;
        Partial {
            mapping,
            level: 1,
            resume_offset: 0,
        }
    }

    /// Number of mapped depths.
    #[inline]
    pub fn level(&self) -> usize {
        self.level as usize
    }

    /// Candidate index chosen at depth `d`.
    #[inline]
    pub fn mapping(&self, d: usize) -> u32 {
        debug_assert!(d < self.level());
        self.mapping[d]
    }

    /// The mapped prefix as a slice.
    #[inline]
    pub fn prefix(&self) -> &[u32] {
        &self.mapping[..self.level()]
    }

    /// Extends this partial by one depth with candidate index `j`.
    #[inline]
    pub fn extended(&self, j: u32) -> Partial {
        debug_assert!(self.level() < MAX_KERNEL_QUERY);
        let mut next = *self;
        next.mapping[next.level as usize] = j;
        next.level += 1;
        next.resume_offset = 0;
        next
    }
}

/// The buffer `P`: one bounded queue per level `1..query_len`.
#[derive(Debug)]
pub struct ResultsBuffer {
    levels: Vec<VecDeque<Partial>>,
    /// `N_o` — per-level bound enforced by the deepest-first policy.
    no: usize,
    /// Peak per-level occupancy observed (index = level-1).
    high_water: Vec<usize>,
    /// Total partials ever pushed.
    total_pushed: u64,
}

impl ResultsBuffer {
    /// Creates the buffer for a query of `query_len` vertices and the given
    /// `N_o`.
    pub fn new(query_len: usize, no: usize) -> Self {
        assert!(query_len >= 1);
        assert!(no >= 1, "N_o must be positive");
        // Levels 1..=query_len-1 hold incomplete partials.
        let level_count = query_len.saturating_sub(1).max(1);
        ResultsBuffer {
            levels: (0..level_count).map(|_| VecDeque::new()).collect(),
            no,
            high_water: vec![0; level_count],
            total_pushed: 0,
        }
    }

    /// Capacity in partial-result slots, `(|V(q)|-1) × N_o`.
    pub fn capacity_slots(&self) -> usize {
        self.levels.len() * self.no
    }

    /// BRAM bytes this buffer occupies (each slot stores the fixed-width
    /// mapping plus level/offset metadata).
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_slots() * std::mem::size_of::<Partial>()
    }

    /// Pushes an incomplete partial (level < query_len).
    ///
    /// The deepest-first expansion policy keeps every level at ≤ `N_o`
    /// occupants; the debug assertion is the paper's no-overflow guarantee.
    pub fn push(&mut self, p: Partial) {
        let idx = p.level() - 1;
        debug_assert!(
            self.levels[idx].len() < self.no,
            "BRAM buffer overflow at level {}: deepest-first policy violated",
            p.level()
        );
        self.levels[idx].push_back(p);
        self.total_pushed += 1;
        self.high_water[idx] = self.high_water[idx].max(self.levels[idx].len());
    }

    /// Pops a partial from the deepest non-empty level.
    pub fn pop_deepest(&mut self) -> Option<Partial> {
        for level in (0..self.levels.len()).rev() {
            if let Some(p) = self.levels[level].pop_front() {
                return Some(p);
            }
        }
        None
    }

    /// Pops a partial from a specific level (1-based), if any.
    ///
    /// Used by the Generator to keep a round on a single query vertex even
    /// while the Synchronizer pushes deeper partials into the buffer.
    pub fn pop_level(&mut self, level: usize) -> Option<Partial> {
        self.levels[level - 1].pop_front()
    }

    /// Pushes a partial back at the *front* of its level (used when a round
    /// budget ends mid-expansion, preserving deepest-first fairness).
    pub fn push_front(&mut self, p: Partial) {
        let idx = p.level() - 1;
        self.levels[idx].push_front(p);
        self.high_water[idx] = self.high_water[idx].max(self.levels[idx].len());
    }

    /// Whether all levels are empty.
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(VecDeque::is_empty)
    }

    /// Live partials across all levels.
    pub fn len(&self) -> usize {
        self.levels.iter().map(VecDeque::len).sum()
    }

    /// Peak occupancy of each level (index = level - 1).
    pub fn high_water(&self) -> &[usize] {
        &self.high_water
    }

    /// Total partials pushed over the run.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// `N_o`.
    pub fn no(&self) -> usize {
        self.no
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_extension() {
        let p = Partial::root(7);
        assert_eq!(p.level(), 1);
        assert_eq!(p.prefix(), &[7]);
        let p2 = p.extended(3);
        assert_eq!(p2.level(), 2);
        assert_eq!(p2.prefix(), &[7, 3]);
        assert_eq!(p2.mapping(0), 7);
        assert_eq!(p2.mapping(1), 3);
        // The original is unchanged (register copy semantics).
        assert_eq!(p.level(), 1);
    }

    #[test]
    fn partial_is_register_sized() {
        // One BRAM slot: 16 × u32 mapping + metadata ≤ 72 bytes.
        assert!(std::mem::size_of::<Partial>() <= 72);
    }

    #[test]
    fn deepest_first_pop() {
        let mut buf = ResultsBuffer::new(4, 8);
        buf.push(Partial::root(0));
        buf.push(Partial::root(1).extended(5));
        buf.push(Partial::root(2));
        let first = buf.pop_deepest().unwrap();
        assert_eq!(first.level(), 2);
        let second = buf.pop_deepest().unwrap();
        assert_eq!(second.level(), 1);
        assert_eq!(second.mapping(0), 0);
    }

    #[test]
    fn capacity_model() {
        let buf = ResultsBuffer::new(6, 1024);
        assert_eq!(buf.capacity_slots(), 5 * 1024);
        assert_eq!(
            buf.capacity_bytes(),
            5 * 1024 * std::mem::size_of::<Partial>()
        );
    }

    #[test]
    fn high_water_tracks_levels() {
        let mut buf = ResultsBuffer::new(3, 4);
        for i in 0..3 {
            buf.push(Partial::root(i));
        }
        buf.pop_deepest();
        assert_eq!(buf.high_water()[0], 3);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.total_pushed(), 3);
    }

    #[test]
    fn push_front_preserves_order() {
        let mut buf = ResultsBuffer::new(3, 4);
        buf.push(Partial::root(1));
        let mut p = Partial::root(0);
        p.resume_offset = 9;
        buf.push_front(p);
        let popped = buf.pop_deepest().unwrap();
        assert_eq!(popped.mapping(0), 0);
        assert_eq!(popped.resume_offset, 9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overflow")]
    fn overflow_asserts_in_debug() {
        let mut buf = ResultsBuffer::new(3, 2);
        buf.push(Partial::root(0));
        buf.push(Partial::root(1));
        buf.push(Partial::root(2));
    }
}
