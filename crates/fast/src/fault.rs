//! Deterministic fault injection: a seeded wrapper backend for chaos
//! testing the serving layer's recovery machinery.
//!
//! A real multi-FPGA deployment of FAST sees transient kernel errors,
//! cards that die mid-stream, kernels that hang past the watchdog, and
//! silently corrupted DMA readback. None of those exist in the emulated
//! backends — so [`FaultInjector`] manufactures them *reproducibly*: it
//! wraps any [`ExecutionBackend`] and, per execution call, draws from a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream keyed on
//! `(plan.seed, call index)`. The schedule is therefore a pure function of
//! the wrapper's own call sequence — independent of thread interleaving,
//! wall time, and what other devices do — which is what lets the chaos
//! property test (`tests/prop_faults.rs`) and the `chaos` figure assert
//! bit-identical results and exact retry accounting under any schedule.
//!
//! Failure modes, in the order they are drawn per call:
//!
//! 1. **Permanent death** at call index [`FaultPlan::permanent_after`]:
//!    every call from then on returns [`BackendError::Permanent`] (the
//!    device fell off the bus — the pool must evict it).
//! 2. **Injected panic** at [`FaultPlan::panic_after`]: the call panics
//!    (a driver bug), exercising the serving layer's poison tolerance.
//! 3. **Transient error** with probability [`FaultPlan::transient_rate`].
//! 4. **Stall** past the watchdog with probability
//!    [`FaultPlan::stall_rate`] (reported, not slept — the emulation has
//!    no real kernel to hang).
//! 5. **Silent corruption** with probability [`FaultPlan::corrupt_rate`]:
//!    the inner backend executes and its embedding count is XORed with a
//!    nonzero per-call random value — an `Ok` output that is *wrong*, the
//!    failure only a cross-check against a second backend can catch.
//! 6. **Slowdown**: the surviving output's `modeled_sec` is multiplied by
//!    [`FaultPlan::slowdown`] (a degraded card the calibrating scheduler
//!    should learn to avoid).

use crate::backend::{BackendError, BackendSpec, ExecutionBackend, ExecutionStep, QueryCtx};
use crate::host::PartitionJob;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A per-device fault schedule. All rates are probabilities in `[0, 1]`
/// drawn independently per execution call from the seeded stream; the
/// default plan injects nothing (a transparent wrapper).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-call SplitMix64 stream. Two injectors with the same
    /// seed and rates inject identical schedules.
    pub seed: u64,
    /// Probability a call fails with [`BackendError::Transient`].
    pub transient_rate: f64,
    /// Probability a call fails with [`BackendError::Stalled`].
    pub stall_rate: f64,
    /// Probability a call's output is silently bit-flipped (wrong `Ok`).
    pub corrupt_rate: f64,
    /// Call index at which the device dies: that call and every later one
    /// return [`BackendError::Permanent`].
    pub permanent_after: Option<u64>,
    /// Call index at which the call panics (an injected driver bug).
    pub panic_after: Option<u64>,
    /// Multiplier on surviving outputs' `modeled_sec` (≥ 1.0 models a
    /// degraded card; 1.0 is neutral).
    pub slowdown: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            transient_rate: 0.0,
            stall_rate: 0.0,
            corrupt_rate: 0.0,
            permanent_after: None,
            panic_after: None,
            slowdown: 1.0,
        }
    }
}

impl FaultPlan {
    /// A plan injecting only transient errors at `rate`.
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            transient_rate: rate,
            ..FaultPlan::default()
        }
    }

    /// A plan killing the device permanently at call `n`.
    pub fn dies_at(seed: u64, n: u64) -> Self {
        FaultPlan {
            seed,
            permanent_after: Some(n),
            ..FaultPlan::default()
        }
    }
}

/// Monotone counters of what an injector actually injected — the ground
/// truth the chaos tests reconcile the serving layer's retry/corruption
/// accounting against.
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Calls that reached the injector.
    pub calls: AtomicU64,
    /// Calls that executed the inner backend and returned `Ok`.
    pub executed: AtomicU64,
    /// Injected [`BackendError::Transient`] failures.
    pub transient: AtomicU64,
    /// Injected [`BackendError::Stalled`] failures.
    pub stalled: AtomicU64,
    /// Injected [`BackendError::Permanent`] failures (one per rejected
    /// call, not one per device).
    pub permanent: AtomicU64,
    /// Outputs silently corrupted before being returned as `Ok`.
    pub corrupted: AtomicU64,
}

impl FaultCounters {
    /// Injected failures that surfaced as an `Err` (everything except
    /// silent corruption): the number of failed execution attempts the
    /// serving layer observed from this device.
    pub fn errors(&self) -> u64 {
        self.transient.load(Ordering::Relaxed)
            + self.stalled.load(Ordering::Relaxed)
            + self.permanent.load(Ordering::Relaxed)
    }
}

/// SplitMix64: the minimal high-quality mixer — dependency-free and stable,
/// so fault schedules reproduce everywhere.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a draw to a uniform probability in `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

struct FaultState {
    /// Execution calls seen so far (the schedule index).
    calls: u64,
    /// Set once `permanent_after` fires; every later call is rejected.
    dead: bool,
}

/// A seeded fault-injecting wrapper around any [`ExecutionBackend`].
///
/// Spec, prior, and pricing delegate to the inner backend, so the pool
/// schedules a faulty device exactly like a healthy one — until it starts
/// failing. Counters ([`FaultInjector::counters`]) are shareable, letting
/// a test keep a handle on the injected ground truth after handing the
/// backend to a service.
pub struct FaultInjector {
    inner: Arc<dyn ExecutionBackend>,
    plan: FaultPlan,
    state: Mutex<FaultState>,
    counters: Arc<FaultCounters>,
}

impl FaultInjector {
    /// Wraps `inner` under `plan`'s schedule.
    pub fn new(inner: Arc<dyn ExecutionBackend>, plan: FaultPlan) -> Self {
        FaultInjector {
            inner,
            plan,
            state: Mutex::new(FaultState {
                calls: 0,
                dead: false,
            }),
            counters: Arc::new(FaultCounters::default()),
        }
    }

    /// The schedule this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// A shared handle on the injected-fault counters.
    pub fn counters(&self) -> Arc<FaultCounters> {
        Arc::clone(&self.counters)
    }

    /// The per-call draw stream: lane `k` of call `i` under this seed.
    fn draw(&self, call: u64, lane: u64) -> u64 {
        splitmix64(
            self.plan
                .seed
                .wrapping_add(call.wrapping_mul(0xA076_1D64_78BD_642F))
                .wrapping_add(lane.wrapping_mul(0xE703_7ED1_A0B4_28DB)),
        )
    }
}

impl ExecutionBackend for FaultInjector {
    fn spec(&self) -> BackendSpec {
        self.inner.spec()
    }

    fn prior_sec_per_workload(&self) -> f64 {
        self.inner.prior_sec_per_workload()
    }

    fn begin(&self, job: &PartitionJob, ctx: &QueryCtx<'_>) -> ExecutionStep {
        // Decide the call's fate under the lock, then drop it before
        // executing (or panicking): the injector's own state must survive
        // an injected panic un-poisoned. Everything fallible — including
        // the injected panic — happens here in `begin`, matching a real
        // device where submission is the step that can blow up.
        let call = {
            let mut s = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let call = s.calls;
            s.calls += 1;
            if !s.dead {
                if let Some(n) = self.plan.permanent_after {
                    if call >= n {
                        s.dead = true;
                    }
                }
            }
            if s.dead {
                self.counters.permanent.fetch_add(1, Ordering::Relaxed);
                self.counters.calls.fetch_add(1, Ordering::Relaxed);
                return ExecutionStep::ready(Err(BackendError::Permanent(format!(
                    "device died at call {}",
                    self.plan.permanent_after.unwrap_or(0)
                ))));
            }
            call
        };
        self.counters.calls.fetch_add(1, Ordering::Relaxed);
        if self.plan.panic_after.is_some_and(|n| call >= n) {
            panic!("injected driver bug at call {call}");
        }
        if unit(self.draw(call, 1)) < self.plan.transient_rate {
            self.counters.transient.fetch_add(1, Ordering::Relaxed);
            return ExecutionStep::ready(Err(BackendError::Transient(format!(
                "injected transient fault at call {call}"
            ))));
        }
        if unit(self.draw(call, 2)) < self.plan.stall_rate {
            self.counters.stalled.fetch_add(1, Ordering::Relaxed);
            return ExecutionStep::ready(Err(BackendError::Stalled { watchdog_sec: 1.0 }));
        }
        let mut out = match self.inner.execute(job, ctx) {
            Ok(out) => out,
            Err(e) => return ExecutionStep::ready(Err(e)),
        };
        if unit(self.draw(call, 3)) < self.plan.corrupt_rate {
            // A nonzero 64-bit XOR mask: the corrupted count can never
            // equal the true count, and two independently corrupted calls
            // collide with probability ~2⁻⁶³ — a cross-checking majority
            // vote cannot be fooled by two matching wrong answers.
            out.embeddings ^= self.draw(call, 4) | 1;
            self.counters.corrupted.fetch_add(1, Ordering::Relaxed);
        }
        out.modeled_sec *= self.plan.slowdown.max(0.0);
        self.counters.executed.fetch_add(1, Ordering::Relaxed);
        ExecutionStep::ready(Ok(out))
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("spec", &self.inner.spec())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendClass, CpuBackend, FpgaBackend};
    use crate::config::FastConfig;
    use crate::kernel::CollectMode;
    use crate::plan::KernelPlan;
    use crate::prepare_partitions;
    use crate::variants::Variant;
    use graph_core::{
        generators::random_labelled_graph, path_based_order, select_root, BfsTree, Label,
        QueryGraph,
    };

    fn triangle() -> QueryGraph {
        QueryGraph::new(
            vec![Label::new(0), Label::new(1), Label::new(1)],
            &[(0, 1), (1, 2), (0, 2)],
        )
        .unwrap()
    }

    /// Streams the test query's partitions through `backend`, recording
    /// each call's result.
    fn drive(backend: &dyn ExecutionBackend, rounds: usize) -> Vec<Result<u64, BackendError>> {
        let q = triangle();
        let g = random_labelled_graph(60, 0.25, 2, 97);
        let config = FastConfig::test_small(Variant::Sep);
        let root = select_root(&q, &g);
        let tree = BfsTree::new(&q, root);
        let order = path_based_order(&q, &tree, &g);
        let kernel_plan = KernelPlan::new(&q, &order, &tree).unwrap();
        let ctx = QueryCtx {
            query: &q,
            graph: &g,
            order: &order,
            kernel_plan: &kernel_plan,
            collect: CollectMode::CountOnly,
        };
        let mut results = Vec::new();
        for _ in 0..rounds {
            prepare_partitions(&q, &g, &config, &tree, &order, &mut |job| {
                results.push(backend.execute(&job, &ctx).map(|o| o.embeddings));
            });
        }
        results
    }

    #[test]
    fn default_plan_is_transparent() {
        let inner = Arc::new(CpuBackend::new(2)) as Arc<dyn ExecutionBackend>;
        let reference = drive(inner.as_ref(), 1);
        let injector = FaultInjector::new(inner, FaultPlan::default());
        let wrapped = drive(&injector, 1);
        assert_eq!(reference, wrapped, "zero rates must inject nothing");
        assert_eq!(injector.counters().errors(), 0);
        assert!(injector.counters().executed.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        let plan = FaultPlan {
            seed: 7,
            transient_rate: 0.3,
            stall_rate: 0.1,
            ..FaultPlan::default()
        };
        let make = || {
            FaultInjector::new(
                Arc::new(CpuBackend::new(2)) as Arc<dyn ExecutionBackend>,
                plan.clone(),
            )
        };
        let (a, b) = (make(), make());
        assert_eq!(drive(&a, 3), drive(&b, 3), "same seed, same schedule");
        let c = FaultInjector::new(
            Arc::new(CpuBackend::new(2)) as Arc<dyn ExecutionBackend>,
            FaultPlan { seed: 8, ..plan },
        );
        assert_ne!(drive(&a, 3), drive(&c, 3), "different seed, different schedule");
    }

    #[test]
    fn permanent_death_rejects_every_later_call() {
        let injector = FaultInjector::new(
            Arc::new(CpuBackend::new(2)) as Arc<dyn ExecutionBackend>,
            FaultPlan::dies_at(1, 2),
        );
        let results = drive(&injector, 2);
        assert!(results.len() > 2, "need calls past the death index");
        for (i, r) in results.iter().enumerate() {
            if i < 2 {
                assert!(r.is_ok(), "call {i} precedes death");
            } else {
                assert!(
                    matches!(r, Err(BackendError::Permanent(_))),
                    "call {i} must be rejected: {r:?}"
                );
            }
        }
        assert_eq!(
            injector.counters().permanent.load(Ordering::Relaxed),
            (results.len() - 2) as u64
        );
    }

    #[test]
    fn corruption_flips_counts_but_stays_ok() {
        let inner = Arc::new(CpuBackend::new(2)) as Arc<dyn ExecutionBackend>;
        let truth = drive(inner.as_ref(), 1);
        let injector = FaultInjector::new(
            inner,
            FaultPlan {
                seed: 3,
                corrupt_rate: 1.0,
                ..FaultPlan::default()
            },
        );
        let corrupted = drive(&injector, 1);
        assert_eq!(truth.len(), corrupted.len());
        for (t, c) in truth.iter().zip(&corrupted) {
            assert!(c.is_ok(), "silent corruption must not error");
            assert_ne!(t, c, "a corrupted count can never equal the truth");
        }
        assert_eq!(
            injector.counters().corrupted.load(Ordering::Relaxed),
            truth.len() as u64
        );
    }

    #[test]
    fn slowdown_scales_modeled_seconds_only() {
        let fast = FastConfig::test_small(Variant::Sep);
        let inner = Arc::new(FpgaBackend::from_config(&fast)) as Arc<dyn ExecutionBackend>;
        let slow = FaultInjector::new(
            Arc::clone(&inner),
            FaultPlan {
                slowdown: 4.0,
                ..FaultPlan::default()
            },
        );
        assert_eq!(slow.spec().class, BackendClass::Fpga);
        assert_eq!(slow.prior_sec_per_workload(), inner.prior_sec_per_workload());
        let q = triangle();
        let g = random_labelled_graph(60, 0.25, 2, 97);
        let config = FastConfig::test_small(Variant::Sep);
        let root = select_root(&q, &g);
        let tree = BfsTree::new(&q, root);
        let order = path_based_order(&q, &tree, &g);
        let kernel_plan = KernelPlan::new(&q, &order, &tree).unwrap();
        let ctx = QueryCtx {
            query: &q,
            graph: &g,
            order: &order,
            kernel_plan: &kernel_plan,
            collect: CollectMode::CountOnly,
        };
        prepare_partitions(&q, &g, &config, &tree, &order, &mut |job| {
            let truth = inner.execute(&job, &ctx).unwrap();
            let slowed = slow.execute(&job, &ctx).unwrap();
            assert_eq!(truth.embeddings, slowed.embeddings);
            assert_eq!(truth.kernel_cycles, slowed.kernel_cycles);
            assert!((slowed.modeled_sec - 4.0 * truth.modeled_sec).abs() < 1e-12);
        });
    }

    #[test]
    fn error_display_names_the_failure_mode() {
        let cases = [
            (
                BackendError::Transient("x".into()).to_string(),
                "transient",
            ),
            (
                BackendError::Permanent("x".into()).to_string(),
                "permanent",
            ),
            (BackendError::Corrupted("x".into()).to_string(), "corrupted"),
            (
                BackendError::Stalled { watchdog_sec: 1.5 }.to_string(),
                "watchdog",
            ),
        ];
        for (msg, needle) in cases {
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
        assert!(BackendError::Permanent("x".into()).is_permanent());
        assert!(!BackendError::Transient("x".into()).is_permanent());
    }
}
