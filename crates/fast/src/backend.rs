//! Execution backends: the partition-execution seam between preparation
//! and devices.
//!
//! [`prepare_partitions`](crate::prepare_partitions) streams
//! [`PartitionJob`]s — self-contained, independently matchable CSTs with
//! their `W_CST` workload estimates — and stops there: *executing* a
//! partition is policy. This module names that policy as a trait so a
//! serving layer can multiplex one partition stream over a heterogeneous
//! fleet:
//!
//! * [`FpgaBackend`] — the emulated kernel path (Section VI): runs
//!   [`run_kernel`] and prices the partition through the variant's cycle
//!   model at the device's clock. This is the exact execution + pricing
//!   path `run_fast` uses (the host driver routes through the same
//!   backend), so a pool of `FpgaBackend`s is bit-identical to the
//!   one-shot flow.
//! * [`CpuBackend`] — the host fallback: the same backtracking search the
//!   FAST-SHARE CPU share runs ([`matching::run_backtrack`] over the
//!   partition CST, intersection extension), priced through the calibrated
//!   [`CpuCostModel`]. A partition CST encodes its embeddings exactly, so
//!   CPU and FPGA execution of the same partition agree bit-for-bit
//!   (`tests/prop_backend.rs`).
//!
//! Both report a **modelled execution time** in seconds — the common
//! currency a shortest-expected-completion scheduler needs to price
//! devices with different cost models against each other (kernel cycles
//! at one clock are incomparable with nanoseconds-per-partial on a Xeon).

use crate::config::FastConfig;
use crate::host::PartitionJob;
use crate::kernel::{run_kernel, CollectMode, KernelOutput};
use crate::plan::KernelPlan;
use crate::variants::Variant;
use cst::Cst;
use fpga_sim::{CycleModel, FpgaSpec, WorkloadCounts};
use graph_core::{Graph, MatchingOrder, QueryGraph, VertexId};
use matching::{run_backtrack, CpuCostModel, EngineStats, ExtensionMethod, RunLimits};
use std::sync::{Arc, OnceLock};

/// Lifetime count of partition executions across every in-process
/// backend, by class — registered once, bumped with one relaxed atomic.
fn exec_counter(class: BackendClass) -> &'static Arc<obs::Counter> {
    static FPGA: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    static CPU: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    match class {
        BackendClass::Fpga => FPGA.get_or_init(|| {
            obs::counter(
                "obs_fpga_partitions_total",
                "Partitions executed on emulated FPGA backends",
            )
        }),
        BackendClass::Cpu => CPU.get_or_init(|| {
            obs::counter(
                "obs_cpu_partitions_total",
                "Partitions executed on CPU backends",
            )
        }),
    }
}

/// Per-session context shared by every partition execution: derived once
/// by the caller (tree/order/kernel plan), borrowed by each
/// [`ExecutionBackend::execute`] call.
pub struct QueryCtx<'a> {
    pub query: &'a QueryGraph,
    pub graph: &'a Graph,
    pub order: &'a MatchingOrder,
    pub kernel_plan: &'a KernelPlan,
    pub collect: CollectMode,
}

/// What kind of device a backend models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendClass {
    /// An emulated FPGA card (kernel + cycle model).
    #[default]
    Fpga,
    /// A host CPU share (backtracking search + CPU cost model).
    Cpu,
}

impl std::fmt::Display for BackendClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendClass::Fpga => write!(f, "fpga"),
            BackendClass::Cpu => write!(f, "cpu"),
        }
    }
}

/// Static description of a backend device, for pool reports and for the
/// serving layer's partition sizing (heterogeneous FPGA fleets must cut
/// partitions that fit the *smallest* card).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendSpec {
    pub class: BackendClass,
    /// BRAM capacity constraining CST partitions; `usize::MAX` for CPU
    /// backends (host memory is not the partitioning constraint).
    pub bram_bytes: usize,
    /// Device clock (FPGA) in MHz; 0 for CPU backends.
    pub clock_mhz: f64,
    /// Worker threads the backend models (1 for FPGA kernels).
    pub threads: usize,
}

/// Why a backend failed to execute a partition. The taxonomy is the
/// recovery policy's vocabulary: a serving layer retries
/// [`Transient`](Self::Transient) / [`Corrupted`](Self::Corrupted) /
/// [`Stalled`](Self::Stalled) failures (ideally on a different device) and
/// evicts the device on [`Permanent`](Self::Permanent) ones.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// A one-off failure (dropped DMA transfer, ECC hiccup): the same
    /// partition may well succeed on retry, even on the same device.
    Transient(String),
    /// The device is gone (bitstream wedged, card off the bus): no future
    /// call on this backend can succeed.
    Permanent(String),
    /// The backend *detected* a corrupted result (checksum mismatch on the
    /// readback path). Silent corruption — a bit-flip the device cannot
    /// see — surfaces as a wrong `Ok` output instead and is only caught by
    /// cross-checking against a second backend.
    Corrupted(String),
    /// The call ran past the watchdog: the kernel is presumed hung and the
    /// partition must be re-executed elsewhere.
    Stalled {
        /// The watchdog budget that expired, in seconds.
        watchdog_sec: f64,
    },
}

impl BackendError {
    /// Whether the device itself is dead (vs the single call having
    /// failed): permanent errors evict, everything else retries.
    pub fn is_permanent(&self) -> bool {
        matches!(self, BackendError::Permanent(_))
    }
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Transient(msg) => write!(f, "transient device error: {msg}"),
            BackendError::Permanent(msg) => write!(f, "permanent device failure: {msg}"),
            BackendError::Corrupted(msg) => write!(f, "corrupted result: {msg}"),
            BackendError::Stalled { watchdog_sec } => {
                write!(f, "kernel stalled past the {watchdog_sec:.3} s watchdog")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// Result of executing one partition on one backend.
#[derive(Debug, Clone, Default)]
pub struct BackendOutput {
    /// Embeddings found in the partition — identical across backends.
    pub embeddings: u64,
    /// Collected embeddings when [`CollectMode::Collect`] asks for them.
    pub collected: Vec<Vec<VertexId>>,
    /// Modelled kernel cycles (FPGA backends; 0 for CPU execution).
    pub kernel_cycles: u64,
    /// Modelled execution seconds under the backend's own cost model —
    /// the scheduler's common currency.
    pub modeled_sec: f64,
}

/// An in-flight partition execution, split at the completion boundary.
///
/// The emulated backends are synchronous — the kernel emulation runs to
/// the end inside [`ExecutionBackend::begin`] — but the *modelled* device
/// time is carried here as [`eta_sec`](Self::eta_sec) instead of a thread
/// sleep, so an event-driven executor can treat it as a scheduled
/// completion: submit, park the session, and resume it when the completion
/// queue delivers this step. A future real-DMA backend would defer work
/// into [`complete`](Self::complete); everything the serving layer does
/// (retry taxonomy, pricing, cross-checking) only depends on the step's
/// resolved result.
#[must_use = "an execution step holds the partition's result; complete() it"]
#[derive(Debug)]
pub struct ExecutionStep {
    result: Result<BackendOutput, BackendError>,
    eta_sec: f64,
}

impl ExecutionStep {
    /// Wraps an already-resolved execution. The modelled ETA is the
    /// output's `modeled_sec` (0 for failures; a stall charges its expired
    /// watchdog budget — that wall time passed before the error surfaced).
    pub fn ready(result: Result<BackendOutput, BackendError>) -> Self {
        let eta_sec = match &result {
            Ok(out) => out.modeled_sec,
            Err(BackendError::Stalled { watchdog_sec }) => *watchdog_sec,
            Err(_) => 0.0,
        };
        ExecutionStep { result, eta_sec }
    }

    /// Modelled seconds until this step's completion would be delivered —
    /// what a completion-driven scheduler charges the device while the
    /// submitting session is parked.
    pub fn eta_sec(&self) -> f64 {
        self.eta_sec
    }

    /// Resolves the step into the partition's result.
    pub fn complete(self) -> Result<BackendOutput, BackendError> {
        self.result
    }
}

/// One device's execution + pricing policy. Implementations must be
/// deterministic in `(job, ctx)`: the serving layer's bit-identity
/// guarantees rest on every backend reporting the same `embeddings` for
/// the same partition.
pub trait ExecutionBackend: Send + Sync {
    /// Static device description.
    fn spec(&self) -> BackendSpec;

    /// A-priori modelled seconds per unit of `W_CST` workload — the
    /// scheduler's price before any completion calibrates the device.
    /// Derived by charging one partial expansion + one edge check through
    /// the backend's own cost model, so heterogeneous devices start from
    /// comparable (if rough) prices.
    fn prior_sec_per_workload(&self) -> f64;

    /// Starts executing `job`'s partition, returning the in-flight
    /// [`ExecutionStep`]. Execution is fallible: a real device sees
    /// transient errors, hangs, and corrupted readback — a
    /// [`BackendError`] names the failure mode so the serving layer can
    /// retry, reroute, or evict. The in-process backends below never fail;
    /// [`crate::fault::FaultInjector`] wraps any backend with a seeded
    /// fault schedule for tests and chaos figures.
    fn begin(&self, job: &PartitionJob, ctx: &QueryCtx<'_>) -> ExecutionStep;

    /// Convenience synchronous path: begin and immediately complete.
    fn execute(
        &self,
        job: &PartitionJob,
        ctx: &QueryCtx<'_>,
    ) -> Result<BackendOutput, BackendError> {
        self.begin(job, ctx).complete()
    }
}

/// The emulated-FPGA backend: [`run_kernel`] plus the variant's cycle
/// model. Extracted from the host driver (`fast::host` routes every
/// offloaded partition through [`FpgaBackend::run`] /
/// [`FpgaBackend::price_cycles`]), so serving pools and `run_fast` share
/// one execution path.
#[derive(Debug, Clone)]
pub struct FpgaBackend {
    spec: FpgaSpec,
    model: CycleModel,
    variant: Variant,
}

impl FpgaBackend {
    /// A backend on `config`'s device spec, variant, and stage latencies.
    pub fn from_config(config: &FastConfig) -> Self {
        FpgaBackend {
            spec: config.spec.clone(),
            model: config.cycle_model(),
            variant: config.variant,
        }
    }

    /// The device spec this backend emulates.
    pub fn fpga_spec(&self) -> &FpgaSpec {
        &self.spec
    }

    /// Runs the emulated kernel on one partition CST, returning the full
    /// kernel detail (the host driver aggregates rounds/memory traffic;
    /// the trait path keeps only the summary).
    pub fn run(&self, cst: &Cst, plan: &KernelPlan, collect: CollectMode) -> KernelOutput {
        run_kernel(cst, plan, self.spec.no, collect)
    }

    /// Prices a kernel run's workload counters through this variant's
    /// cycle model.
    pub fn price_cycles(&self, counts: WorkloadCounts) -> u64 {
        self.variant.kernel_cycles(&self.model, counts)
    }
}

impl ExecutionBackend for FpgaBackend {
    fn spec(&self) -> BackendSpec {
        BackendSpec {
            class: BackendClass::Fpga,
            bram_bytes: self.spec.bram_bytes,
            clock_mhz: self.spec.clock_mhz,
            threads: 1,
        }
    }

    fn prior_sec_per_workload(&self) -> f64 {
        let unit = self.price_cycles(WorkloadCounts { n: 1, m: 1 });
        self.spec.cycles_to_sec(unit)
    }

    fn begin(&self, job: &PartitionJob, ctx: &QueryCtx<'_>) -> ExecutionStep {
        let mut span = obs::span_cat("execute", "exec");
        span.arg_str("backend", "fpga");
        span.arg_u64("partition", job.index as u64);
        let out = self.run(&job.cst, ctx.kernel_plan, ctx.collect);
        let kernel_cycles = self.price_cycles(out.counts);
        span.arg_u64("embeddings", out.embeddings);
        span.arg_u64("cycles", kernel_cycles);
        exec_counter(BackendClass::Fpga).inc();
        ExecutionStep::ready(Ok(BackendOutput {
            embeddings: out.embeddings,
            collected: out.collected,
            kernel_cycles,
            modeled_sec: self.spec.cycles_to_sec(kernel_cycles),
        }))
    }
}

/// The CPU fallback backend: the backtracking search over the partition
/// CST (intersection extension, the method the FAST CPU share models),
/// priced through [`CpuCostModel`] with the contention-aware parallel
/// speedup of `threads` host workers.
#[derive(Debug, Clone)]
pub struct CpuBackend {
    threads: usize,
    cost: CpuCostModel,
}

impl CpuBackend {
    /// A backend modelling `threads` host workers (clamped to ≥ 1) under
    /// the default calibrated cost model.
    pub fn new(threads: usize) -> Self {
        CpuBackend {
            threads: threads.max(1),
            cost: CpuCostModel::default(),
        }
    }

    /// Modelled host workers.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl ExecutionBackend for CpuBackend {
    fn spec(&self) -> BackendSpec {
        BackendSpec {
            class: BackendClass::Cpu,
            bram_bytes: usize::MAX,
            clock_mhz: 0.0,
            threads: self.threads,
        }
    }

    fn prior_sec_per_workload(&self) -> f64 {
        (self.cost.ns_per_partial + self.cost.ns_per_edge_check) * 1e-9
            / self.cost.parallel_speedup(self.threads)
    }

    fn begin(&self, job: &PartitionJob, ctx: &QueryCtx<'_>) -> ExecutionStep {
        let mut span = obs::span_cat("execute", "exec");
        span.arg_str("backend", "cpu");
        span.arg_u64("partition", job.index as u64);
        exec_counter(BackendClass::Cpu).inc();
        ExecutionStep::ready(Ok(match ctx.collect {
            CollectMode::CountOnly => {
                let (_, stats) = run_backtrack(
                    ctx.query,
                    ctx.graph,
                    &job.cst,
                    ctx.order,
                    ExtensionMethod::Intersection,
                    &RunLimits::unlimited(),
                );
                BackendOutput {
                    embeddings: stats.embeddings,
                    collected: Vec::new(),
                    kernel_cycles: 0,
                    modeled_sec: self.cost.parallel_search_time_sec(&stats, self.threads),
                }
            }
            CollectMode::Collect(cap) => {
                // The enumerator reports every embedding (the count must
                // stay exact); collection alone is capped.
                let mut collected = Vec::new();
                let stats = cst::enumerate_embeddings(&job.cst, ctx.query, ctx.order, |emb| {
                    if collected.len() < cap {
                        collected.push(emb.to_vec());
                    }
                    true
                });
                let engine = EngineStats {
                    embeddings: stats.embeddings,
                    partials_generated: stats.partials_generated,
                    edge_verifications: stats.edge_validations,
                    ..EngineStats::default()
                };
                BackendOutput {
                    embeddings: stats.embeddings,
                    collected,
                    kernel_cycles: 0,
                    modeled_sec: self.cost.parallel_search_time_sec(&engine, self.threads),
                }
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare_partitions;
    use graph_core::{generators::random_labelled_graph, path_based_order, select_root, BfsTree, Label, QueryGraph};

    fn triangle() -> QueryGraph {
        QueryGraph::new(
            vec![Label::new(0), Label::new(1), Label::new(1)],
            &[(0, 1), (1, 2), (0, 2)],
        )
        .unwrap()
    }

    /// Streams the query's partitions through `backend`, summing counts.
    fn run_on(backend: &dyn ExecutionBackend, collect: CollectMode) -> (u64, usize, f64) {
        let q = triangle();
        let g = random_labelled_graph(60, 0.25, 2, 97);
        let mut config = FastConfig::test_small(Variant::Sep);
        config.collect = collect;
        let root = select_root(&q, &g);
        let tree = BfsTree::new(&q, root);
        let order = path_based_order(&q, &tree, &g);
        let kernel_plan = KernelPlan::new(&q, &order, &tree).unwrap();
        let ctx = QueryCtx {
            query: &q,
            graph: &g,
            order: &order,
            kernel_plan: &kernel_plan,
            collect: config.collect,
        };
        let (mut embeddings, mut partitions, mut modeled) = (0u64, 0usize, 0.0f64);
        prepare_partitions(&q, &g, &config, &tree, &order, &mut |job| {
            let out = backend.execute(&job, &ctx).expect("fault-free backend");
            embeddings += out.embeddings;
            partitions += 1;
            modeled += out.modeled_sec;
        });
        (embeddings, partitions, modeled)
    }

    #[test]
    fn cpu_and_fpga_backends_agree_per_partition() {
        let config = FastConfig::test_small(Variant::Sep);
        let fpga = FpgaBackend::from_config(&config);
        let cpu = CpuBackend::new(8);
        let (ef, pf, sf) = run_on(&fpga, CollectMode::CountOnly);
        let (ec, pc, sc) = run_on(&cpu, CollectMode::CountOnly);
        assert_eq!(ef, ec, "backends disagree on embeddings");
        assert_eq!(pf, pc, "partition streams must be identical");
        assert!(ef > 0, "degenerate instance");
        assert!(sf > 0.0 && sc > 0.0, "both backends price their work");
    }

    #[test]
    fn collect_mode_caps_collection_not_count() {
        let cpu = CpuBackend::new(2);
        let (counted, _, _) = run_on(&cpu, CollectMode::CountOnly);
        let q = triangle();
        let g = random_labelled_graph(60, 0.25, 2, 97);
        let mut config = FastConfig::test_small(Variant::Sep);
        config.collect = CollectMode::Collect(1);
        let root = select_root(&q, &g);
        let tree = BfsTree::new(&q, root);
        let order = path_based_order(&q, &tree, &g);
        let kernel_plan = KernelPlan::new(&q, &order, &tree).unwrap();
        let ctx = QueryCtx {
            query: &q,
            graph: &g,
            order: &order,
            kernel_plan: &kernel_plan,
            collect: config.collect,
        };
        let mut embeddings = 0u64;
        prepare_partitions(&q, &g, &config, &tree, &order, &mut |job| {
            let out = cpu.execute(&job, &ctx).expect("fault-free backend");
            assert!(out.collected.len() <= 1);
            embeddings += out.embeddings;
        });
        assert_eq!(embeddings, counted, "capping collection must not cap counting");
    }

    #[test]
    fn begin_step_carries_the_modeled_eta() {
        let q = triangle();
        let g = random_labelled_graph(60, 0.25, 2, 97);
        let config = FastConfig::test_small(Variant::Sep);
        let fpga = FpgaBackend::from_config(&config);
        let root = select_root(&q, &g);
        let tree = BfsTree::new(&q, root);
        let order = path_based_order(&q, &tree, &g);
        let kernel_plan = KernelPlan::new(&q, &order, &tree).unwrap();
        let ctx = QueryCtx {
            query: &q,
            graph: &g,
            order: &order,
            kernel_plan: &kernel_plan,
            collect: CollectMode::CountOnly,
        };
        prepare_partitions(&q, &g, &config, &tree, &order, &mut |job| {
            let step = fpga.begin(&job, &ctx);
            let eta = step.eta_sec();
            let out = step.complete().expect("fault-free backend");
            assert_eq!(eta, out.modeled_sec, "ETA is the modelled device time");
            let direct = fpga.execute(&job, &ctx).expect("fault-free backend");
            assert_eq!(direct.embeddings, out.embeddings, "execute == begin+complete");
        });

        // Failure steps: errors are free, a stall charges its watchdog.
        let failed = ExecutionStep::ready(Err(BackendError::Transient("x".into())));
        assert_eq!(failed.eta_sec(), 0.0);
        assert!(failed.complete().is_err());
        let stalled = ExecutionStep::ready(Err(BackendError::Stalled { watchdog_sec: 1.5 }));
        assert_eq!(stalled.eta_sec(), 1.5);
    }

    #[test]
    fn priors_are_positive_and_finite() {
        let fpga = FpgaBackend::from_config(&FastConfig::default());
        let cpu = CpuBackend::new(8);
        for prior in [fpga.prior_sec_per_workload(), cpu.prior_sec_per_workload()] {
            assert!(prior > 0.0 && prior.is_finite(), "{prior}");
        }
        assert_eq!(fpga.spec().class, BackendClass::Fpga);
        assert_eq!(cpu.spec().class, BackendClass::Cpu);
        assert_eq!(cpu.spec().threads, 8);
        assert_eq!(CpuBackend::new(0).threads(), 1, "threads clamp to 1");
    }
}
