//! # fast
//!
//! The paper's primary contribution: **FAST**, a CPU-FPGA co-designed
//! subgraph matching framework (ICDE 2021), with the FPGA side
//! software-emulated (see `fpga-sim` and DESIGN.md §1).
//!
//! ## Quickstart
//!
//! ```
//! use fast::{run_fast, FastConfig};
//! use graph_core::{benchmark_query, generators::{generate_ldbc, LdbcParams}};
//!
//! let g = generate_ldbc(&LdbcParams::with_scale_factor(0.05), 42);
//! let q = benchmark_query(0);
//! let report = run_fast(&q, &g, &FastConfig::default()).unwrap();
//! println!("{} embeddings in {:.3} ms (modelled)",
//!          report.embeddings, report.modeled_total_sec() * 1e3);
//! ```
//!
//! ## Architecture
//!
//! * [`plan`] / [`buffer`] / [`kernel`] — the matching kernel (Algorithms
//!   4-8): Generator, Visited Validator, Edge Validator, Synchronizer over
//!   the BRAM-only partial-results buffer;
//! * [`variants`] — FAST-DRAM/BASIC/TASK/SEP/SHARE and their cycle models;
//! * [`scheduler`] — the CPU-share scheduler (Algorithm 3);
//! * [`host`] — the co-designed driver (Fig. 2);
//! * [`backend`] — the [`ExecutionBackend`] seam: partition execution +
//!   cost-model pricing behind one trait (emulated FPGA or CPU fallback),
//!   the unit a heterogeneous serving pool schedules; execution is
//!   fallible ([`BackendError`]) so a serving layer can retry and reroute;
//! * [`fault`] — [`FaultInjector`]: a deterministic seeded fault-injecting
//!   wrapper backend (transient errors, permanent death, stalls, silent
//!   corruption, slowdowns) for chaos tests and figures;
//! * [`multi_fpga`] — the Section VII-E extension;
//! * [`des_check`] — discrete-event cross-validation of the cycle model.

pub mod backend;
pub mod buffer;
pub mod config;
pub mod des_check;
pub mod fault;
pub mod host;
pub mod kernel;
pub mod multi_fpga;
pub mod plan;
pub mod scheduler;
pub mod variants;

pub use backend::{
    BackendClass, BackendError, BackendOutput, BackendSpec, CpuBackend, ExecutionBackend,
    ExecutionStep, FpgaBackend, QueryCtx,
};
pub use config::FastConfig;
pub use fault::{FaultCounters, FaultInjector, FaultPlan};
pub use cst::{ShardPlan, ShardPlanner};
pub use host::{
    prepare_partitions, run_fast, run_fast_with_order, FastError, FastReport, PartitionJob,
    PartitionSpec, PreparePhase, PreparedCsts,
};
pub use kernel::{run_kernel, CollectMode, KernelOutput};
pub use multi_fpga::{run_multi_fpga, MultiFpgaReport};
pub use plan::{KernelPlan, PlanError, MAX_KERNEL_QUERY};
pub use scheduler::{Assignment, ShareScheduler};
pub use variants::Variant;
