//! Configuration of the co-designed framework.

use crate::kernel::CollectMode;
use crate::variants::Variant;
use cst::{CstOptions, PartitionConfig, ShardPlan, ShardPlanner};
use fpga_sim::{FpgaSpec, StageLatencies};
use std::sync::Arc;

/// Full configuration for a FAST run.
#[derive(Debug, Clone)]
pub struct FastConfig {
    /// Device parameters (Alveo U200 defaults).
    pub spec: FpgaSpec,
    /// Pipeline stage latencies `L1..L6`.
    pub latencies: StageLatencies,
    /// Which variant to run (the paper's final algorithm is FAST-SHARE).
    pub variant: Variant,
    /// CPU workload share `δ` (only used by FAST-SHARE; the paper's best
    /// value is 0.1, Fig. 13).
    pub delta: f64,
    /// CST construction pruning strength.
    pub cst_options: CstOptions,
    /// `Some(k)`: fixed partition factor (Fig. 8 ablation); `None`: greedy.
    pub fixed_k: Option<u32>,
    /// What to do with embeddings.
    pub collect: CollectMode,
    /// Safety cap on partition count.
    pub max_partitions: usize,
    /// Host-side worker threads for the sharded CST pipeline
    /// (`cst::pipeline`). `1` (default) runs the sequential flow of Fig. 2;
    /// `> 1` builds shard CSTs on worker threads and streams them through
    /// the partitioner so offload overlaps construction. Embedding counts
    /// are identical for every value (`tests/prop_pipeline_parallel.rs`).
    pub host_threads: usize,
    /// Shard (batch) count of the pipelined host path; `None` resolves to
    /// `cst::DEFAULT_SHARDS`. Deliberately **not** derived from
    /// `host_threads`, so all downstream artefacts are thread-count
    /// independent. Ignored when `host_threads == 1`. Under
    /// [`ShardPlanner::Auto`] this is the planner's shard-count *cap*.
    pub pipeline_shards: Option<usize>,
    /// Shard-boundary planning policy of the pipelined host path
    /// (`cst::planner`): `Contiguous` (the blind equal-count rule),
    /// `WorkloadBalanced`, `OverlapAware`, or `Auto` (per-query shard-count
    /// selection). Plans never depend on `host_threads`, so every planner
    /// preserves the pipeline's thread-count determinism. Ignored when
    /// `host_threads == 1`.
    pub shard_planner: ShardPlanner,
    /// Optional precomputed shard plan for the pipelined flow. A
    /// [`ShardPlan`] is a pure function of `(q, g, tree, options)`, so a
    /// serving layer that caches plans by [`cst::PlanKey`] hands the hit
    /// back through this field and the run skips the probe/boundary search
    /// entirely (the cache path and the one-shot path share the same
    /// pipeline entry, `cst::for_each_shard_cst_planned`). Must have been
    /// planned for the same query/graph/options; a mismatched plan is
    /// detected and silently replanned. `None` (default) plans fresh.
    pub shard_plan: Option<Arc<ShardPlan>>,
    /// Seed shard builds from the plan's probe (`cst::build_cst_seeded`):
    /// when the planner probed (every planner except `Contiguous`), each
    /// shard starts from the probe's memoised phase-1 candidate space
    /// restricted to its roots instead of re-running the top-down scan —
    /// the probe *becomes* the build's phase 1 rather than extra planning
    /// work. Results are bit-identical either way
    /// (`tests/prop_seeded_build.rs`); disable to measure the cold path
    /// (the `hostscale` figure runs both). Ignored when `host_threads == 1`
    /// (the sequential flow never plans).
    pub seed_from_probe: bool,
    /// Optional tier-2 artifact: the refined shard CSTs *and* partition
    /// decomposition of an earlier identical session
    /// ([`crate::PreparedCsts`], captured via
    /// [`capture_prepared`](Self::capture_prepared)). `prepare_partitions`
    /// replays it directly — partitions stream straight to the sink with
    /// zero build or partition work; `run_fast` reuses its shard CSTs
    /// through the pipeline's provenance-validated path. The caller owns
    /// keying (the serving layer uses `cst::PlanKey` × graph epoch); a
    /// shape-mismatched artifact is ignored and the run builds fresh.
    /// `None` (default) builds.
    pub prepared: Option<Arc<crate::host::PreparedCsts>>,
    /// Capture this build's [`crate::PreparedCsts`] on
    /// `prepare_partitions` (returned on `PreparePhase::prepared`) so a
    /// serving layer can insert it into a tier-2 cache. Off by default:
    /// capture clones shard/partition `Arc`s and keeps payloads alive past
    /// the run.
    pub capture_prepared: bool,
}

impl Default for FastConfig {
    fn default() -> Self {
        FastConfig {
            spec: FpgaSpec::default(),
            latencies: StageLatencies::default(),
            variant: Variant::Share,
            delta: 0.1,
            cst_options: CstOptions::default(),
            fixed_k: None,
            collect: CollectMode::CountOnly,
            max_partitions: 1 << 20,
            host_threads: 1,
            pipeline_shards: None,
            shard_planner: ShardPlanner::Contiguous,
            shard_plan: None,
            seed_from_probe: true,
            prepared: None,
            capture_prepared: false,
        }
    }
}

impl FastConfig {
    /// Default configuration for a specific variant. Non-SHARE variants get
    /// `δ = 0` (no CPU sharing).
    pub fn for_variant(variant: Variant) -> Self {
        FastConfig {
            variant,
            delta: if variant.shares_with_cpu() { 0.1 } else { 0.0 },
            ..Default::default()
        }
    }

    /// A small-device configuration for tests: tiny BRAM so partitioning
    /// actually triggers on test-sized graphs.
    pub fn test_small(variant: Variant) -> Self {
        FastConfig {
            spec: FpgaSpec::test_small(),
            variant,
            delta: if variant.shares_with_cpu() { 0.1 } else { 0.0 },
            ..Default::default()
        }
    }

    /// Derives the CST partition thresholds from the device spec: δ_S is the
    /// BRAM budget left after reserving the `(|V(q)|-1) × N_o` partial-result
    /// buffer; δ_D is `Port_max`.
    ///
    /// δ_S is checked against `Cst::payload_bytes`, which excludes the CSR
    /// offsets scaffold, while BRAM must hold the full footprint. The grant
    /// therefore scales the budget by the CST's measured payload share
    /// (`payload / footprint`) — the greedy split target — and additionally
    /// sets `footprint_budget` to the **raw** budget, so the partitioner's
    /// post-fit check re-splits any partition whose scaffold-inclusive
    /// `Cst::size_bytes` would overflow the physical BRAM. The average-share
    /// δ_S alone is not a per-partition bound (a partition whose adjacency
    /// prunes faster than its candidate sets is scaffold-heavier than the
    /// whole CST); the footprint check closes exactly that gap without the
    /// `budget / |V(q)|` conservatism that would explode partition counts.
    pub fn partition_config(&self, query_len: usize, cst: &cst::Cst) -> PartitionConfig {
        let partial_bytes = std::mem::size_of::<crate::buffer::Partial>();
        let budget = self.spec.cst_bram_budget(query_len, partial_bytes);
        let payload = cst.payload_bytes();
        let footprint = payload + cst.scaffold_bytes();
        let delta_s = if footprint == 0 {
            budget
        } else {
            (budget as u128 * payload as u128 / footprint as u128) as usize
        };
        PartitionConfig {
            delta_s: delta_s.max(1),
            delta_d: self.spec.port_max,
            footprint_budget: Some(budget.max(1)),
            fixed_k: self.fixed_k,
            max_partitions: self.max_partitions,
        }
    }

    /// The sharded-pipeline options induced by this configuration
    /// (`cst::pipeline`) for a query with `query_len` vertices. The device's
    /// raw δ_S BRAM grant rides along as the planner's partition hint, so
    /// the auto planner's ρ estimate sees the same budget the partitioner
    /// will split against.
    pub fn pipeline_options(&self, query_len: usize) -> cst::PipelineOptions {
        let partial_bytes = std::mem::size_of::<crate::buffer::Partial>();
        cst::PipelineOptions {
            threads: self.host_threads.max(1),
            shards: self.pipeline_shards,
            planner: self.shard_planner,
            cst: self.cst_options,
            partition_hint: Some(self.spec.cst_bram_budget(query_len, partial_bytes).max(1)),
            seed_builds: self.seed_from_probe,
        }
    }

    /// The cycle model induced by this configuration.
    pub fn cycle_model(&self) -> fpga_sim::CycleModel {
        fpga_sim::CycleModel::new(
            self.latencies,
            self.spec.no,
            self.spec.bram_read_latency,
            self.spec.dram_read_latency,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_share_with_paper_delta() {
        let c = FastConfig::default();
        assert_eq!(c.variant, Variant::Share);
        assert!((c.delta - 0.1).abs() < 1e-12);
    }

    #[test]
    fn non_share_variants_disable_delta() {
        let c = FastConfig::for_variant(Variant::Basic);
        assert_eq!(c.delta, 0.0);
        let s = FastConfig::for_variant(Variant::Share);
        assert!(s.delta > 0.0);
    }

    #[test]
    fn partition_config_reserves_buffer() {
        use graph_core::{BfsTree, Label, QueryGraph, QueryVertexId};
        let q = QueryGraph::new(vec![Label::new(0), Label::new(1)], &[(0, 1)]).unwrap();
        let g = graph_core::generators::random_labelled_graph(30, 0.2, 2, 5);
        let tree = BfsTree::new(&q, QueryVertexId::new(0));
        let cst = cst::build_cst(&q, &g, &tree);

        let c = FastConfig::default();
        let p6 = c.partition_config(6, &cst);
        let p2 = c.partition_config(2, &cst);
        assert!(p6.delta_s < p2.delta_s, "bigger queries reserve more buffer");
        assert_eq!(p6.delta_d, c.spec.port_max);
        // The grant never exceeds the raw budget (scaffold share is reserved)
        // and never hits zero for a non-degenerate CST.
        let partial = std::mem::size_of::<crate::buffer::Partial>();
        assert!(p2.delta_s <= c.spec.cst_bram_budget(2, partial));
        assert!(p2.delta_s >= 1);
    }

    #[test]
    fn cycle_model_uses_spec() {
        let c = FastConfig::default();
        let m = c.cycle_model();
        assert_eq!(m.no, c.spec.no);
        assert_eq!(m.dram_read_latency, c.spec.dram_read_latency);
    }
}
