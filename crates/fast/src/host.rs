//! The host-side driver: the full CPU-FPGA co-designed flow of Fig. 2.
//!
//! 1. construct the CST (Section V-A, measured on the real CPU);
//! 2. partition it to fit the kernel's BRAM budget (Section V-B);
//! 3. offload partitions over the modelled PCIe link and run the emulated
//!    kernel on each (Section VI), while FAST-SHARE books a bounded share of
//!    partitions to the CPU (Algorithm 3) and steals oversized CSTs to skip
//!    partitioning work;
//! 4. aggregate embeddings and derive elapsed time.
//!
//! Timing model: host-side work (CST construction, partitioning, the CPU
//! matching share) is both *measured* on this machine and *modelled* on the
//! paper's Xeon via [`matching::CpuCostModel`], so that the end-to-end
//! number is hardware-consistent with the modelled 300 MHz kernel (see
//! cost_model docs). The paper overlaps partitioning with kernel execution
//! (partitions stream to the card as they are produced), so the modelled
//! elapsed time is `build + max(partition + cpu_share, transfer + kernel)`.

use crate::config::FastConfig;
use crate::kernel::{run_kernel, CollectMode, KernelOutput};
use crate::plan::{KernelPlan, PlanError};
use crate::scheduler::ShareScheduler;
use crate::variants::Variant;
use cst::{build_cst_with_stats, estimate_workload, partition_cst_with_steal, Cst};
use fpga_sim::WorkloadCounts;
use matching::CpuCostModel;
use graph_core::{path_based_order, select_root, BfsTree, Graph, MatchingOrder, QueryGraph, VertexId};
use std::time::{Duration, Instant};

/// Errors from a FAST run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastError {
    /// The query exceeds the kernel's register budget.
    Plan(PlanError),
}

impl std::fmt::Display for FastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FastError {}

impl From<PlanError> for FastError {
    fn from(e: PlanError) -> Self {
        FastError::Plan(e)
    }
}

/// Complete report of one co-designed run.
#[derive(Debug, Clone)]
pub struct FastReport {
    /// Variant executed.
    pub variant: Variant,
    /// Total embeddings (FPGA + CPU shares).
    pub embeddings: u64,
    /// Collected embeddings if requested (FPGA-side only).
    pub collected: Vec<Vec<VertexId>>,
    /// FPGA-side workload counters (`N`, `M`).
    pub counts: WorkloadCounts,
    /// Number of CST partitions offloaded to the FPGA.
    pub fpga_partitions: usize,
    /// Number of partitions (or stolen oversized CSTs) run on the CPU.
    pub cpu_partitions: usize,
    /// Oversized CSTs the CPU stole before splitting (FAST-SHARE only).
    pub stolen: usize,
    /// Partitions emitted despite violating thresholds (should be 0).
    pub forced: usize,
    /// Estimated workloads booked per side.
    pub workload_cpu: f64,
    pub workload_fpga: f64,
    /// Measured host time: CST construction.
    pub build_time: Duration,
    /// Measured host time: partitioning (including workload estimation).
    pub partition_time: Duration,
    /// Measured host time: CPU-share matching.
    pub cpu_match_time: Duration,
    /// Host times normalised to the paper's Xeon (see `CpuCostModel`).
    pub modeled_build_sec: f64,
    pub modeled_partition_sec: f64,
    pub modeled_cpu_match_sec: f64,
    /// Modelled kernel cycles (all FPGA partitions, this variant's model).
    pub kernel_cycles: u64,
    /// Modelled kernel seconds at the device clock.
    pub kernel_time_sec: f64,
    /// Modelled PCIe transfer seconds (CST offload + result fetch).
    pub transfer_time_sec: f64,
    /// Bytes moved over PCIe.
    pub transfer_bytes: usize,
    /// Kernel execution detail (rounds, memory traffic), aggregated.
    pub rounds: u64,
    pub cst_reads: u64,
    pub buffer_writes: u64,
    /// Total size of all offloaded partitions (S_CST of Fig. 9).
    pub cst_bytes_total: usize,
    /// Wall-clock time of the whole emulated run (host measurement).
    pub wall_time: Duration,
}

impl FastReport {
    /// The modelled end-to-end elapsed time (seconds): host work on the
    /// paper's Xeon plus kernel/transfer time on the modelled card, with
    /// partitioning overlapped against kernel execution as in the design.
    pub fn modeled_total_sec(&self) -> f64 {
        let host_side = self.modeled_partition_sec + self.modeled_cpu_match_sec;
        let kernel_side = self.transfer_time_sec + self.kernel_time_sec;
        self.modeled_build_sec + host_side.max(kernel_side)
    }

    /// Like [`FastReport::modeled_total_sec`] but with host work *measured*
    /// on this machine instead of normalised.
    pub fn measured_total_sec(&self) -> f64 {
        let host_side = self.partition_time.as_secs_f64() + self.cpu_match_time.as_secs_f64();
        let kernel_side = self.transfer_time_sec + self.kernel_time_sec;
        self.build_time.as_secs_f64() + host_side.max(kernel_side)
    }
}

/// Runs the co-designed framework on `(q, g)`.
pub fn run_fast(q: &QueryGraph, g: &Graph, config: &FastConfig) -> Result<FastReport, FastError> {
    let wall_start = Instant::now();

    // --- Host: CST construction (Fig. 2 step 1). ---
    let build_start = Instant::now();
    let root = select_root(q, g);
    let tree = BfsTree::new(q, root);
    let order = path_based_order(q, &tree, g);
    let (cst, build_stats) = build_cst_with_stats(q, g, &tree, config.cst_options);
    let build_time = build_start.elapsed();

    run_fast_with_prepared(
        q,
        g,
        config,
        &tree,
        &order,
        &cst,
        build_stats.adjacency_entries,
        build_time,
        wall_start,
    )
}

/// Runs FAST with an explicit matching order (Fig. 15's order-sensitivity
/// experiment injects CFL/DAF/CECI/random orders here).
pub fn run_fast_with_order(
    q: &QueryGraph,
    g: &Graph,
    config: &FastConfig,
    order: &MatchingOrder,
) -> Result<FastReport, FastError> {
    let wall_start = Instant::now();
    let build_start = Instant::now();
    // The BFS tree must be rooted at the order's first vertex so that the
    // CST parent structure is compatible with the order.
    let tree = BfsTree::new(q, order.first());
    let (cst, build_stats) = build_cst_with_stats(q, g, &tree, config.cst_options);
    let build_time = build_start.elapsed();
    run_fast_with_prepared(
        q,
        g,
        config,
        &tree,
        order,
        &cst,
        build_stats.adjacency_entries,
        build_time,
        wall_start,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_fast_with_prepared(
    q: &QueryGraph,
    _g: &Graph,
    config: &FastConfig,
    tree: &BfsTree,
    order: &MatchingOrder,
    cst: &Cst,
    build_entries: usize,
    build_time: Duration,
    wall_start: Instant,
) -> Result<FastReport, FastError> {
    let cpu_cost = CpuCostModel::default();
    let plan = KernelPlan::new(q, order, tree)?;
    let partition_config = config.partition_config(q.vertex_count(), cst);
    let model = config.cycle_model();
    let delta = if config.variant.shares_with_cpu() {
        config.delta
    } else {
        0.0
    };
    let mut scheduler = ShareScheduler::new(delta);

    // Partitions booked to the CPU are cached and processed after the
    // partition phase (Section V-C: "CST is temporarily cached and will be
    // processed when all partition procedure finishes").
    let mut cpu_queue: Vec<Cst> = Vec::new();
    let mut fpga_outputs: Vec<KernelOutput> = Vec::new();
    let mut transfer_bytes = 0usize;
    let mut cst_bytes_total = 0usize;
    let mut stolen = 0usize;
    let mut stolen_entries = 0usize;

    // --- Host: partition + schedule (Fig. 2 steps 2/3/5). The kernel is
    //     invoked inline per partition; its *time* is modelled, not
    //     measured, so inline execution is equivalent to streaming. ---
    let partition_start = Instant::now();
    let mut kernel_wall = Duration::ZERO;
    let stats = {
        // Both hooks mutate the same scheduling state; the partitioner takes
        // them as two independent `&mut dyn FnMut`, so share via RefCell.
        struct Shared<'s> {
            scheduler: &'s mut ShareScheduler,
            cpu_queue: &'s mut Vec<Cst>,
            fpga_outputs: &'s mut Vec<KernelOutput>,
            transfer_bytes: &'s mut usize,
            cst_bytes_total: &'s mut usize,
            stolen_entries: &'s mut usize,
            kernel_wall: &'s mut Duration,
        }
        let shared = std::cell::RefCell::new(Shared {
            scheduler: &mut scheduler,
            cpu_queue: &mut cpu_queue,
            fpga_outputs: &mut fpga_outputs,
            transfer_bytes: &mut transfer_bytes,
            cst_bytes_total: &mut cst_bytes_total,
            stolen_entries: &mut stolen_entries,
            kernel_wall: &mut kernel_wall,
        });
        let mut steal = |oversized: &Cst| -> bool {
            if !config.variant.shares_with_cpu() {
                return false;
            }
            let mut s = shared.borrow_mut();
            let w = estimate_workload(oversized, tree).total;
            if s.scheduler.would_assign_cpu(w) {
                s.scheduler.book_cpu(w);
                *s.stolen_entries += oversized.total_adjacency_entries();
                s.cpu_queue.push(oversized.clone());
                true
            } else {
                false
            }
        };
        let mut sink = |partition: Cst| {
            let mut s = shared.borrow_mut();
            let w = estimate_workload(&partition, tree).total;
            match s.scheduler.assign(w) {
                crate::scheduler::Assignment::Cpu => s.cpu_queue.push(partition),
                crate::scheduler::Assignment::Fpga => {
                    let bytes = partition.size_bytes();
                    *s.transfer_bytes += bytes;
                    *s.cst_bytes_total += bytes;
                    let t0 = Instant::now();
                    let out = run_kernel(&partition, &plan, config.spec.no, config.collect);
                    *s.kernel_wall += t0.elapsed();
                    s.fpga_outputs.push(out);
                }
            }
        };
        partition_cst_with_steal(cst, order, &partition_config, &mut steal, &mut sink)
    };
    stolen += stats.stolen;
    // Partition time excludes the inline (emulated) kernel execution.
    let partition_time = partition_start.elapsed().saturating_sub(kernel_wall);

    // --- Host: CPU share matching (Fig. 2 step 5). ---
    let cpu_match_start = Instant::now();
    let mut cpu_embeddings = 0u64;
    let mut cpu_share_ns = 0.0f64;
    for partition in &cpu_queue {
        let stats = cst::enumerate_embeddings(partition, q, order, |_| true);
        cpu_embeddings += stats.embeddings;
        cpu_share_ns += stats.partials_generated as f64 * cpu_cost.ns_per_partial
            + stats.edge_validations as f64 * cpu_cost.ns_per_edge_check;
    }
    let cpu_match_time = cpu_match_start.elapsed();
    // The host's matching share runs on all cores (the paper's 8-core Xeon
    // is idle once partitioning finishes); apply the parallel model.
    let host_threads = 8.0 * cpu_cost.parallel_efficiency;
    let modeled_cpu_match_sec = cpu_share_ns * 1e-9 / host_threads;

    // --- Aggregate kernel outputs and model device time. ---
    let mut counts = WorkloadCounts::default();
    let mut embeddings = cpu_embeddings;
    let mut collected = Vec::new();
    let mut rounds = 0u64;
    let mut cst_reads = 0u64;
    let mut buffer_writes = 0u64;
    let mut kernel_cycles = 0u64;
    for out in &fpga_outputs {
        counts.n += out.counts.n;
        counts.m += out.counts.m;
        embeddings += out.embeddings;
        rounds += out.rounds;
        cst_reads += out.cst_reads;
        buffer_writes += out.buffer_writes;
        kernel_cycles += config.variant.kernel_cycles(&model, out.counts);
        if let CollectMode::Collect(cap) = config.collect {
            for e in &out.collected {
                if collected.len() < cap {
                    collected.push(e.clone());
                }
            }
        }
    }
    let kernel_time_sec = config.spec.cycles_to_sec(kernel_cycles);

    // PCIe: one transfer per FPGA partition plus the result fetch.
    let result_bytes = (embeddings as usize).saturating_mul(q.vertex_count() * 4);
    let transfer_time_sec = fpga_outputs
        .iter()
        .map(|_| config.spec.pcie.latency_sec)
        .sum::<f64>()
        + config.spec.pcie.transfer_time_sec(transfer_bytes)
        + config.spec.pcie.transfer_time_sec(result_bytes.min(transfer_bytes.max(1 << 20)));

    // Modelled host times: construction touches every index entry once;
    // partitioning touches every emitted partition's entries (rebuild) plus
    // roughly the same again across recursion levels.
    let modeled_build_sec = cpu_cost.index_time_sec(build_entries);
    // Stolen CSTs were consumed before splitting — that is exactly the
    // partition cost FAST-SHARE saves (Section VII-B).
    let cpu_entries: usize = cpu_queue.iter().map(Cst::total_adjacency_entries).sum();
    let partition_entries =
        cst_bytes_total / 4 + cpu_entries.saturating_sub(stolen_entries);
    let modeled_partition_sec = cpu_cost.partition_time_sec(2 * partition_entries);

    Ok(FastReport {
        variant: config.variant,
        embeddings,
        collected,
        counts,
        fpga_partitions: fpga_outputs.len(),
        cpu_partitions: cpu_queue.len(),
        stolen,
        forced: stats.forced,
        workload_cpu: scheduler.cpu_workload(),
        workload_fpga: scheduler.fpga_workload(),
        build_time,
        partition_time,
        cpu_match_time,
        modeled_build_sec,
        modeled_partition_sec,
        modeled_cpu_match_sec,
        kernel_cycles,
        kernel_time_sec,
        transfer_time_sec,
        transfer_bytes,
        rounds,
        cst_reads,
        buffer_writes,
        cst_bytes_total,
        wall_time: wall_start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::generators::random_labelled_graph;
    use graph_core::Label;
    use matching::vf2_count;

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn queries() -> Vec<QueryGraph> {
        vec![
            QueryGraph::new(vec![l(0), l(1), l(2)], &[(0, 1), (1, 2)]).unwrap(),
            QueryGraph::new(vec![l(0), l(1), l(1)], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
            QueryGraph::new(
                vec![l(0), l(1), l(0), l(1)],
                &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn all_variants_agree_with_vf2() {
        for (qi, q) in queries().into_iter().enumerate() {
            let g = random_labelled_graph(45, 0.2, 3, 400 + qi as u64);
            let expected = vf2_count(&q, &g);
            for variant in Variant::ALL {
                let config = FastConfig::test_small(variant);
                let report = run_fast(&q, &g, &config).unwrap();
                assert_eq!(
                    report.embeddings, expected,
                    "{variant} disagrees with VF2 on q{qi}"
                );
            }
        }
    }

    #[test]
    fn variant_ladder_orders_modeled_kernel_time() {
        let q = queries().remove(2);
        let g = random_labelled_graph(60, 0.2, 2, 500);
        let mut cycles = Vec::new();
        for variant in [Variant::Dram, Variant::Basic, Variant::Task, Variant::Sep] {
            let config = FastConfig::for_variant(variant);
            let report = run_fast(&q, &g, &config).unwrap();
            cycles.push((variant, report.kernel_cycles));
        }
        for w in cycles.windows(2) {
            assert!(
                w[0].1 >= w[1].1,
                "{} ({}) should not be faster than {} ({})",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }

    #[test]
    fn share_variant_books_cpu_work() {
        let q = queries().remove(1);
        let g = random_labelled_graph(80, 0.25, 2, 501);
        let mut config = FastConfig::test_small(Variant::Share);
        config.delta = 0.25;
        let report = run_fast(&q, &g, &config).unwrap();
        // With a tiny BRAM there are many partitions; some must land on the
        // CPU under a generous delta.
        if report.fpga_partitions + report.cpu_partitions > 4 {
            assert!(report.cpu_partitions > 0, "CPU got no work: {report:?}");
            assert!(report.workload_cpu > 0.0);
        }
        assert_eq!(report.forced, 0);
    }

    #[test]
    fn collect_mode_returns_valid_embeddings() {
        let q = queries().remove(1);
        let g = random_labelled_graph(40, 0.25, 2, 502);
        let mut config = FastConfig::for_variant(Variant::Sep);
        config.collect = CollectMode::Collect(10);
        let report = run_fast(&q, &g, &config).unwrap();
        assert!(report.collected.len() <= 10);
        for emb in &report.collected {
            for &(a, b) in q.edges() {
                assert!(g.has_edge(emb[a.index()], emb[b.index()]));
            }
        }
    }

    #[test]
    fn modeled_and_measured_totals_include_their_build() {
        let q = queries().remove(0);
        let g = random_labelled_graph(50, 0.2, 3, 503);
        let report = run_fast(&q, &g, &FastConfig::default()).unwrap();
        // Modelled total uses the *modelled* (paper-Xeon) host times.
        assert!(report.modeled_total_sec() >= report.modeled_build_sec);
        assert!(report.measured_total_sec() >= report.build_time.as_secs_f64());
        assert!(report.kernel_time_sec >= 0.0);
        assert!(report.transfer_time_sec > 0.0);
        assert!(report.modeled_build_sec > 0.0);
    }

    #[test]
    fn order_injection_matches_default() {
        let q = queries().remove(2);
        let g = random_labelled_graph(50, 0.2, 2, 504);
        let default = run_fast(&q, &g, &FastConfig::default()).unwrap();
        let root = select_root(&q, &g);
        let tree = BfsTree::new(&q, root);
        let order = graph_core::ceci_style_order(&q, &tree);
        let injected =
            run_fast_with_order(&q, &g, &FastConfig::default(), &order).unwrap();
        assert_eq!(default.embeddings, injected.embeddings);
    }
}
