//! The host-side driver: the full CPU-FPGA co-designed flow of Fig. 2.
//!
//! 1. construct the CST (Section V-A, measured on the real CPU) — either
//!    sequentially or on the sharded multi-threaded pipeline
//!    (`cst::pipeline`, enabled by [`FastConfig::host_threads`] > 1);
//! 2. partition it to fit the kernel's BRAM budget (Section V-B);
//! 3. offload partitions over the modelled PCIe link and run the emulated
//!    kernel on each (Section VI), while FAST-SHARE books a bounded share of
//!    partitions to the CPU (Algorithm 3) and steals oversized CSTs to skip
//!    partitioning work;
//! 4. aggregate embeddings and derive elapsed time.
//!
//! # Timing model
//!
//! Host-side work (CST construction, partitioning, the CPU matching share)
//! is both *measured* on this machine and *modelled* on the paper's Xeon via
//! [`matching::CpuCostModel`], so that the end-to-end number is
//! hardware-consistent with the modelled 300 MHz kernel (see cost_model
//! docs). The paper overlaps partitioning with kernel execution (partitions
//! stream to the card as they are produced); the sharded pipeline
//! additionally overlaps *construction* with both. The generalised elapsed
//! model with `T` host threads and `S` shards is
//!
//! ```text
//! build_par = build / (T · e)          # e = parallel efficiency; T=1 ⇒ build
//! fill      = build_par / S            # first shard ready; nothing overlaps it
//! host      = fill + max(build_par − fill, partition) + cpu_share
//! device    = fill + transfer + kernel
//! elapsed   = max(host, device)
//! ```
//!
//! With `T = S = 1` this degenerates exactly to the paper's
//! `build + max(partition + cpu_share, transfer + kernel)`. The `fill` term
//! is the pipeline's startup latency: the device cannot receive its first
//! partition before the first shard CST exists, and the host's partition
//! stream runs concurrently with the remaining `build_par − fill` of
//! construction. Derivation and calibration live in EXPERIMENTS.md.

use crate::backend::FpgaBackend;
use crate::config::FastConfig;
use crate::kernel::{CollectMode, KernelOutput};
use crate::plan::{KernelPlan, PlanError};
use crate::scheduler::ShareScheduler;
use crate::variants::Variant;
use cst::{
    build_cst_with_stats, estimate_workload, for_each_shard_cst_cached, partition_cst_into,
    partition_cst_with_steal, CachedShards, Cst, PartitionConfig, ShardPlan, ShardPlanner,
};
use fpga_sim::WorkloadCounts;
use graph_core::{path_based_order, select_root, BfsTree, Graph, MatchingOrder, QueryGraph, VertexId};
use matching::CpuCostModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors from a FAST run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastError {
    /// The query exceeds the kernel's register budget.
    Plan(PlanError),
}

impl std::fmt::Display for FastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FastError {}

impl From<PlanError> for FastError {
    fn from(e: PlanError) -> Self {
        FastError::Plan(e)
    }
}

/// Complete report of one co-designed run.
#[derive(Debug, Clone)]
pub struct FastReport {
    /// Variant executed.
    pub variant: Variant,
    /// Total embeddings (FPGA + CPU shares).
    pub embeddings: u64,
    /// Collected embeddings if requested (FPGA-side only).
    pub collected: Vec<Vec<VertexId>>,
    /// FPGA-side workload counters (`N`, `M`).
    pub counts: WorkloadCounts,
    /// Number of CST partitions offloaded to the FPGA.
    pub fpga_partitions: usize,
    /// Number of partitions (or stolen oversized CSTs) run on the CPU.
    pub cpu_partitions: usize,
    /// Oversized CSTs the CPU stole before splitting (FAST-SHARE only).
    pub stolen: usize,
    /// Partitions emitted despite violating thresholds (should be 0).
    pub forced: usize,
    /// Estimated workloads booked per side.
    pub workload_cpu: f64,
    pub workload_fpga: f64,
    /// Host threads used by the CST pipeline (1 = sequential flow).
    pub host_threads: usize,
    /// Shards the root candidate set was split into (1 = unsharded). Under
    /// [`ShardPlanner::Auto`] this is the planner's per-query choice.
    pub pipeline_shards: usize,
    /// Shard-boundary planner of the pipelined flow (`Contiguous` for the
    /// sequential flow).
    pub shard_planner: ShardPlanner,
    /// The executed plan's estimated interior-candidate duplication over
    /// the probed 1-hop frontiers (1.0 for contiguous/sequential plans).
    pub planned_duplication: f64,
    /// Measured wall time of shard planning (root probe + boundary
    /// search); zero for the contiguous planner.
    pub plan_time: Duration,
    /// Planning work normalised to the paper's Xeon (probe entries at the
    /// streaming `ns_per_partition_entry` rate). Reported alongside — not
    /// inside — the overlapped prepare model, the same treatment as
    /// matching-order selection and `KernelPlan` construction (planning is
    /// one scan of the root adjacency, orders of magnitude below build).
    /// When every shard build was seeded from the probe, this work is
    /// *absorbed* — see [`FastReport::modeled_plan_overhead_sec`].
    pub modeled_plan_sec: f64,
    /// Shards built from the probe's memoised candidate space
    /// (`cst::build_cst_seeded`); 0 when builds ran cold (contiguous
    /// planner, seeding disabled, or the sequential flow). Either 0 or
    /// equal to [`pipeline_shards`](Self::pipeline_shards).
    pub seeded_shards: usize,
    /// Shards replayed from a tier-2 artifact ([`FastConfig::prepared`])
    /// instead of built — 0 or [`pipeline_shards`](Self::pipeline_shards):
    /// an artifact is trusted whole (provenance + full coverage) or not at
    /// all. Cached shards do no top-down, refinement, or materialisation
    /// work, so they contribute nothing to the build walls or
    /// [`build_topdown_entries`](Self::build_topdown_entries).
    pub cached_shards: usize,
    /// Phase-1 top-down scan work across shard builds (neighbour visits,
    /// each a filter evaluation — the same unit as the probe's
    /// `probe_entries`). 0 when every shard was seeded: the probe's single
    /// pass replaced the per-shard scans. Deterministic (a pure function of
    /// the inputs), unlike the measured walls — the `hostscale` figure's
    /// seeded-vs-cold assertion compares this.
    pub build_topdown_entries: usize,
    /// Measured wall time deriving per-shard seeds from the probe (the
    /// integer mask sweep); zero for cold builds.
    pub seed_time: Duration,
    /// Measured wall time of the CST build phase (first shard started →
    /// last shard finished; equals the full build for the sequential flow).
    pub build_time: Duration,
    /// Total CPU time spent building shard CSTs. Exceeds
    /// [`build_time`](Self::build_time) when threads overlap; exceeds the
    /// sequential build when sharding duplicates interior candidates.
    pub build_cpu_time: Duration,
    /// Measured host time: partitioning (including workload estimation).
    pub partition_time: Duration,
    /// Measured host time: CPU-share matching.
    pub cpu_match_time: Duration,
    /// Measured wall time of the whole host preparation (build overlapped
    /// with partition/offload), excluding the inline emulated kernel.
    pub host_prepare_wall: Duration,
    /// Measured wall time until the first partition was offloaded (the
    /// device's idle prefix; falls back to the build wall when every
    /// partition landed on the CPU).
    pub first_offload_wall: Duration,
    /// Host times normalised to the paper's Xeon (see `CpuCostModel`).
    /// `modeled_build_sec` is the *total* construction work (all shards).
    pub modeled_build_sec: f64,
    /// Construction work divided over the pipeline's effective threads.
    pub modeled_build_parallel_sec: f64,
    /// Modelled pipeline fill latency (first shard CST ready).
    pub modeled_fill_sec: f64,
    pub modeled_partition_sec: f64,
    pub modeled_cpu_match_sec: f64,
    /// Modelled kernel cycles (all FPGA partitions, this variant's model).
    pub kernel_cycles: u64,
    /// Modelled kernel seconds at the device clock.
    pub kernel_time_sec: f64,
    /// Modelled PCIe transfer seconds (CST offload + result fetch).
    pub transfer_time_sec: f64,
    /// Bytes moved over PCIe.
    pub transfer_bytes: usize,
    /// Kernel execution detail (rounds, memory traffic), aggregated.
    pub rounds: u64,
    pub cst_reads: u64,
    pub buffer_writes: u64,
    /// Total size of all offloaded partitions (S_CST of Fig. 9).
    pub cst_bytes_total: usize,
    /// Wall-clock time of the whole emulated run (host measurement).
    pub wall_time: Duration,
}

impl FastReport {
    /// Modelled planning seconds **not** absorbed by seeded shard builds.
    /// When every shard started from the probe's candidate space, the probe
    /// *was* the builds' top-down pass — charging it on top of the build
    /// (whose calibrated per-entry rate includes the top-down share) would
    /// double-count, so the overhead is 0. With cold builds the probe is
    /// pure extra work and the full [`modeled_plan_sec`](Self::modeled_plan_sec)
    /// is charged. DESIGN.md §7 derives this split.
    pub fn modeled_plan_overhead_sec(&self) -> f64 {
        if self.pipeline_shards > 0 && self.seeded_shards == self.pipeline_shards {
            0.0
        } else {
            self.modeled_plan_sec
        }
    }

    /// The modelled end-to-end elapsed time (seconds) under the overlapped
    /// regime (module docs): host work on the paper's Xeon plus
    /// kernel/transfer time on the modelled card. For the sequential flow
    /// this is exactly the paper's
    /// `build + max(partition + cpu_share, transfer + kernel)`.
    pub fn modeled_total_sec(&self) -> f64 {
        let host = self.modeled_fill_sec
            + (self.modeled_build_parallel_sec - self.modeled_fill_sec)
                .max(self.modeled_partition_sec)
            + self.modeled_cpu_match_sec;
        let device = self.modeled_fill_sec + self.transfer_time_sec + self.kernel_time_sec;
        host.max(device)
    }

    /// Like [`FastReport::modeled_total_sec`] but with host work *measured*
    /// on this machine instead of normalised: the measured overlapped
    /// preparation wall plus the CPU share, against the device side gated
    /// by the measured time-to-first-offload.
    pub fn measured_total_sec(&self) -> f64 {
        let host = self.host_prepare_wall.as_secs_f64() + self.cpu_match_time.as_secs_f64();
        let device =
            self.first_offload_wall.as_secs_f64() + self.transfer_time_sec + self.kernel_time_sec;
        host.max(device)
    }
}

/// Runs the co-designed framework on `(q, g)`.
pub fn run_fast(q: &QueryGraph, g: &Graph, config: &FastConfig) -> Result<FastReport, FastError> {
    let root = select_root(q, g);
    let tree = BfsTree::new(q, root);
    let order = path_based_order(q, &tree, g);
    run_fast_with_tree(q, g, config, &tree, &order)
}

/// Runs FAST with an explicit matching order (Fig. 15's order-sensitivity
/// experiment injects CFL/DAF/CECI/random orders here).
pub fn run_fast_with_order(
    q: &QueryGraph,
    g: &Graph,
    config: &FastConfig,
    order: &MatchingOrder,
) -> Result<FastReport, FastError> {
    // The BFS tree must be rooted at the order's first vertex so that the
    // CST parent structure is compatible with the order.
    let tree = BfsTree::new(q, order.first());
    run_fast_with_tree(q, g, config, &tree, order)
}

fn run_fast_with_tree(
    q: &QueryGraph,
    g: &Graph,
    config: &FastConfig,
    tree: &BfsTree,
    order: &MatchingOrder,
) -> Result<FastReport, FastError> {
    if config.host_threads > 1 {
        run_fast_pipelined(q, g, config, tree, order)
    } else {
        let wall_start = Instant::now();
        let build_start = Instant::now();
        let (cst, build_stats) = build_cst_with_stats(q, g, tree, config.cst_options);
        let build_time = build_start.elapsed();
        run_fast_with_prepared(
            q,
            config,
            tree,
            order,
            &cst,
            &build_stats,
            build_time,
            wall_start,
        )
    }
}

/// Shared partition/offload/schedule state (Fig. 2 steps 2/3/5). Both the
/// sequential flow (one whole CST) and the pipelined flow (one call per
/// shard CST, in shard order) drive partitions through
/// [`OffloadState::partition_and_offload`]; the kernel is invoked inline
/// per partition — its *time* is modelled, not measured, so inline
/// execution is equivalent to streaming.
struct OffloadState<'a> {
    config: &'a FastConfig,
    /// The FPGA execution backend: the emulated kernel plus this variant's
    /// cycle pricing. Serving pools run the same backend (`fast::backend`),
    /// so the one-shot and served paths cannot drift.
    backend: FpgaBackend,
    plan: &'a KernelPlan,
    tree: &'a BfsTree,
    prepare_start: Instant,
    scheduler: ShareScheduler,
    cpu_queue: Vec<Cst>,
    fpga_outputs: Vec<KernelOutput>,
    transfer_bytes: usize,
    cst_bytes_total: usize,
    stolen: usize,
    stolen_entries: usize,
    forced: usize,
    /// Inline (emulated) kernel execution time, excluded from host times.
    kernel_wall: Duration,
    /// Wall timestamp of the first FPGA offload.
    first_offload: Option<Duration>,
}

impl<'a> OffloadState<'a> {
    fn new(config: &'a FastConfig, plan: &'a KernelPlan, tree: &'a BfsTree) -> Self {
        let delta = if config.variant.shares_with_cpu() {
            config.delta
        } else {
            0.0
        };
        OffloadState {
            config,
            backend: FpgaBackend::from_config(config),
            plan,
            tree,
            prepare_start: Instant::now(),
            scheduler: ShareScheduler::new(delta),
            cpu_queue: Vec::new(),
            fpga_outputs: Vec::new(),
            transfer_bytes: 0,
            cst_bytes_total: 0,
            stolen: 0,
            stolen_entries: 0,
            forced: 0,
            kernel_wall: Duration::ZERO,
            first_offload: None,
        }
    }

    /// Partitions one CST, booking each partition to a side (Algorithm 3)
    /// and running the kernel inline on FPGA-bound ones. Partitions booked
    /// to the CPU are cached and processed after the partition phase
    /// (Section V-C: "CST is temporarily cached and will be processed when
    /// all partition procedure finishes").
    fn partition_and_offload(
        &mut self,
        cst: &Cst,
        order: &MatchingOrder,
        partition_config: &PartitionConfig,
    ) {
        // Both hooks mutate the same scheduling state; the partitioner takes
        // them as two independent `&mut dyn FnMut`, so share via RefCell.
        let shared = std::cell::RefCell::new(&mut *self);
        let mut steal = |oversized: &Cst| -> bool {
            let mut s = shared.borrow_mut();
            if !s.config.variant.shares_with_cpu() {
                return false;
            }
            let w = estimate_workload(oversized, s.tree).total;
            if s.scheduler.would_assign_cpu(w) {
                s.scheduler.book_cpu(w);
                s.stolen_entries += oversized.total_adjacency_entries();
                s.cpu_queue.push(oversized.clone());
                true
            } else {
                false
            }
        };
        let mut sink = |partition: Cst| {
            let mut s = shared.borrow_mut();
            let s = &mut **s;
            let w = estimate_workload(&partition, s.tree).total;
            match s.scheduler.assign(w) {
                crate::scheduler::Assignment::Cpu => s.cpu_queue.push(partition),
                crate::scheduler::Assignment::Fpga => {
                    let bytes = partition.size_bytes();
                    s.transfer_bytes += bytes;
                    s.cst_bytes_total += bytes;
                    if s.first_offload.is_none() {
                        s.first_offload =
                            Some(s.prepare_start.elapsed().saturating_sub(s.kernel_wall));
                    }
                    let t0 = Instant::now();
                    let out = s.backend.run(&partition, s.plan, s.config.collect);
                    s.kernel_wall += t0.elapsed();
                    s.fpga_outputs.push(out);
                }
            }
        };
        let stats = partition_cst_with_steal(cst, order, partition_config, &mut steal, &mut sink);
        self.stolen += stats.stolen;
        self.forced += stats.forced;
    }
}

/// Runs the sequential (unsharded) flow on a pre-built CST.
#[allow(clippy::too_many_arguments)]
fn run_fast_with_prepared(
    q: &QueryGraph,
    config: &FastConfig,
    tree: &BfsTree,
    order: &MatchingOrder,
    cst: &Cst,
    build_stats: &cst::BuildStats,
    build_time: Duration,
    wall_start: Instant,
) -> Result<FastReport, FastError> {
    let cpu_cost = CpuCostModel::default();
    let plan = KernelPlan::new(q, order, tree)?;
    let partition_config = config.partition_config(q.vertex_count(), cst);

    let partition_start = Instant::now();
    let mut state = OffloadState::new(config, &plan, tree);
    state.partition_and_offload(cst, order, &partition_config);
    // Partition time excludes the inline (emulated) kernel execution.
    let partition_time = partition_start.elapsed().saturating_sub(state.kernel_wall);

    // Modelled host times: construction touches every index entry once.
    let modeled_build_sec = cpu_cost.index_time_sec(build_stats.adjacency_entries);
    finish_report(
        q,
        config,
        order,
        state,
        &cpu_cost,
        HostTimes {
            host_threads: 1,
            pipeline_shards: 1,
            shard_planner: ShardPlanner::Contiguous,
            planned_duplication: 1.0,
            plan_time: Duration::ZERO,
            modeled_plan_sec: 0.0,
            seeded_shards: 0,
            cached_shards: 0,
            build_topdown_entries: build_stats.topdown_entries,
            seed_time: Duration::ZERO,
            build_time,
            build_cpu_time: build_time,
            partition_time,
            host_prepare_wall: build_time + partition_time,
            first_offload_wall: build_time,
            modeled_build_sec,
            modeled_build_parallel_sec: modeled_build_sec,
            modeled_fill_sec: modeled_build_sec,
        },
        wall_start,
    )
}

/// Runs the sharded, overlapped flow: shard CSTs built on worker threads
/// stream through the partitioner (in shard order — deterministic for any
/// thread count) while later shards are still being built.
fn run_fast_pipelined(
    q: &QueryGraph,
    g: &Graph,
    config: &FastConfig,
    tree: &BfsTree,
    order: &MatchingOrder,
) -> Result<FastReport, FastError> {
    let wall_start = Instant::now();
    let cpu_cost = CpuCostModel::default();
    let plan = KernelPlan::new(q, order, tree)?;
    let pipe_opts = config.pipeline_options(q.vertex_count());

    let mut state = OffloadState::new(config, &plan, tree);
    let mut partition_cpu = Duration::ZERO;
    let prepare_start = state.prepare_start;
    // Split the borrow: the closure must not capture `state` whole.
    let state_ref = &mut state;
    let cached_plan = config.shard_plan.as_deref();
    // A tier-2 artifact replays its shard CSTs through the pipeline's
    // provenance-validated reuse path; partitioning re-runs under this
    // run's device spec (the one-shot flow owns no partition cache).
    let cached_shards = config.prepared.as_ref().map(|p| p.shard_handles());
    let pipe_stats = for_each_shard_cst_cached(
        q,
        g,
        tree,
        &pipe_opts,
        cached_plan,
        cached_shards.as_ref(),
        |shard| {
            if shard.cst.any_empty() {
                return;
            }
            let t0 = Instant::now();
            let kernel_before = state_ref.kernel_wall;
            // Thresholds derive from each shard's own payload share — the
            // only CST-dependent input — so they too are thread-count
            // independent.
            let partition_config = config.partition_config(q.vertex_count(), &shard.cst);
            state_ref.partition_and_offload(&shard.cst, order, &partition_config);
            partition_cpu += t0.elapsed().saturating_sub(state_ref.kernel_wall - kernel_before);
        },
    );
    let host_prepare_wall = prepare_start.elapsed().saturating_sub(state.kernel_wall);
    let first_offload_wall = state.first_offload.unwrap_or(pipe_stats.build_wall);

    // Modelled build: the pipeline's *total* work (sharding duplicates
    // interior candidates, honestly charged), divided over the
    // contention-adjusted effective threads for the elapsed model.
    let modeled_build_sec = cpu_cost.index_time_sec(pipe_stats.total_adjacency_entries());
    let effective = cpu_cost.parallel_speedup(pipe_stats.threads);
    let modeled_build_parallel_sec = modeled_build_sec / effective;
    let modeled_fill_sec = modeled_build_parallel_sec / pipe_stats.shards.max(1) as f64;
    let modeled_plan_sec = cpu_cost.partition_time_sec(pipe_stats.plan.probe_entries);

    finish_report(
        q,
        config,
        order,
        state,
        &cpu_cost,
        HostTimes {
            host_threads: pipe_stats.threads,
            pipeline_shards: pipe_stats.shards,
            shard_planner: pipe_stats.plan.planner,
            planned_duplication: pipe_stats.plan.estimated_duplication,
            plan_time: pipe_stats.plan_time,
            modeled_plan_sec,
            seeded_shards: pipe_stats.seeded_shards,
            cached_shards: pipe_stats.cached_shards,
            build_topdown_entries: pipe_stats.topdown_entries,
            seed_time: pipe_stats.seed_time,
            build_time: pipe_stats.build_wall,
            build_cpu_time: pipe_stats.build_cpu,
            partition_time: partition_cpu,
            host_prepare_wall,
            first_offload_wall,
            modeled_build_sec,
            modeled_build_parallel_sec,
            modeled_fill_sec,
        },
        wall_start,
    )
}

/// One partition of a session's deterministic partition stream, with its
/// workload estimate — the unit a serving layer dispatches to a device.
#[derive(Debug)]
pub struct PartitionJob {
    /// Position in the partition sequence (shard order, then emission order
    /// within each shard). Identical for every thread count.
    pub index: usize,
    /// The partition: a self-contained, independently matchable CST.
    /// Shared, not owned, so a tier-2 result cache can hand the same
    /// decomposition to every warm session without copying payloads.
    pub cst: Arc<Cst>,
    /// Estimated embeddings (`W_CST`, Section V-C) — the dispatch cost
    /// model a shortest-expected-completion scheduler books per device.
    pub workload: f64,
}

/// One cached partition: the CST plus its (pure-function) workload
/// estimate, so a replay skips the estimation DP too.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// The partition CST.
    pub cst: Arc<Cst>,
    /// Its `W_CST` workload estimate (what the dispatcher books).
    pub workload: f64,
}

/// Everything [`prepare_partitions`] produces that is a pure function of
/// `(q, g, tree, options)`: the refined shard CSTs *and* their partition
/// decomposition. Captured on a build ([`FastConfig::capture_prepared`])
/// and replayed on a later call ([`FastConfig::prepared`]) so a warm
/// session does **no** build or partition work — partitions go straight to
/// dispatch. This is the value of a serving layer's tier-2 result cache,
/// keyed by the same `(cst::PlanKey, graph epoch)` fingerprint as the plan
/// cache; [`payload_bytes`](Self::payload_bytes) is its eviction weight.
#[derive(Debug, Clone)]
pub struct PreparedCsts {
    /// Provenance of the shard plan the artifact was built under
    /// ([`ShardPlan::provenance`]); validates shard-CST reuse on the
    /// pipeline path ([`cst::for_each_shard_cst_cached`]).
    pub provenance: u64,
    /// Query vertex count the artifact was prepared for — the cheap shape
    /// check of the replay path (content trust is the cache key's job).
    pub query_vertices: usize,
    /// The refined shard CSTs, in shard order (empty shards included).
    pub shard_csts: Vec<Arc<Cst>>,
    /// The partition decomposition, in emission order, with workloads.
    pub partitions: Vec<PartitionSpec>,
    /// Shards the plan decomposed the root set into.
    pub pipeline_shards: usize,
}

impl PreparedCsts {
    /// Resident payload bytes of the artifact (candidate sets + adjacency
    /// targets, `Cst::payload_bytes`): shard CSTs plus the partition
    /// copies. The byte-budgeted cache's eviction weight.
    pub fn payload_bytes(&self) -> usize {
        self.shard_csts
            .iter()
            .map(|c| c.payload_bytes())
            .chain(self.partitions.iter().map(|p| p.cst.payload_bytes()))
            .sum()
    }

    /// Whether the artifact's shape matches `q` — the replay path's sanity
    /// check. Replaying trusts the *caller's* keying (PlanKey × epoch) for
    /// content; revalidating content would mean rebuilding, which is
    /// exactly what the artifact exists to skip.
    pub fn matches_query(&self, q: &QueryGraph) -> bool {
        self.query_vertices == q.vertex_count()
            && self
                .shard_csts
                .iter()
                .chain(self.partitions.iter().map(|p| &p.cst))
                .all(|c| c.query_vertex_count() == q.vertex_count())
    }

    /// The shard CSTs as a pipeline replay artifact — the
    /// provenance-*validated* reuse path ([`cst::for_each_shard_cst_cached`])
    /// the one-shot flow takes, where builds are skipped but partitioning
    /// re-runs under the current device spec.
    pub fn shard_handles(&self) -> CachedShards {
        CachedShards {
            provenance: self.provenance,
            shards: self.shard_csts.clone(),
        }
    }
}

/// Summary of the decoupled prepare phase (build + partition, no kernel).
#[derive(Debug, Clone)]
pub struct PreparePhase {
    /// The shard plan the pipeline executed (cached or freshly probed).
    pub shard_plan: ShardPlan,
    /// Wall time of shard planning; ~0 when a cached plan was supplied.
    pub plan_time: Duration,
    /// Wall time deriving per-shard seeds from the plan's probe; 0 for
    /// cold builds.
    pub seed_time: Duration,
    /// Shards built from the probe's memoised candidate space — a cached
    /// plan carries its probe, so a warm-cache session skips the global
    /// top-down scan entirely (0 or [`pipeline_shards`](Self::pipeline_shards)).
    pub seeded_shards: usize,
    /// Phase-1 top-down scan work across shard builds; 0 when every shard
    /// was seeded.
    pub build_topdown_entries: usize,
    /// Shards the root candidate set was split into.
    pub pipeline_shards: usize,
    /// Worker threads the build used.
    pub host_threads: usize,
    /// Wall time of the build phase (first shard started → last finished).
    pub build_wall: Duration,
    /// Total CPU time across shard builds.
    pub build_cpu: Duration,
    /// Wall time spent partitioning shards — **including** time spent
    /// inside the caller's sink (callers running kernels in the sink should
    /// keep their own split).
    pub partition_time: Duration,
    /// Adjacency entries materialised across shard builds.
    pub build_entries: usize,
    /// Partitions handed to the sink.
    pub partitions: usize,
    /// Partitions emitted despite violating thresholds (should be 0).
    pub forced: usize,
    /// Whether the phase replayed a tier-2 artifact ([`FastConfig::prepared`])
    /// instead of building: every timing and work field above is zero and
    /// the partitions went straight to the sink.
    pub cached_csts: bool,
    /// The artifact captured from this build when
    /// [`FastConfig::capture_prepared`] was set — what a serving layer
    /// inserts into its tier-2 cache. `None` on replays (the artifact
    /// already exists) and when capture was off.
    pub prepared: Option<Arc<PreparedCsts>>,
}

/// The prepare phase of Fig. 2 decoupled from execution: builds the CST on
/// the (optionally sharded, pipelined) host path and streams every
/// partition into `sink` with its workload estimate, running **no** kernel
/// and booking **no** CPU share — execution policy belongs to the caller.
/// This is the per-session entry point of the serving layer (`serve`):
/// the caller derives the tree/order once (reusing them for its cache key),
/// and a cached [`ShardPlan`] in [`FastConfig::shard_plan`] skips the
/// probe/boundary search exactly as in [`run_fast`]. The partition
/// sequence is deterministic for every `host_threads` value.
pub fn prepare_partitions(
    q: &QueryGraph,
    g: &Graph,
    config: &FastConfig,
    tree: &BfsTree,
    order: &MatchingOrder,
    sink: &mut dyn FnMut(PartitionJob),
) -> PreparePhase {
    // Tier-2 replay: the artifact *is* the prepare phase's output — stream
    // its partitions straight to the sink. No build, no partitioning, no
    // workload DP; every timing field is exactly zero (not merely small),
    // which is what the warm-path harness asserts. The timer deliberately
    // excludes sink time: kernel execution inside the sink belongs to the
    // caller's execution split, and this loop does no preparation work.
    if let Some(prepared) = config.prepared.as_ref().filter(|p| p.matches_query(q)) {
        for (index, part) in prepared.partitions.iter().enumerate() {
            sink(PartitionJob {
                index,
                cst: Arc::clone(&part.cst),
                workload: part.workload,
            });
        }
        return PreparePhase {
            // Degenerate stand-in: replays never publish their plan (the
            // plan cache was populated by the build that made the artifact).
            shard_plan: ShardPlan::contiguous(0, prepared.pipeline_shards.max(1)),
            plan_time: Duration::ZERO,
            seed_time: Duration::ZERO,
            seeded_shards: 0,
            build_topdown_entries: 0,
            pipeline_shards: prepared.pipeline_shards,
            host_threads: 1,
            build_wall: Duration::ZERO,
            build_cpu: Duration::ZERO,
            partition_time: Duration::ZERO,
            build_entries: 0,
            partitions: prepared.partitions.len(),
            forced: 0,
            cached_csts: true,
            prepared: None,
        };
    }

    let pipe_opts = config.pipeline_options(q.vertex_count());
    let mut partition_time = Duration::ZERO;
    let mut index = 0usize;
    let mut forced = 0usize;
    // Capture state for the tier-2 artifact: every shard CST (empty ones
    // included, so the list length matches the plan's shard count for the
    // pipeline replay path) and every emitted partition with its workload.
    let capture = config.capture_prepared;
    let mut shard_csts: Vec<Arc<Cst>> = Vec::new();
    let mut partitions: Vec<PartitionSpec> = Vec::new();
    let pipe_stats = for_each_shard_cst_cached(
        q,
        g,
        tree,
        &pipe_opts,
        config.shard_plan.as_deref(),
        None,
        |shard| {
            if capture {
                shard_csts.push(Arc::clone(&shard.cst));
            }
            if shard.cst.any_empty() {
                return;
            }
            let t0 = Instant::now();
            let partition_config = config.partition_config(q.vertex_count(), &shard.cst);
            let mut emit = |partition: Cst| {
                let workload = estimate_workload(&partition, tree).total;
                let cst = Arc::new(partition);
                if capture {
                    partitions.push(PartitionSpec {
                        cst: Arc::clone(&cst),
                        workload,
                    });
                }
                sink(PartitionJob {
                    index,
                    cst,
                    workload,
                });
                index += 1;
            };
            let stats = partition_cst_into(&shard.cst, order, &partition_config, &mut emit);
            forced += stats.forced;
            partition_time += t0.elapsed();
        },
    );
    let prepared = capture.then(|| {
        Arc::new(PreparedCsts {
            provenance: pipe_stats.plan.provenance,
            query_vertices: q.vertex_count(),
            shard_csts,
            partitions,
            pipeline_shards: pipe_stats.shards,
        })
    });
    PreparePhase {
        build_entries: pipe_stats.total_adjacency_entries(),
        pipeline_shards: pipe_stats.shards,
        host_threads: pipe_stats.threads,
        build_wall: pipe_stats.build_wall,
        build_cpu: pipe_stats.build_cpu,
        plan_time: pipe_stats.plan_time,
        seed_time: pipe_stats.seed_time,
        seeded_shards: pipe_stats.seeded_shards,
        build_topdown_entries: pipe_stats.topdown_entries,
        shard_plan: pipe_stats.plan,
        partition_time,
        partitions: index,
        forced,
        cached_csts: false,
        prepared,
    }
}

/// Host-side timing summary handed to the report assembler.
struct HostTimes {
    host_threads: usize,
    pipeline_shards: usize,
    shard_planner: ShardPlanner,
    planned_duplication: f64,
    plan_time: Duration,
    modeled_plan_sec: f64,
    seeded_shards: usize,
    cached_shards: usize,
    build_topdown_entries: usize,
    seed_time: Duration,
    build_time: Duration,
    build_cpu_time: Duration,
    partition_time: Duration,
    host_prepare_wall: Duration,
    first_offload_wall: Duration,
    modeled_build_sec: f64,
    modeled_build_parallel_sec: f64,
    modeled_fill_sec: f64,
}

/// Runs the CPU share, aggregates kernel outputs, and assembles the report.
fn finish_report(
    q: &QueryGraph,
    config: &FastConfig,
    order: &MatchingOrder,
    state: OffloadState<'_>,
    cpu_cost: &CpuCostModel,
    times: HostTimes,
    wall_start: Instant,
) -> Result<FastReport, FastError> {
    let OffloadState {
        backend,
        scheduler,
        cpu_queue,
        fpga_outputs,
        transfer_bytes,
        cst_bytes_total,
        stolen,
        stolen_entries,
        forced,
        ..
    } = state;

    // --- Host: CPU share matching (Fig. 2 step 5). ---
    let cpu_match_start = Instant::now();
    let mut cpu_embeddings = 0u64;
    let mut cpu_share_ns = 0.0f64;
    for partition in &cpu_queue {
        let stats = cst::enumerate_embeddings(partition, q, order, |_| true);
        cpu_embeddings += stats.embeddings;
        cpu_share_ns += stats.partials_generated as f64 * cpu_cost.ns_per_partial
            + stats.edge_validations as f64 * cpu_cost.ns_per_edge_check;
    }
    let cpu_match_time = cpu_match_start.elapsed();
    // The host's matching share runs on all cores (the paper's 8-core Xeon
    // is idle once partitioning finishes); apply the contention-aware
    // parallel model — the memory-bound search steps serialise on the
    // single socket, which is what makes the CPU the bottleneck past the
    // paper's δ ≈ 0.15 (Fig. 13).
    let host_cores = cpu_cost.parallel_speedup(8);
    let modeled_cpu_match_sec = cpu_share_ns * 1e-9 / host_cores;

    // --- Aggregate kernel outputs and model device time. ---
    let mut counts = WorkloadCounts::default();
    let mut embeddings = cpu_embeddings;
    let mut collected = Vec::new();
    let mut rounds = 0u64;
    let mut cst_reads = 0u64;
    let mut buffer_writes = 0u64;
    let mut kernel_cycles = 0u64;
    for out in &fpga_outputs {
        counts.n += out.counts.n;
        counts.m += out.counts.m;
        embeddings += out.embeddings;
        rounds += out.rounds;
        cst_reads += out.cst_reads;
        buffer_writes += out.buffer_writes;
        kernel_cycles += backend.price_cycles(out.counts);
        if let CollectMode::Collect(cap) = config.collect {
            for e in &out.collected {
                if collected.len() < cap {
                    collected.push(e.clone());
                }
            }
        }
    }
    let kernel_time_sec = config.spec.cycles_to_sec(kernel_cycles);

    // PCIe: one transfer per FPGA partition plus the result fetch.
    let result_bytes = (embeddings as usize).saturating_mul(q.vertex_count() * 4);
    let transfer_time_sec = fpga_outputs
        .iter()
        .map(|_| config.spec.pcie.latency_sec)
        .sum::<f64>()
        + config.spec.pcie.transfer_time_sec(transfer_bytes)
        + config.spec.pcie.transfer_time_sec(result_bytes.min(transfer_bytes.max(1 << 20)));

    // Modelled partitioning: every emitted partition's entries (rebuild)
    // plus roughly the same again across recursion levels. Stolen CSTs were
    // consumed before splitting — that is exactly the partition cost
    // FAST-SHARE saves (Section VII-B).
    let cpu_entries: usize = cpu_queue.iter().map(Cst::total_adjacency_entries).sum();
    let partition_entries = cst_bytes_total / 4 + cpu_entries.saturating_sub(stolen_entries);
    let modeled_partition_sec = cpu_cost.partition_time_sec(2 * partition_entries);

    Ok(FastReport {
        variant: config.variant,
        embeddings,
        collected,
        counts,
        fpga_partitions: fpga_outputs.len(),
        cpu_partitions: cpu_queue.len(),
        stolen,
        forced,
        workload_cpu: scheduler.cpu_workload(),
        workload_fpga: scheduler.fpga_workload(),
        host_threads: times.host_threads,
        pipeline_shards: times.pipeline_shards,
        shard_planner: times.shard_planner,
        planned_duplication: times.planned_duplication,
        plan_time: times.plan_time,
        modeled_plan_sec: times.modeled_plan_sec,
        seeded_shards: times.seeded_shards,
        cached_shards: times.cached_shards,
        build_topdown_entries: times.build_topdown_entries,
        seed_time: times.seed_time,
        build_time: times.build_time,
        build_cpu_time: times.build_cpu_time,
        partition_time: times.partition_time,
        cpu_match_time,
        host_prepare_wall: times.host_prepare_wall,
        first_offload_wall: times.first_offload_wall,
        modeled_build_sec: times.modeled_build_sec,
        modeled_build_parallel_sec: times.modeled_build_parallel_sec,
        modeled_fill_sec: times.modeled_fill_sec,
        modeled_partition_sec,
        modeled_cpu_match_sec,
        kernel_cycles,
        kernel_time_sec,
        transfer_time_sec,
        transfer_bytes,
        rounds,
        cst_reads,
        buffer_writes,
        cst_bytes_total,
        wall_time: wall_start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::generators::random_labelled_graph;
    use graph_core::Label;
    use matching::vf2_count;

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn queries() -> Vec<QueryGraph> {
        vec![
            QueryGraph::new(vec![l(0), l(1), l(2)], &[(0, 1), (1, 2)]).unwrap(),
            QueryGraph::new(vec![l(0), l(1), l(1)], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
            QueryGraph::new(
                vec![l(0), l(1), l(0), l(1)],
                &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn all_variants_agree_with_vf2() {
        for (qi, q) in queries().into_iter().enumerate() {
            let g = random_labelled_graph(45, 0.2, 3, 400 + qi as u64);
            let expected = vf2_count(&q, &g);
            for variant in Variant::ALL {
                let config = FastConfig::test_small(variant);
                let report = run_fast(&q, &g, &config).unwrap();
                assert_eq!(
                    report.embeddings, expected,
                    "{variant} disagrees with VF2 on q{qi}"
                );
            }
        }
    }

    #[test]
    fn pipelined_host_agrees_with_sequential_for_all_thread_counts() {
        for (qi, q) in queries().into_iter().enumerate() {
            let g = random_labelled_graph(60, 0.2, 3, 700 + qi as u64);
            let sequential = run_fast(&q, &g, &FastConfig::test_small(Variant::Share)).unwrap();
            let mut per_thread = Vec::new();
            for threads in [2, 4, 8] {
                let mut config = FastConfig::test_small(Variant::Share);
                config.host_threads = threads;
                config.pipeline_shards = Some(4);
                let report = run_fast(&q, &g, &config).unwrap();
                assert_eq!(
                    report.embeddings, sequential.embeddings,
                    "threads={threads} q{qi}"
                );
                assert_eq!(report.pipeline_shards, 4);
                per_thread.push((
                    report.fpga_partitions,
                    report.cpu_partitions,
                    report.stolen,
                    report.transfer_bytes,
                    report.kernel_cycles,
                ));
            }
            // Everything downstream of the shard stream is deterministic in
            // the thread count (same shard count ⇒ same partition sequence,
            // same scheduler bookings, same kernel work).
            assert!(per_thread.windows(2).all(|w| w[0] == w[1]), "q{qi}: {per_thread:?}");
        }
    }

    #[test]
    fn variant_ladder_orders_modeled_kernel_time() {
        let q = queries().remove(2);
        let g = random_labelled_graph(60, 0.2, 2, 500);
        let mut cycles = Vec::new();
        for variant in [Variant::Dram, Variant::Basic, Variant::Task, Variant::Sep] {
            let config = FastConfig::for_variant(variant);
            let report = run_fast(&q, &g, &config).unwrap();
            cycles.push((variant, report.kernel_cycles));
        }
        for w in cycles.windows(2) {
            assert!(
                w[0].1 >= w[1].1,
                "{} ({}) should not be faster than {} ({})",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }

    #[test]
    fn share_variant_books_cpu_work() {
        let q = queries().remove(1);
        let g = random_labelled_graph(80, 0.25, 2, 501);
        let mut config = FastConfig::test_small(Variant::Share);
        config.delta = 0.25;
        let report = run_fast(&q, &g, &config).unwrap();
        // With a tiny BRAM there are many partitions; some must land on the
        // CPU under a generous delta.
        if report.fpga_partitions + report.cpu_partitions > 4 {
            assert!(report.cpu_partitions > 0, "CPU got no work: {report:?}");
            assert!(report.workload_cpu > 0.0);
        }
        assert_eq!(report.forced, 0);
    }

    #[test]
    fn collect_mode_returns_valid_embeddings() {
        let q = queries().remove(1);
        let g = random_labelled_graph(40, 0.25, 2, 502);
        let mut config = FastConfig::for_variant(Variant::Sep);
        config.collect = CollectMode::Collect(10);
        let report = run_fast(&q, &g, &config).unwrap();
        assert!(report.collected.len() <= 10);
        for emb in &report.collected {
            for &(a, b) in q.edges() {
                assert!(g.has_edge(emb[a.index()], emb[b.index()]));
            }
        }
    }

    #[test]
    fn modeled_and_measured_totals_include_their_build() {
        let q = queries().remove(0);
        let g = random_labelled_graph(50, 0.2, 3, 503);
        let report = run_fast(&q, &g, &FastConfig::default()).unwrap();
        // Modelled total uses the *modelled* (paper-Xeon) host times.
        assert!(report.modeled_total_sec() >= report.modeled_build_sec);
        assert!(report.measured_total_sec() >= report.build_time.as_secs_f64());
        assert!(report.kernel_time_sec >= 0.0);
        assert!(report.transfer_time_sec > 0.0);
        assert!(report.modeled_build_sec > 0.0);
        // Sequential flow: the general fields degenerate to the old model.
        assert_eq!(report.host_threads, 1);
        assert_eq!(report.pipeline_shards, 1);
        assert_eq!(report.modeled_fill_sec, report.modeled_build_sec);
        assert_eq!(report.build_cpu_time, report.build_time);
    }

    #[test]
    fn overlapped_model_never_exceeds_serial_sum() {
        // The overlapped elapsed time is bounded above by the serial sum of
        // its phases and below by the slowest single phase.
        let q = queries().remove(2);
        let g = random_labelled_graph(70, 0.2, 2, 505);
        let mut config = FastConfig::test_small(Variant::Sep);
        config.host_threads = 4;
        config.pipeline_shards = Some(8);
        let r = run_fast(&q, &g, &config).unwrap();
        let serial_sum = r.modeled_build_parallel_sec
            + r.modeled_partition_sec
            + r.modeled_cpu_match_sec
            + r.transfer_time_sec
            + r.kernel_time_sec;
        let total = r.modeled_total_sec();
        assert!(total <= serial_sum + 1e-12, "{total} > {serial_sum}");
        for floor in [
            r.modeled_fill_sec,
            r.modeled_partition_sec,
            r.kernel_time_sec,
        ] {
            assert!(total >= floor - 1e-12, "{total} < {floor}");
        }
    }

    #[test]
    fn order_injection_matches_default() {
        let q = queries().remove(2);
        let g = random_labelled_graph(50, 0.2, 2, 504);
        let default = run_fast(&q, &g, &FastConfig::default()).unwrap();
        let root = select_root(&q, &g);
        let tree = BfsTree::new(&q, root);
        let order = graph_core::ceci_style_order(&q, &tree);
        let injected =
            run_fast_with_order(&q, &g, &FastConfig::default(), &order).unwrap();
        assert_eq!(default.embeddings, injected.embeddings);
    }

    #[test]
    fn captured_artifact_replays_with_zero_build_and_identical_partitions() {
        for (qi, q) in queries().into_iter().enumerate() {
            let g = random_labelled_graph(60, 0.2, 3, 900 + qi as u64);
            let mut config = FastConfig::test_small(Variant::Share);
            config.host_threads = 2;
            config.pipeline_shards = Some(4);
            config.shard_planner = ShardPlanner::WorkloadBalanced;
            config.capture_prepared = true;
            let root = select_root(&q, &g);
            let tree = BfsTree::new(&q, root);
            let order = path_based_order(&q, &tree, &g);

            let mut cold_jobs: Vec<(usize, u64, usize)> = Vec::new();
            let cold = prepare_partitions(&q, &g, &config, &tree, &order, &mut |job| {
                cold_jobs.push((job.index, job.workload.to_bits(), job.cst.payload_bytes()));
            });
            assert!(!cold.cached_csts);
            let artifact = cold.prepared.clone().expect("capture requested");
            assert_eq!(artifact.shard_csts.len(), cold.pipeline_shards);
            assert_eq!(artifact.partitions.len(), cold.partitions);
            assert!(artifact.payload_bytes() > 0, "q{qi}: empty artifact");
            assert!(artifact.matches_query(&q));

            // Replay: the exact partition stream, zero build/partition work.
            let mut warm = config.clone();
            warm.capture_prepared = false;
            warm.prepared = Some(Arc::clone(&artifact));
            let mut warm_jobs: Vec<(usize, u64, usize)> = Vec::new();
            let hit = prepare_partitions(&q, &g, &warm, &tree, &order, &mut |job| {
                warm_jobs.push((job.index, job.workload.to_bits(), job.cst.payload_bytes()));
            });
            assert!(hit.cached_csts, "q{qi}");
            assert!(hit.prepared.is_none(), "replays must not re-capture");
            assert_eq!(warm_jobs, cold_jobs, "q{qi}: partition stream drifted");
            assert_eq!(hit.build_wall, Duration::ZERO);
            assert_eq!(hit.partition_time, Duration::ZERO);
            assert_eq!(hit.build_entries, 0);
            assert_eq!(hit.build_topdown_entries, 0);
            assert_eq!(hit.partitions, cold.partitions);

            // The one-shot flow reuses the artifact's shard CSTs through the
            // provenance-validated pipeline path: same embeddings, no build.
            let baseline = run_fast(&q, &g, &config).unwrap();
            let mut reused_config = config.clone();
            reused_config.capture_prepared = false;
            reused_config.prepared = Some(artifact);
            let reused = run_fast(&q, &g, &reused_config).unwrap();
            assert_eq!(reused.embeddings, baseline.embeddings, "q{qi}");
            assert_eq!(reused.kernel_cycles, baseline.kernel_cycles, "q{qi}");
            assert_eq!(reused.cached_shards, reused.pipeline_shards, "q{qi}");
            assert_eq!(reused.build_topdown_entries, 0);
            assert_eq!(reused.seeded_shards, 0);
            assert_eq!(baseline.cached_shards, 0);
        }
    }

    #[test]
    fn shape_mismatched_artifact_is_ignored() {
        let qs = queries();
        let g = random_labelled_graph(60, 0.2, 3, 910);
        let mut config = FastConfig::test_small(Variant::Share);
        config.host_threads = 2;
        config.pipeline_shards = Some(4);
        config.capture_prepared = true;
        // Capture against the 4-vertex query, replay against a 3-vertex one.
        let q4 = &qs[2];
        let root = select_root(q4, &g);
        let tree = BfsTree::new(q4, root);
        let order = path_based_order(q4, &tree, &g);
        let phase = prepare_partitions(q4, &g, &config, &tree, &order, &mut |_| {});
        let artifact = phase.prepared.expect("capture requested");

        let q3 = &qs[0];
        assert!(!artifact.matches_query(q3));
        let mut warm = config.clone();
        warm.capture_prepared = false;
        warm.prepared = Some(artifact);
        let expected = run_fast(q3, &g, &config).unwrap();
        let report = run_fast(q3, &g, &warm).unwrap();
        assert_eq!(report.embeddings, expected.embeddings);
        assert_eq!(report.cached_shards, 0, "mismatched artifact must rebuild");
    }
}
