//! # join-baselines
//!
//! The paper's GPU competitors, GpSM and GSI, re-expressed as breadth-first
//! join algorithms with a **device-memory model** (paper Section III-A /
//! VII-C). No GPU is used — the paper's observations about these systems are
//! memory-capacity and join-strategy effects, which survive the translation
//! to a memory-capped CPU implementation (DESIGN.md §1):
//!
//! * both materialise *all* partial results of each level before starting
//!   the next (breadth-first), so intermediate tables can explode;
//! * **GpSM** joins twice per level (a count pass, then a fill pass) to
//!   avoid write conflicts — lower memory, more work;
//! * **GSI** uses Prealloc-Combine: one pass into a pre-allocated output
//!   sized by the worst-case fan-out — faster, but with the higher peak
//!   memory the paper calls out ("GSI pre-allocates enough memory space
//!   instead of joining twice like GpSM").
//!
//! Runs abort with `OOM` when the modelled device memory (16 GB on the
//! paper's Tesla V100; configurable) is exceeded — reproducing why "both
//! fail to solve all the queries" (Fig. 14).

use graph_core::{BfsTree, Graph, MatchingOrder, QueryGraph, VertexId};
use matching::{GpuCostModel, MatchResult, Outcome, RunLimits};
use std::time::Instant;

/// Which GPU-style baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinBaseline {
    /// Edge-join with two-pass (count + fill) writes.
    GpSm,
    /// Vertex-join with Prealloc-Combine single-pass writes.
    Gsi,
}

impl JoinBaseline {
    /// Table label.
    pub fn name(&self) -> &'static str {
        match self {
            JoinBaseline::GpSm => "GpSM",
            JoinBaseline::Gsi => "GSI",
        }
    }

    /// Both baselines.
    pub const ALL: [JoinBaseline; 2] = [JoinBaseline::GpSm, JoinBaseline::Gsi];
}

/// Device parameters for the memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Modelled device (GPU) memory in bytes. Tesla V100: 16 GB.
    pub memory_bytes: usize,
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec {
            memory_bytes: 16 << 30,
        }
    }
}

/// Runs a GPU-style join baseline end-to-end.
///
/// `limits.timeout` applies; `limits.memory_cap` is ignored in favour of the
/// device memory model in `device`.
pub fn run_join_baseline(
    baseline: JoinBaseline,
    q: &QueryGraph,
    g: &Graph,
    device: &DeviceSpec,
    limits: &RunLimits,
) -> MatchResult {
    let build_start = Instant::now();
    let root = graph_core::select_root(q, g);
    let tree = BfsTree::new(q, root);
    let order = MatchingOrder::new(q, tree.bfs_order().to_vec())
        .expect("BFS order is always connected");
    // The data graph resides in device memory for both systems.
    let graph_bytes = g.memory_bytes();
    let build_time = build_start.elapsed();

    let match_start = Instant::now();
    let n = order.len();
    let row_bytes = |width: usize| width * std::mem::size_of::<VertexId>();

    // Backward neighbours per depth.
    let backward: Vec<Vec<usize>> = order
        .as_slice()
        .iter()
        .map(|&u| {
            order
                .backward_neighbors(q, u)
                .iter()
                .map(|&b| order.position_of(b))
                .collect()
        })
        .collect();

    // Level 0: candidate vertices of the root.
    let mut table: Vec<VertexId> = g
        .vertices_with_label(q.label(order.first()))
        .iter()
        .copied()
        .filter(|&v| g.degree(v) >= q.degree(order.first()))
        .collect();
    let mut width = 1usize;
    let mut peak_memory = graph_bytes + table.len() * row_bytes(1);
    let mut partials = table.len() as u64;
    // Device-side work counters for the GPU cost model.
    let mut probe_ops = table.len() as u64;
    let mut output_rows = table.len() as u64;
    let mut levels = 1u32;
    let gpu = GpuCostModel::default();

    let deadline = limits.timeout.map(|t| (Instant::now(), t));
    let fail = |outcome: Outcome, emb, peak, partials, match_start: Instant| MatchResult {
        algorithm: baseline.name().to_string(),
        outcome,
        embeddings: emb,
        build_time,
        match_time: match_start.elapsed(),
        peak_memory_bytes: peak,
        partials_generated: partials,
        modeled_build_sec: 0.0,
        modeled_match_sec: 0.0,
    };

    #[allow(clippy::needless_range_loop)] // depth also drives `order` and the loop exit
    for depth in 1..n {
        let u = order.vertex_at(depth);
        let label = q.label(u);
        let min_degree = q.degree(u);
        let back = &backward[depth];
        let anchor = back[0];
        let rows = table.len() / width;

        // --- Pass 1 (both systems): measure fan-out. GpSM uses it as the
        //     exact output size; GSI uses the worst-case upper bound for
        //     pre-allocation. ---
        let mut exact_out = 0usize;
        let mut prealloc_rows = 0usize;
        for r in 0..rows {
            let row = &table[r * width..(r + 1) * width];
            let av = row[anchor];
            prealloc_rows += g.degree(av) as usize;
            probe_ops += g.degree(av) as u64;
            for &v in g.neighbors(av) {
                if g.label(v) == label
                    && g.degree(v) >= min_degree
                    && !row.contains(&v)
                    && back[1..].iter().all(|&bd| g.has_edge(row[bd], v))
                {
                    exact_out += 1;
                }
            }
            if let Some((start, budget)) = deadline {
                if r % 4096 == 0 && start.elapsed() > budget {
                    return fail(Outcome::Timeout, 0, peak_memory, partials, match_start);
                }
            }
        }
        partials += exact_out as u64;

        // --- Memory model for this level. ---
        let new_width = width + 1;
        let out_rows_for_memory = match baseline {
            JoinBaseline::GpSm => exact_out,
            JoinBaseline::Gsi => prealloc_rows,
        };
        let level_memory = graph_bytes
            + table.len() * std::mem::size_of::<VertexId>()
            + out_rows_for_memory * row_bytes(new_width);
        peak_memory = peak_memory.max(level_memory);
        if level_memory > device.memory_bytes {
            return fail(Outcome::OutOfMemory, 0, peak_memory, partials, match_start);
        }

        // --- Pass 2: materialise. For GpSM this is genuinely the second
        //     walk over the probe space (the "joining twice" cost); GSI
        //     combined counting with writing, so its fill pass is the only
        //     full pass and pass 1's work models the prealloc sizing scan. ---
        let mut next = Vec::with_capacity(exact_out * new_width);
        for r in 0..rows {
            let row = &table[r * width..(r + 1) * width];
            let av = row[anchor];
            for &v in g.neighbors(av) {
                if g.label(v) == label
                    && g.degree(v) >= min_degree
                    && !row.contains(&v)
                    && back[1..].iter().all(|&bd| g.has_edge(row[bd], v))
                {
                    next.extend_from_slice(row);
                    next.push(v);
                }
            }
            if let Some((start, budget)) = deadline {
                if r % 4096 == 0 && start.elapsed() > budget {
                    return fail(Outcome::Timeout, 0, peak_memory, partials, match_start);
                }
            }
        }
        output_rows += exact_out as u64;
        levels += 1;
        if baseline == JoinBaseline::GpSm {
            // Second (fill) pass re-probes the whole space.
            probe_ops += prealloc_rows as u64;
        }
        table = next;
        width = new_width;
        if table.is_empty() {
            break;
        }
    }

    let embeddings = if width == n {
        (table.len() / width) as u64
    } else {
        0
    };
    MatchResult {
        algorithm: baseline.name().to_string(),
        outcome: Outcome::Completed,
        embeddings,
        build_time,
        match_time: match_start.elapsed(),
        peak_memory_bytes: peak_memory,
        partials_generated: partials,
        modeled_build_sec: graph_bytes as f64 / gpu.transfer_bandwidth,
        modeled_match_sec: gpu.join_time_sec(probe_ops, output_rows, levels, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::generators::random_labelled_graph;
    use graph_core::Label;
    use matching::vf2_count;

    fn l(x: u16) -> Label {
        Label::new(x)
    }

    fn queries() -> Vec<QueryGraph> {
        vec![
            QueryGraph::new(vec![l(0), l(1), l(2)], &[(0, 1), (1, 2)]).unwrap(),
            QueryGraph::new(vec![l(0), l(1), l(1)], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
            QueryGraph::new(
                vec![l(0), l(1), l(0), l(1)],
                &[(0, 1), (1, 2), (2, 3), (3, 0)],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn join_counts_match_vf2() {
        for (qi, q) in queries().into_iter().enumerate() {
            let g = random_labelled_graph(40, 0.2, 3, 200 + qi as u64);
            let expected = vf2_count(&q, &g);
            for b in JoinBaseline::ALL {
                let r = run_join_baseline(
                    b,
                    &q,
                    &g,
                    &DeviceSpec::default(),
                    &RunLimits::unlimited(),
                );
                assert_eq!(r.outcome, Outcome::Completed, "{b:?} q{qi}");
                assert_eq!(r.embeddings, expected, "{} q{qi}", b.name());
            }
        }
    }

    #[test]
    fn gsi_peak_memory_at_least_gpsm() {
        // The Prealloc-Combine upper bound dominates the exact output size.
        let q = queries().remove(2);
        let g = random_labelled_graph(80, 0.15, 2, 300);
        let gpsm = run_join_baseline(
            JoinBaseline::GpSm,
            &q,
            &g,
            &DeviceSpec::default(),
            &RunLimits::unlimited(),
        );
        let gsi = run_join_baseline(
            JoinBaseline::Gsi,
            &q,
            &g,
            &DeviceSpec::default(),
            &RunLimits::unlimited(),
        );
        assert!(gsi.peak_memory_bytes >= gpsm.peak_memory_bytes);
    }

    #[test]
    fn tiny_device_memory_reports_oom() {
        let q = queries().remove(1);
        let g = random_labelled_graph(100, 0.2, 2, 301);
        let device = DeviceSpec { memory_bytes: 64 };
        let r = run_join_baseline(JoinBaseline::Gsi, &q, &g, &device, &RunLimits::unlimited());
        assert_eq!(r.outcome, Outcome::OutOfMemory);
        assert_eq!(r.outcome.table_marker(), "OOM");
    }

    #[test]
    fn empty_result_when_label_absent() {
        let q = QueryGraph::new(vec![l(9), l(1)], &[(0, 1)]).unwrap();
        let g = random_labelled_graph(30, 0.2, 2, 302);
        let r = run_join_baseline(
            JoinBaseline::GpSm,
            &q,
            &g,
            &DeviceSpec::default(),
            &RunLimits::unlimited(),
        );
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.embeddings, 0);
    }
}
