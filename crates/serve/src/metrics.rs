//! Service-level metrics: the [`ServeReport`] and its per-tenant
//! [`TenantSummary`] slices.

use crate::cache::CacheStats;
use crate::devices::DeviceStats;
use crate::tenant::TenantId;

/// Nearest-rank percentile of an already **sorted** slice (`q` in
/// `[0, 1]`); 0.0 for an empty slice.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize)
        .clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Nearest-rank percentile of `samples` (any order; `q` in `[0, 1]`).
/// Returns 0.0 for an empty slice. Sorts a copy — when several quantiles
/// of the same set are needed, sort once and use the aggregate path.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    nearest_rank(&sorted, q)
}

fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Aggregate view of a service's lifetime (or a window of it): produced by
/// [`FastService::report`](crate::FastService::report) and
/// [`FastService::shutdown`](crate::FastService::shutdown).
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Sessions admitted.
    pub submitted: u64,
    /// Sessions completed successfully.
    pub completed: u64,
    /// Sessions that failed (e.g. query exceeds the kernel register budget,
    /// or a partition exhausted its retry budget).
    pub failed: u64,
    /// Sessions shed past their deadline
    /// ([`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded));
    /// counted separately from
    /// [`failed`](Self::failed) — a shed session was dropped by policy,
    /// not broken.
    pub deadline_misses: u64,
    /// Failed execution attempts that were retried on another admission.
    /// Reconciles exactly against Σ `DeviceStats::failures` over
    /// [`devices`](Self::devices) — every device failure is retried
    /// exactly once (the exactly-once accounting the chaos tests assert).
    pub retries: u64,
    /// Retries that rerouted to a *different* device than the one that
    /// failed.
    pub failovers: u64,
    /// Times any device entered quarantine (Σ `DeviceStats::quarantines`).
    pub quarantines: u64,
    /// Corrupted outputs the cross-check caught and outvoted
    /// (Σ `DeviceStats::corruptions` as attributed by the service).
    pub corruption_catches: u64,
    /// Wall seconds spent executing on the emergency CPU fallback because
    /// the whole pool was quarantined or evicted (degraded mode).
    pub degraded_sec: f64,
    /// Total embeddings across completed sessions.
    pub total_embeddings: u64,
    /// Tier-1 plan-cache counters (hit rate, evictions).
    pub cache: CacheStats,
    /// Tier-2 shard-CST cache counters (hit rate, evictions, rejections).
    pub cst_cache: CacheStats,
    /// Resident payload bytes across every tenant's tier-2 partition at
    /// report time — always ≤ the sum of configured byte budgets.
    pub cst_resident_bytes: usize,
    /// Sustained throughput: completed sessions per second of serving wall
    /// time (first submission → last completion).
    pub qps: f64,
    /// Serving wall time the QPS is normalised by.
    pub wall_sec: f64,
    /// Session latency percentiles/mean (seconds): measured submit→done
    /// wall **plus** each session's modelled device queueing delay
    /// (`QueryReport::device_queue_sec`) — device-faithful at high
    /// concurrency, where the inline emulated kernels hide the contention
    /// on the modelled cards.
    pub latency_p50: f64,
    pub latency_p99: f64,
    pub latency_mean: f64,
    /// Admission-queue wait percentiles (seconds): submit → worker pickup.
    pub queue_wait_p50: f64,
    pub queue_wait_p99: f64,
    /// Modelled device queueing delay percentiles/mean (seconds): per
    /// session, the worst outstanding booked work its partitions joined
    /// behind at admission (`DevicePool::admit`). The component of the
    /// latency percentiles above that the host wall cannot see.
    pub device_queue_p50: f64,
    pub device_queue_p99: f64,
    pub device_queue_mean: f64,
    /// Mean shard-planning wall per session, split by cache outcome. A
    /// working cache shows `plan_hit_mean_sec` ≈ 0.
    pub plan_hit_mean_sec: f64,
    pub plan_miss_mean_sec: f64,
    /// Mean CST build wall per session (refinement + materialisation +
    /// partitioning), split by tier-2 outcome: a warm serve builds nothing,
    /// so `build_hit_mean_sec` is exactly 0 — the timing claim the
    /// `cstcache` figure asserts.
    pub build_hit_mean_sec: f64,
    pub build_miss_mean_sec: f64,
    /// Per-device counters (partitions, modelled cycles, booked workload).
    pub devices: Vec<DeviceStats>,
    /// The busiest device's modelled execution seconds.
    pub device_makespan_sec: f64,
    /// Total modelled device-seconds across the pool.
    pub device_busy_sec: f64,
    /// Max/mean booked workload across devices (1.0 = perfectly balanced).
    pub device_imbalance: f64,
    /// High-water mark of concurrently admitted sessions.
    pub max_in_flight: usize,
    /// Per-tenant slices, ordered by tenant id (the default tenant first).
    pub tenants: Vec<TenantSummary>,
}

/// One tenant's slice of the service report.
#[derive(Debug, Clone)]
pub struct TenantSummary {
    /// The tenant the slice describes.
    pub tenant: TenantId,
    /// Fair-share weight of the admission round-robin.
    pub quota: u32,
    /// Current graph epoch (bumps invalidate the tenant's cached plans).
    pub epoch: u64,
    /// Sessions this tenant submitted.
    pub submitted: u64,
    /// Sessions completed for this tenant.
    pub completed: u64,
    /// Sessions failed for this tenant.
    pub failed: u64,
    /// Sessions of this tenant shed past their deadline.
    pub deadline_misses: u64,
    /// Failed execution attempts retried on this tenant's behalf.
    pub retries: u64,
    /// Retries that rerouted to a different device.
    pub failovers: u64,
    /// Corrupted outputs the cross-check caught for this tenant.
    pub corruption_catches: u64,
    /// Wall seconds this tenant's sessions spent on the CPU fallback.
    pub degraded_sec: f64,
    /// Embeddings across the tenant's completed sessions.
    pub total_embeddings: u64,
    /// Completed sessions per second of the tenant's serving wall (its own
    /// first submission → its own last completion).
    pub qps: f64,
    /// Tenant latency percentiles (seconds), same definition as the
    /// service-wide ones.
    pub latency_p50: f64,
    pub latency_p99: f64,
    /// Hit rate of the tenant's plan-cache partition.
    pub hit_rate: f64,
    /// Hit rate of the tenant's tier-2 shard-CST cache partition.
    pub cst_hit_rate: f64,
    /// Resident payload bytes of the tenant's tier-2 partition.
    pub cst_resident_bytes: usize,
}

impl ServeReport {
    /// Builds the latency/queue aggregates from raw samples. All inputs
    /// are per-session seconds.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn aggregate(
        &mut self,
        latencies: &[f64],
        queue_waits: &[f64],
        device_queues: &[f64],
        plan_hits: &[f64],
        plan_misses: &[f64],
        build_hits: &[f64],
        build_misses: &[f64],
    ) {
        // One sort per sample set, both quantiles read from it.
        let mut sorted = latencies.to_vec();
        sorted.sort_by(f64::total_cmp);
        self.latency_p50 = nearest_rank(&sorted, 0.50);
        self.latency_p99 = nearest_rank(&sorted, 0.99);
        self.latency_mean = mean(latencies);
        sorted.clear();
        sorted.extend_from_slice(queue_waits);
        sorted.sort_by(f64::total_cmp);
        self.queue_wait_p50 = nearest_rank(&sorted, 0.50);
        self.queue_wait_p99 = nearest_rank(&sorted, 0.99);
        sorted.clear();
        sorted.extend_from_slice(device_queues);
        sorted.sort_by(f64::total_cmp);
        self.device_queue_p50 = nearest_rank(&sorted, 0.50);
        self.device_queue_p99 = nearest_rank(&sorted, 0.99);
        self.device_queue_mean = mean(device_queues);
        self.plan_hit_mean_sec = mean(plan_hits);
        self.plan_miss_mean_sec = mean(plan_misses);
        self.build_hit_mean_sec = mean(build_hits);
        self.build_miss_mean_sec = mean(build_misses);
    }

    /// Whether every derived rate/percentile field is finite — the
    /// degenerate-report guard (zero wall, empty sample sets, idle
    /// devices must all surface zeros, never NaN/inf).
    pub fn is_finite(&self) -> bool {
        [
            self.qps,
            self.wall_sec,
            self.latency_p50,
            self.latency_p99,
            self.latency_mean,
            self.queue_wait_p50,
            self.queue_wait_p99,
            self.device_queue_p50,
            self.device_queue_p99,
            self.device_queue_mean,
            self.plan_hit_mean_sec,
            self.plan_miss_mean_sec,
            self.build_hit_mean_sec,
            self.build_miss_mean_sec,
            self.device_makespan_sec,
            self.device_busy_sec,
            self.device_imbalance,
            self.degraded_sec,
            self.cache.hit_rate(),
            self.cst_cache.hit_rate(),
        ]
        .iter()
        .all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        // Unsorted input is handled.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    fn aggregate_fills_fields() {
        let mut r = ServeReport::default();
        r.aggregate(
            &[1.0, 2.0, 3.0],
            &[0.5],
            &[0.1, 0.3],
            &[0.0, 0.0],
            &[1.0],
            &[0.0],
            &[2.0, 4.0],
        );
        assert_eq!(r.latency_p50, 2.0);
        assert_eq!(r.latency_mean, 2.0);
        assert_eq!(r.queue_wait_p99, 0.5);
        assert_eq!(r.device_queue_p99, 0.3);
        assert!((r.device_queue_mean - 0.2).abs() < 1e-12);
        assert_eq!(r.plan_hit_mean_sec, 0.0);
        assert_eq!(r.plan_miss_mean_sec, 1.0);
        assert_eq!(r.build_hit_mean_sec, 0.0);
        assert_eq!(r.build_miss_mean_sec, 3.0);
        assert!(r.is_finite());
    }

    #[test]
    fn empty_aggregate_is_finite() {
        let mut r = ServeReport::default();
        r.aggregate(&[], &[], &[], &[], &[], &[], &[]);
        assert!(r.is_finite());
        assert_eq!(r.latency_p99, 0.0);
        assert_eq!(r.device_queue_p50, 0.0);
    }
}
