//! Service-level metrics: the [`ServeReport`], its per-tenant
//! [`TenantSummary`] slices, and the Prometheus text rendering.
//!
//! Latency-shaped sample sets are held as streaming log-bucketed
//! [`obs::Histogram`]s rather than raw sample vectors: constant memory
//! regardless of session count, exact mergeable counters (so rolling
//! windows are true deltas of the lifetime state), and nearest-rank
//! quantiles read straight from the bucket counts — one pass per
//! report instead of one sort per percentile call.

use crate::cache::CacheStats;
use crate::devices::DeviceStats;
use crate::tenant::TenantId;
use obs::Histogram;

/// Nearest-rank percentile of an already **sorted** slice (`q` in
/// `[0, 1]`); 0.0 for an empty slice.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize)
        .clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Nearest-rank percentile of `samples` (any order; `q` in `[0, 1]`).
/// Returns 0.0 for an empty slice. Sorts a copy — when several quantiles
/// of the same set are needed, sort once and call [`percentile_sorted`],
/// or better, stream the samples into an [`obs::Histogram`] as the
/// report assembly path does.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    nearest_rank(&sorted, q)
}

/// Nearest-rank percentile of an already **sorted** slice — the
/// sort-once path for call sites that need several quantiles of the
/// same sample set.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    nearest_rank(sorted, q)
}

/// Identifies a rolling-window report (see
/// [`FastService::report_window`](crate::FastService::report_window)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowInfo {
    /// Window sequence number: 0 for the first window after service
    /// start, incrementing on every `report_window` call.
    pub seq: u64,
    /// Wall seconds the window spans (previous `report_window` call —
    /// or service start — to this one).
    pub wall_sec: f64,
}

/// Aggregate view of a service's lifetime (or a rolling window of it):
/// produced by [`FastService::report`](crate::FastService::report),
/// [`FastService::report_window`](crate::FastService::report_window) and
/// [`FastService::shutdown`](crate::FastService::shutdown).
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// `None` for a lifetime report; window identity for a delta report.
    pub window: Option<WindowInfo>,
    /// Sessions admitted.
    pub submitted: u64,
    /// Sessions completed successfully.
    pub completed: u64,
    /// Sessions that failed (e.g. query exceeds the kernel register budget,
    /// or a partition exhausted its retry budget).
    pub failed: u64,
    /// Sessions shed past their deadline
    /// ([`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded));
    /// counted separately from
    /// [`failed`](Self::failed) — a shed session was dropped by policy,
    /// not broken.
    pub deadline_misses: u64,
    /// Failed execution attempts that were retried on another admission.
    /// Reconciles exactly against Σ `DeviceStats::failures` over
    /// [`devices`](Self::devices) — every device failure is retried
    /// exactly once (the exactly-once accounting the chaos tests assert).
    pub retries: u64,
    /// Retries that rerouted to a *different* device than the one that
    /// failed.
    pub failovers: u64,
    /// Times any device entered quarantine (Σ `DeviceStats::quarantines`).
    pub quarantines: u64,
    /// Corrupted outputs the cross-check caught and outvoted
    /// (Σ `DeviceStats::corruptions` as attributed by the service).
    pub corruption_catches: u64,
    /// Wall seconds spent executing on the emergency CPU fallback because
    /// the whole pool was quarantined or evicted (degraded mode).
    pub degraded_sec: f64,
    /// Total embeddings across completed sessions.
    pub total_embeddings: u64,
    /// Tier-1 plan-cache counters (hit rate, evictions).
    pub cache: CacheStats,
    /// Tier-2 shard-CST cache counters (hit rate, evictions, rejections).
    pub cst_cache: CacheStats,
    /// Resident payload bytes across every tenant's tier-2 partition at
    /// report time — always ≤ the sum of configured byte budgets.
    pub cst_resident_bytes: usize,
    /// Sustained throughput: completed sessions per second of serving wall
    /// time (first submission → last completion; for a window report, the
    /// window wall).
    pub qps: f64,
    /// Serving wall time the QPS is normalised by.
    pub wall_sec: f64,
    /// Session latency distribution (seconds): measured submit→done wall
    /// **plus** each session's modelled device queueing delay
    /// (`QueryReport::device_queue_sec`) — device-faithful at high
    /// concurrency, where the inline emulated kernels hide the contention
    /// on the modelled cards. Bucket counts are exact and mergeable;
    /// quantiles below read from it (bucket-midpoint representatives,
    /// ≤ ~6% relative error by construction).
    pub latency_hist: Histogram,
    /// Admission-queue wait distribution (seconds): submit → worker pickup.
    pub queue_wait_hist: Histogram,
    /// Modelled device queueing delay distribution (seconds): per session,
    /// the worst outstanding booked work its partitions joined behind at
    /// admission (`DevicePool::admit`). The component of the latency
    /// distribution above that the host wall cannot see.
    pub device_queue_hist: Histogram,
    /// Session latency quantiles/mean (seconds), read from
    /// [`latency_hist`](Self::latency_hist).
    pub latency_p50: f64,
    pub latency_p99: f64,
    pub latency_mean: f64,
    /// Admission-queue wait quantiles (seconds), read from
    /// [`queue_wait_hist`](Self::queue_wait_hist).
    pub queue_wait_p50: f64,
    pub queue_wait_p99: f64,
    /// Device queueing delay quantiles/mean (seconds), read from
    /// [`device_queue_hist`](Self::device_queue_hist).
    pub device_queue_p50: f64,
    pub device_queue_p99: f64,
    pub device_queue_mean: f64,
    /// Mean shard-planning wall per session, split by cache outcome. A
    /// working cache shows `plan_hit_mean_sec` ≈ 0.
    pub plan_hit_mean_sec: f64,
    pub plan_miss_mean_sec: f64,
    /// Mean CST build wall per session (refinement + materialisation +
    /// partitioning), split by tier-2 outcome: a warm serve builds nothing,
    /// so `build_hit_mean_sec` is exactly 0 — the timing claim the
    /// `cstcache` figure asserts.
    pub build_hit_mean_sec: f64,
    pub build_miss_mean_sec: f64,
    /// Per-device counters (partitions, modelled cycles, booked workload).
    /// In a window report the monotone counters are deltas over the
    /// window; `outstanding_workload` and `health` are point-in-time.
    pub devices: Vec<DeviceStats>,
    /// The busiest device's modelled execution seconds.
    pub device_makespan_sec: f64,
    /// Total modelled device-seconds across the pool.
    pub device_busy_sec: f64,
    /// Max/mean booked workload across devices (1.0 = perfectly balanced).
    pub device_imbalance: f64,
    /// High-water mark of concurrently admitted sessions (lifetime, even
    /// in window reports).
    pub max_in_flight: usize,
    /// Per-tenant slices, ordered by tenant id (the default tenant first).
    /// Empty in window reports — windows slice time, not tenants.
    pub tenants: Vec<TenantSummary>,
}

/// One tenant's slice of the service report.
#[derive(Debug, Clone)]
pub struct TenantSummary {
    /// The tenant the slice describes.
    pub tenant: TenantId,
    /// Fair-share weight of the admission round-robin.
    pub quota: u32,
    /// Current graph epoch (bumps invalidate the tenant's cached plans).
    pub epoch: u64,
    /// Sessions this tenant submitted.
    pub submitted: u64,
    /// Sessions completed for this tenant.
    pub completed: u64,
    /// Sessions failed for this tenant.
    pub failed: u64,
    /// Sessions of this tenant shed past their deadline.
    pub deadline_misses: u64,
    /// Failed execution attempts retried on this tenant's behalf.
    pub retries: u64,
    /// Retries that rerouted to a different device.
    pub failovers: u64,
    /// Corrupted outputs the cross-check caught for this tenant.
    pub corruption_catches: u64,
    /// Wall seconds this tenant's sessions spent on the CPU fallback.
    pub degraded_sec: f64,
    /// Embeddings across the tenant's completed sessions.
    pub total_embeddings: u64,
    /// Completed sessions per second of the tenant's serving wall (its own
    /// first submission → its own last completion).
    pub qps: f64,
    /// Tenant latency quantiles (seconds), same definition as the
    /// service-wide ones (histogram nearest-rank, no per-report sort).
    pub latency_p50: f64,
    pub latency_p99: f64,
    /// Hit rate of the tenant's plan-cache partition.
    pub hit_rate: f64,
    /// Hit rate of the tenant's tier-2 shard-CST cache partition.
    pub cst_hit_rate: f64,
    /// Resident payload bytes of the tenant's tier-2 partition.
    pub cst_resident_bytes: usize,
}

impl ServeReport {
    /// Builds the latency/queue aggregates from the streaming
    /// histograms. All inputs are per-session seconds; the three
    /// latency-shaped histograms are kept on the report so window
    /// deltas and exports can reuse the exact bucket counts.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn aggregate(
        &mut self,
        latencies: &Histogram,
        queue_waits: &Histogram,
        device_queues: &Histogram,
        plan_hits: &Histogram,
        plan_misses: &Histogram,
        build_hits: &Histogram,
        build_misses: &Histogram,
    ) {
        self.latency_p50 = latencies.quantile(0.50);
        self.latency_p99 = latencies.quantile(0.99);
        self.latency_mean = latencies.mean();
        self.queue_wait_p50 = queue_waits.quantile(0.50);
        self.queue_wait_p99 = queue_waits.quantile(0.99);
        self.device_queue_p50 = device_queues.quantile(0.50);
        self.device_queue_p99 = device_queues.quantile(0.99);
        self.device_queue_mean = device_queues.mean();
        self.plan_hit_mean_sec = plan_hits.mean();
        self.plan_miss_mean_sec = plan_misses.mean();
        self.build_hit_mean_sec = build_hits.mean();
        self.build_miss_mean_sec = build_misses.mean();
        self.latency_hist = latencies.clone();
        self.queue_wait_hist = queue_waits.clone();
        self.device_queue_hist = device_queues.clone();
    }

    /// Whether every derived rate/percentile field is finite — the
    /// degenerate-report guard (zero wall, empty sample sets, idle
    /// devices must all surface zeros, never NaN/inf).
    pub fn is_finite(&self) -> bool {
        [
            self.qps,
            self.wall_sec,
            self.latency_p50,
            self.latency_p99,
            self.latency_mean,
            self.queue_wait_p50,
            self.queue_wait_p99,
            self.device_queue_p50,
            self.device_queue_p99,
            self.device_queue_mean,
            self.plan_hit_mean_sec,
            self.plan_miss_mean_sec,
            self.build_hit_mean_sec,
            self.build_miss_mean_sec,
            self.device_makespan_sec,
            self.device_busy_sec,
            self.device_imbalance,
            self.degraded_sec,
            self.cache.hit_rate(),
            self.cst_cache.hit_rate(),
            self.latency_hist.mean(),
            self.latency_hist.sum(),
            self.queue_wait_hist.mean(),
            self.queue_wait_hist.sum(),
            self.device_queue_hist.mean(),
            self.device_queue_hist.sum(),
            self.window.map_or(0.0, |w| w.wall_sec),
        ]
        .iter()
        .all(|v| v.is_finite())
    }

    /// Renders the report as Prometheus text exposition lines
    /// (`serve_*` metrics plus a cumulative latency histogram). The
    /// service-level exposition
    /// ([`FastService::prometheus_text`](crate::FastService::prometheus_text))
    /// prepends the global `obs` registry to this.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut c = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        c("serve_sessions_submitted_total", "Sessions admitted", self.submitted);
        c("serve_sessions_completed_total", "Sessions completed", self.completed);
        c("serve_sessions_failed_total", "Sessions failed", self.failed);
        c(
            "serve_deadline_misses_total",
            "Sessions shed past their deadline",
            self.deadline_misses,
        );
        c("serve_retries_total", "Failed attempts retried", self.retries);
        c(
            "serve_failovers_total",
            "Retries rerouted to a different device",
            self.failovers,
        );
        c(
            "serve_quarantines_total",
            "Device quarantine entries",
            self.quarantines,
        );
        c(
            "serve_corruption_catches_total",
            "Corrupted outputs outvoted by the cross-check",
            self.corruption_catches,
        );
        c(
            "serve_embeddings_total",
            "Embeddings across completed sessions",
            self.total_embeddings,
        );
        c("serve_plan_cache_hits_total", "Tier-1 plan cache hits", self.cache.hits);
        c(
            "serve_plan_cache_misses_total",
            "Tier-1 plan cache misses",
            self.cache.misses,
        );
        c(
            "serve_cst_cache_hits_total",
            "Tier-2 shard-CST cache hits",
            self.cst_cache.hits,
        );
        c(
            "serve_cst_cache_misses_total",
            "Tier-2 shard-CST cache misses",
            self.cst_cache.misses,
        );
        let mut g = |name: &str, help: &str, v: f64| {
            let v = if v.is_finite() { v } else { 0.0 };
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        g("serve_qps", "Completed sessions per second of serving wall", self.qps);
        g(
            "serve_degraded_seconds",
            "Wall seconds on the CPU fallback",
            self.degraded_sec,
        );
        g(
            "serve_cst_resident_bytes",
            "Resident tier-2 payload bytes",
            self.cst_resident_bytes as f64,
        );
        g(
            "serve_max_in_flight",
            "High-water mark of concurrent sessions",
            self.max_in_flight as f64,
        );
        // Cumulative Prometheus histogram of session latency.
        let name = "serve_latency_seconds";
        out.push_str(&format!(
            "# HELP {name} Session latency (submit to done plus modelled device queueing)\n\
             # TYPE {name} histogram\n"
        ));
        for (le, cum) in self.latency_hist.cumulative() {
            let le = if le.is_finite() {
                format!("{le}")
            } else {
                "+Inf".to_string()
            };
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        let sum = self.latency_hist.sum();
        let sum = if sum.is_finite() { sum } else { 0.0 };
        out.push_str(&format!("{name}_sum {sum}\n"));
        out.push_str(&format!("{name}_count {}\n", self.latency_hist.count()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        // Unsorted input is handled.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), 2.0);
        // The sort-once path agrees on sorted input.
        assert_eq!(percentile_sorted(&v, 0.99), 99.0);
    }

    fn hist_of(samples: &[f64]) -> Histogram {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    #[test]
    fn aggregate_fills_fields() {
        let mut r = ServeReport::default();
        r.aggregate(
            &hist_of(&[1.0, 2.0, 3.0]),
            &hist_of(&[0.5]),
            &hist_of(&[0.1, 0.3]),
            &hist_of(&[0.0, 0.0]),
            &hist_of(&[1.0]),
            &hist_of(&[0.0]),
            &hist_of(&[2.0, 4.0]),
        );
        // Histogram quantiles are bucket-midpoint representatives:
        // assert within the documented ~6% relative error.
        let close = |got: f64, want: f64| (got - want).abs() <= 0.07 * want.max(1e-9);
        assert!(close(r.latency_p50, 2.0), "p50 {}", r.latency_p50);
        assert!((r.latency_mean - 2.0).abs() < 1e-12);
        assert!(close(r.queue_wait_p99, 0.5), "qw p99 {}", r.queue_wait_p99);
        assert!(close(r.device_queue_p99, 0.3), "dq p99 {}", r.device_queue_p99);
        assert!((r.device_queue_mean - 0.2).abs() < 1e-12);
        assert_eq!(r.plan_hit_mean_sec, 0.0);
        assert_eq!(r.plan_miss_mean_sec, 1.0);
        assert_eq!(r.build_hit_mean_sec, 0.0);
        assert_eq!(r.build_miss_mean_sec, 3.0);
        assert_eq!(r.latency_hist.count(), 3);
        assert!(r.is_finite());
    }

    #[test]
    fn empty_aggregate_is_finite() {
        let mut r = ServeReport::default();
        let e = Histogram::new();
        r.aggregate(&e, &e, &e, &e, &e, &e, &e);
        assert!(r.is_finite());
        assert_eq!(r.latency_p99, 0.0);
        assert_eq!(r.device_queue_p50, 0.0);
        r.window = Some(WindowInfo { seq: 3, wall_sec: 0.0 });
        assert!(r.is_finite());
    }

    #[test]
    fn prometheus_text_renders_counters_and_histogram() {
        let mut r = ServeReport {
            submitted: 5,
            completed: 4,
            qps: 12.5,
            ..ServeReport::default()
        };
        let h = hist_of(&[0.001, 0.002, 0.004]);
        r.aggregate(&h, &h, &h, &h, &h, &h, &h);
        let text = r.prometheus_text();
        assert!(text.contains("serve_sessions_submitted_total 5"));
        assert!(text.contains("# TYPE serve_latency_seconds histogram"));
        assert!(text.contains("serve_latency_seconds_count 3"));
        assert!(text.contains("le=\"+Inf\""));
        // Every line is a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }
}
