//! # serve — multi-tenant concurrent query serving over the FAST pipeline
//!
//! Everything below `serve` executes exactly one query per call. This crate
//! is the layer the ROADMAP's north star asks for: a [`FastService`] owns a
//! registry of **tenants** — each a loaded data graph with its own epoch,
//! fair-share quota, and plan-cache partition — plus a heterogeneous pool
//! of execution backends (emulated FPGA cards and CPU fallback shares) and
//! serves a *stream* of concurrent query submissions, amortising
//! preparation across repeats and keeping the devices saturated:
//!
//! * [`tenant`] — [`TenantId`]/[`TenantConfig`] and the weighted
//!   round-robin session table: under saturation each backlogged tenant is
//!   served in proportion to its quota (deficit round-robin), replacing the
//!   old global blocking semaphore as the cross-tenant scheduling point;
//! * [`cache`] — **two cache tiers** keyed on [`cst::PlanKey`] (query
//!   fingerprint × tenant graph epoch × planning options), partitioned per
//!   tenant and unified on one size-aware LRU ([`SizedCache`]): tier 1
//!   caches the [`ShardPlan`](cst::ShardPlan) (skip the probe/boundary
//!   search), tier 2 ([`CstCache`]) caches the refined shard CSTs *and*
//!   their partition decomposition under a **byte budget**
//!   (`Cst::payload_bytes`), so a warm serve is pure dispatch + kernel —
//!   zero build work — and one tenant's entries can never collide with
//!   another's;
//! * [`devices`] — a [`DevicePool`] multiplexing CST partitions across
//!   heterogeneous backends by **shortest expected completion in modelled
//!   seconds**: each backend (FPGA card under the cycle model, CPU share
//!   under the search-cost model) is priced by its own observed rate, so
//!   the scheduler steers work toward whatever drains fastest (the
//!   multi-FPGA regime of Section VII-E, generalised) — with per-device
//!   [`HealthState`] tracking: consecutive failures quarantine a device
//!   for a doubling penalty window, an expired quarantine re-admits on
//!   probation, permanent errors evict for good;
//! * [`service`] — an **event-driven session executor**: `submit` is a
//!   non-blocking enqueue, and a small fixed pool of executor threads
//!   drives each admitted session through an explicit state machine
//!   (`Admitted → Planning → Building → Dispatched → Draining →
//!   Done/Shed`) via work-stealing task deques and the device pool's
//!   completion queue, so outstanding sessions cost slab entries rather
//!   than OS threads; **bounded execution permits** cap concurrent
//!   execution ([`FastService::try_submit`] returns the typed
//!   [`ServeError::Saturated`](service::ServeError) instead of queueing),
//!   the decoupled prepare/execute phases (`fast::prepare_partitions`)
//!   run as executor tasks, tenants restore zero-copy from mapped
//!   snapshots ([`FastService::load_tenant_snapshot`] via
//!   `graph_core::load_snapshot_mapped`), [`SessionHandle`]s stream
//!   per-partition results back as backends drain, shutdown drains
//!   in-flight sessions and sheds queued ones with the typed
//!   [`ServeError::ShuttingDown`](service::ServeError), and execution is
//!   **fault-tolerant**
//!   ([`FaultPolicy`]): failed partitions retry with bounded exponential
//!   backoff and reroute to the shortest-expected-completion healthy
//!   device, corrupted outputs are caught by cross-checking a second
//!   execution, sessions past their deadline
//!   ([`ServeConfig::deadline`](service::ServeConfig) /
//!   [`TenantConfig::deadline`]) are shed with a typed error, and a fully
//!   quarantined fleet degrades to an emergency CPU share;
//! * [`metrics`] — per-query, per-tenant, and service-level metrics
//!   ([`ServeReport`], [`TenantSummary`]): sustained QPS, queue wait,
//!   p50/p99 latency, cache hit rate, per-device utilisation. Latency
//!   distributions are streaming [`obs::Histogram`]s, so
//!   [`FastService::report_window`] serves rolling-window deltas whose
//!   integer counters reconcile bit-exactly against the lifetime report,
//!   and [`FastService::prometheus_text`] renders a text exposition.
//!
//! # Observability
//!
//! The serving path is instrumented through the [`obs`] crate: per-session
//! trace spans (`session ⊇ build ⊇ execute`, plus `queue_wait`/`plan`),
//! instant events for faults (`retry`, `failover`, `deadline_shed`,
//! `degraded`) and device health transitions (`quarantine`, `probation`,
//! `recovered`, `evicted`, `corruption_strike`), and registry counters
//! mirroring the report fields. Tracing is off unless [`obs::enable`] is
//! called; when off, every hook is a single relaxed atomic load. See
//! DESIGN.md §10 and `examples/observability.rs`.
//!
//! # Determinism
//!
//! Every per-query *result* (embedding count, partition sequence,
//! per-partition counts) is a pure function of `(q, g, FastConfig)` —
//! independent of executor count, fleet composition (CPU-only, FPGA-only,
//! mixed), admission interleaving, and cache hits (a cached plan is
//! bit-identical to the plan a cold run would compute). Only *placement
//! and timing* vary with concurrency. The property tests in
//! `tests/prop_serve.rs`, `tests/prop_sessions.rs`, and
//! `tests/prop_backend.rs` enforce this.
//!
//! # Quickstart
//!
//! ```
//! use graph_core::{benchmark_query, generators::{generate_ldbc, LdbcParams}};
//! use serve::{FastService, ServeConfig, TenantConfig};
//!
//! let g = generate_ldbc(&LdbcParams::with_scale_factor(0.05), 42);
//! let service = FastService::new(g, ServeConfig::default());
//! // A second tenant with triple the fair-share quota and its own graph.
//! let g2 = generate_ldbc(&LdbcParams::with_scale_factor(0.05), 7);
//! let t2 = service
//!     .add_tenant(g2, TenantConfig { quota: 3, ..TenantConfig::default() })
//!     .unwrap();
//! let a = service.submit(benchmark_query(0)); // default tenant
//! let b = service.submit(benchmark_query(0)); // plan served from cache
//! let c = service.submit_for(t2, benchmark_query(0)).unwrap();
//! let (ra, rb) = (a.wait().unwrap(), b.wait().unwrap());
//! assert_eq!(ra.embeddings, rb.embeddings);
//! assert_eq!(c.wait().unwrap().tenant, t2);
//! let report = service.shutdown();
//! assert_eq!(report.completed, 3);
//! assert_eq!(report.tenants.len(), 2);
//! ```

pub mod cache;
pub mod devices;
pub mod metrics;
pub mod service;
pub mod tenant;

pub use cache::{CacheBudget, CacheStats, CstCache, PlanCache, SizedCache};
pub use devices::{
    DeviceKind, DevicePool, DeviceStats, HealthState, QUARANTINE_BASE_TICKS, QUARANTINE_THRESHOLD,
};
pub use metrics::{ServeReport, TenantSummary, WindowInfo};
pub use service::{
    FastService, FaultPolicy, PartitionUpdate, QueryReport, ServeConfig, ServeError, SessionEvent,
    SessionHandle,
};
pub use tenant::{TenantConfig, TenantId, INITIAL_GRAPH_EPOCH};
