//! # serve — concurrent query serving over the FAST pipeline
//!
//! Everything below `serve` executes exactly one query per call. This crate
//! is the layer the ROADMAP's north star asks for: a [`FastService`] owns a
//! loaded data graph plus a pool of emulated FPGA devices and serves a
//! *stream* of concurrent query submissions, amortising preparation across
//! repeats and keeping the devices saturated:
//!
//! * [`cache`] — an LRU **plan cache** keyed on [`cst::PlanKey`] (query
//!   fingerprint × graph epoch × planning options): a `ShardPlan` is a pure
//!   function of `(q, g, tree, options)`, so repeated queries skip the
//!   probe/boundary search entirely and reuse the planned decomposition;
//! * [`devices`] — a [`DevicePool`] multiplexing CST
//!   partitions across emulated cards by **shortest expected completion**
//!   (the `W_CST` workload estimate of Section V-C is the cost model, as in
//!   the paper's multi-FPGA extension);
//! * [`service`] — admission control with **bounded in-flight depth**
//!   (submissions block when the service is saturated — backpressure, not
//!   unbounded queueing), worker threads running the decoupled
//!   prepare/execute phases (`fast::prepare_partitions`), and
//!   [`SessionHandle`]s streaming per-partition results back as kernels
//!   drain;
//! * [`metrics`] — per-query and service-level metrics ([`ServeReport`]):
//!   sustained QPS, queue wait, p50/p99 latency, cache hit rate, per-device
//!   utilisation.
//!
//! # Determinism
//!
//! Every per-query *result* (embedding count, partition sequence,
//! per-partition counts) is a pure function of `(q, g, FastConfig)` —
//! independent of worker count, device count, admission interleaving, and
//! cache hits (a cached plan is bit-identical to the plan a cold run would
//! compute). Only *placement and timing* vary with concurrency. The
//! property tests in `tests/prop_serve.rs` enforce this.
//!
//! # Quickstart
//!
//! ```
//! use graph_core::{benchmark_query, generators::{generate_ldbc, LdbcParams}};
//! use serve::{FastService, ServeConfig};
//!
//! let g = generate_ldbc(&LdbcParams::with_scale_factor(0.05), 42);
//! let service = FastService::new(g, ServeConfig::default());
//! let a = service.submit(benchmark_query(0));
//! let b = service.submit(benchmark_query(0)); // plan served from cache
//! let (ra, rb) = (a.wait().unwrap(), b.wait().unwrap());
//! assert_eq!(ra.embeddings, rb.embeddings);
//! let report = service.shutdown();
//! assert_eq!(report.completed, 2);
//! ```

pub mod cache;
pub mod devices;
pub mod metrics;
pub mod service;

pub use cache::{CacheStats, PlanCache};
pub use devices::{DevicePool, DeviceStats};
pub use metrics::ServeReport;
pub use service::{
    FastService, PartitionUpdate, QueryReport, ServeConfig, ServeError, SessionEvent,
    SessionHandle,
};
